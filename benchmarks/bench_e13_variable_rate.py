"""E13 — §6.2 extension: variable-rate compression bounds."""

from conftest import emit

from repro.analysis import e13_variable_rate


def test_e13_vbr_bounds(benchmark):
    result = benchmark(e13_variable_rate)
    emit(result.table)
    assert all(gain > 1.0 for gain in result.gains.values())
