"""E18 — §3.3.1: strict vs average continuity under timing jitter."""

from conftest import emit, pedantic_args

from repro.analysis import e18_antijitter


def test_e18_antijitter_readahead(benchmark):
    result = benchmark.pedantic(
        e18_antijitter, **pedantic_args()
    )
    emit(result.table)
    assert result.misses_by_readahead[0] > 0
    assert result.misses_by_readahead[8] == 0
