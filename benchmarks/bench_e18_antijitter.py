"""E18 — §3.3.1: strict vs average continuity under timing jitter."""

from conftest import emit

from repro.analysis import e18_antijitter


def test_e18_antijitter_readahead(benchmark):
    result = benchmark.pedantic(
        e18_antijitter, rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result.table)
    assert result.misses_by_readahead[0] > 0
    assert result.misses_by_readahead[8] == 0
