"""E14 — §6.2 extension: seek-minimizing request service order."""

from conftest import emit, pedantic_args

from repro.analysis import e14_scan_ordering


def test_e14_scan_vs_round_robin(benchmark):
    result = benchmark.pedantic(
        e14_scan_ordering, **pedantic_args()
    )
    emit(result.table)
    assert result.scan_mean_round <= result.rr_mean_round
    assert result.measured_n_max > result.analytic_n_max
