"""E19 — §3: the unified media + text file server."""

from conftest import emit, pedantic_args

from repro.analysis import e19_unified_server


def test_e19_unified_server(benchmark):
    result = benchmark.pedantic(
        e19_unified_server, **pedantic_args()
    )
    emit(result.table)
    assert all(m == 0 for m in result.media_misses_by_load.values())
    served = [result.text_served_by_load[n] for n in (0, 1, 2)]
    assert served == sorted(served, reverse=True)
