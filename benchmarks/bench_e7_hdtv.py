"""E7 — §3's worked example: HDTV vs a projected 100-head disk array."""

from conftest import emit

from repro.analysis import e7_hdtv


def test_e7_hdtv_infeasibility(benchmark):
    result = benchmark(e7_hdtv)
    emit(result.table)
    assert abs(result.array_throughput - 0.32e9) / 0.32e9 < 0.05
    assert result.shortfall > 7.0
