"""E21 — §3/§3.4: concurrent storage + retrieval in one service loop."""

from conftest import emit, pedantic_args

from repro.analysis import e21_record_and_play


def test_e21_concurrent_record_play(benchmark):
    result = benchmark.pedantic(
        e21_record_and_play, **pedantic_args()
    )
    emit(result.table)
    assert result.misses_by_load["1 record + 1 play"] == 0
    assert result.misses_by_load["1 record + 2 play"] == 0
    assert result.misses_by_load["2 record + 1 play"] == 0
    assert result.misses_by_load["overload: 1-block staging, 3 play"] > 0
