"""E5 — §3.3.2: buffer and read-ahead requirements."""

from conftest import emit

from repro.analysis import e5_buffering


def test_e5_buffering_requirements(benchmark):
    result = benchmark(e5_buffering)
    emit(result.table)
    emit(
        f"task-switch read-ahead h = {result.switch_read_ahead} blocks; "
        f"slow-motion (2x) accumulation = "
        f"{result.accumulation_rate:.2f} blocks/s"
    )
    assert result.switch_read_ahead >= 1
