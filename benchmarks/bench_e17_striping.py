"""E17 — Fig. 3 end to end: striped storage on multi-head arrays."""

from conftest import emit, pedantic_args

from repro.analysis import e17_striping


def test_e17_striped_storage(benchmark):
    result = benchmark.pedantic(
        e17_striping, **pedantic_args()
    )
    emit(result.table)
    assert all(m == 0 for m in result.misses_by_heads.values())
    bounds = [result.bounds_by_heads[p] for p in (2, 4, 8)]
    assert bounds == sorted(bounds)  # more heads, wider bound
