"""Ablations over the design choices DESIGN.md calls out."""

from conftest import emit

from repro.analysis.ablations import (
    ablate_block_size,
    ablate_copy_budget,
    ablate_granularity,
)


def test_ablation_granularity(benchmark):
    result = benchmark(ablate_granularity)
    emit(result.table)
    bounds = [result.series[eta]["bound"] for eta in (1, 2, 4, 8)]
    assert bounds == sorted(bounds)  # bigger blocks tolerate more scatter


def test_ablation_copy_budget(benchmark):
    result = benchmark(ablate_copy_budget)
    emit(result.table)
    # Bigger budgets shrink the lower bound, widening the window.
    assert result.series[16] > result.series[1]
    assert result.series[0] >= result.series[16]  # unbounded is widest


def test_ablation_block_size(benchmark):
    result = benchmark(ablate_block_size)
    emit(result.table)
    throughputs = [result.series[s] for s in (16, 32, 64, 128)]
    assert throughputs == sorted(throughputs)  # amortization wins
