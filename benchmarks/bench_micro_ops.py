"""Micro-benchmarks of the library's hot operations.

Not paper artifacts — these time the primitives a server would exercise
continuously, so regressions in the data structures (index lookup,
constrained allocation, admission decisions, pointer-based editing) are
visible in the benchmark history.
"""

import random

from repro.config import TESTBED_1991
from repro.core import admission as adm
from repro.core.symbols import video_block_model
from repro.disk import (
    ConstrainedScatterAllocator,
    FreeMap,
    ScatterBounds,
    build_drive,
)
from repro.fs.index import PrimaryEntry, StrandIndex
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer
from repro.analysis.experiments import default_msm

PROFILE = TESTBED_1991


def test_index_lookup_speed(benchmark):
    index = StrandIndex(
        frame_rate=30.0, primary_fanout=4096, secondary_fanout=2048
    )
    for i in range(10_000):
        index.append(PrimaryEntry(sector=i * 64, sector_count=64))
    rng = random.Random(3)
    probes = [rng.randrange(10_000) for _ in range(256)]

    def lookup_batch():
        return [index.lookup(p) for p in probes]

    result = benchmark(lookup_batch)
    assert len(result) == 256


def test_constrained_allocation_speed(benchmark):
    def place_strand():
        drive = build_drive()
        freemap = FreeMap(drive.slots)
        allocator = ConstrainedScatterAllocator(
            drive, freemap,
            ScatterBounds(0.0, drive.rotation.average_latency + 0.01),
        )
        return allocator.allocate_strand(200)

    slots = benchmark(place_strand)
    assert len(slots) == 200


def test_admission_decision_speed(benchmark):
    drive = build_drive()
    params = drive.parameters()
    block = video_block_model(PROFILE.video, 4)
    descriptor = adm.RequestDescriptor(
        block=block, scattering_avg=params.seek_avg
    )

    def admit_release_cycle():
        controller = adm.AdmissionController(params)
        decisions = []
        try:
            for _ in range(8):
                decisions.append(controller.admit(descriptor))
        except adm.AdmissionRejected:
            pass
        for decision in decisions:
            controller.release(decision.request_id)
        return len(decisions)

    admitted = benchmark(admit_release_cycle)
    assert admitted >= 1


def test_edit_operation_speed(benchmark):
    msm = default_msm()
    mrs = MultimediaRopeServer(msm, auto_repair=False)
    frames = frames_for_duration(PROFILE.video, 30.0, source="bench")
    q1, rope_a = mrs.record("u", frames=frames)
    mrs.stop(q1)
    q2, rope_b = mrs.record("u", frames=frames[:300])
    mrs.stop(q2)
    import itertools

    positions = itertools.count(1)

    def one_insert():
        return mrs.insert(
            "u", rope_a, float(next(positions) % 20), Media.VIDEO,
            rope_b, 0.0, 1.0,
        )

    rope = benchmark(one_insert)
    assert rope.interval_count() >= 2


def test_playback_plan_speed(benchmark):
    msm = default_msm()
    mrs = MultimediaRopeServer(msm)
    frames = frames_for_duration(PROFILE.video, 60.0, source="bench")
    q, rope_id = mrs.record("u", frames=frames)
    mrs.stop(q)
    play_id = mrs.play("u", rope_id, media=Media.VIDEO)

    plan = benchmark(mrs.playback_plan, play_id)
    assert plan.video
