"""E22 — fault injection: glitch rate vs. fault rate under recovery.

Extension experiment (no paper counterpart): sweep the injected fault
rate over a fixed playback workload and record the resulting glitch rate
with and without retry recovery.  The trajectory to watch in future
BENCH_*.json records: with a retry budget, glitch rate tracks the
*defect* rate only (transients are absorbed); with budget 0 it tracks
the total fault rate.
"""

from conftest import emit, pedantic_args

from repro.disk import build_drive
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy
from repro.rope.server import BlockFetch
from repro.service import simulate_pipelined

BLOCKS = 120
BLOCK_PLAYBACK = 0.1334
SEED = 22
#: (transient, defect) counts per sweep point.
FAULT_MIX = [(0, 0), (3, 1), (6, 2), (12, 4), (24, 8), (48, 16)]


def _run_point(transient, defects, budget):
    drive = build_drive()
    slots = list(range(0, BLOCKS * 3, 3))
    fetches = [
        BlockFetch(
            slot=slot, bits=drive.block_bits, duration=BLOCK_PLAYBACK
        )
        for slot in slots
    ]
    plan = FaultPlan.random(
        seed=SEED, slots=slots, transient=transient, defects=defects
    )
    drive.attach_injector(FaultInjector(plan))
    metrics, _ = simulate_pipelined(
        fetches,
        drive,
        read_ahead=2,
        recovery=RecoveryPolicy(retry_budget=budget),
    )
    return metrics, drive.stats


def fault_recovery_sweep():
    """Glitch rate vs. fault rate, recovered and unrecovered."""
    rows = []
    for transient, defects in FAULT_MIX:
        fault_rate = (transient + defects) / BLOCKS
        recovered, stats = _run_point(transient, defects, budget=2)
        bare, _ = _run_point(transient, defects, budget=0)
        rows.append(
            {
                "fault_rate": fault_rate,
                "glitch_rate_recovered": recovered.miss_ratio,
                "glitch_rate_budget0": bare.miss_ratio,
                "retries": stats.retries,
            }
        )
    return rows


def _render(rows):
    lines = [
        "E22: glitch rate vs fault rate "
        f"({BLOCKS} blocks, retry budget 2 vs 0)",
        f"{'fault rate':>10} {'glitch (recovered)':>19} "
        f"{'glitch (budget 0)':>18} {'retries':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['fault_rate']:>10.3f} "
            f"{row['glitch_rate_recovered']:>19.3f} "
            f"{row['glitch_rate_budget0']:>18.3f} "
            f"{row['retries']:>8d}"
        )
    return "\n".join(lines)


def test_e22_fault_recovery(benchmark):
    rows = benchmark.pedantic(
        fault_recovery_sweep, **pedantic_args()
    )
    emit(_render(rows))
    # Healthy baseline is glitch-free.
    assert rows[0]["glitch_rate_recovered"] == 0.0
    assert rows[0]["glitch_rate_budget0"] == 0.0
    # Without recovery, every fault glitches; with it, only defects do.
    for row, (transient, defects) in zip(rows, FAULT_MIX):
        assert round(row["glitch_rate_budget0"] * BLOCKS) == (
            transient + defects
        )
        assert round(row["glitch_rate_recovered"] * BLOCKS) == defects
    # Glitch rate grows monotonically with fault rate.
    recovered = [row["glitch_rate_recovered"] for row in rows]
    assert recovered == sorted(recovered)
