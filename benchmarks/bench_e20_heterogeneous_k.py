"""E20 — Eq. (11) in full generality: per-request k for mixed workloads."""

from conftest import emit

from repro.analysis import e20_heterogeneous_k


def test_e20_heterogeneous_admission(benchmark):
    result = benchmark(e20_heterogeneous_k)
    emit(result.table)
    # The general solver dominates: admits everything uniform admits...
    for name, uniform_ok in result.uniform_admitted.items():
        if uniform_ok:
            assert result.heterogeneous_admitted[name]
    # ... and rescues mixed workloads the averaged model rejects.
    assert not result.uniform_admitted["2 video + 4 audio"]
    assert result.heterogeneous_admitted["2 video + 4 audio"]
