"""Perf-scale benchmark: service-loop throughput at production scale.

Not a paper artifact — this is the BENCH_PERF.json trajectory the
ROADMAP's "as fast as the hardware allows" goal is measured against.  It
scores the §3.4 round loop at 10/100/1000 concurrent streams (1000-block
strands), then runs a seeds × arrival-mixes × drive-configs sweep through
the :mod:`repro.perf` parallel runner.  The scale points land in
``BENCH_PERF.json`` at the repo root (``BENCH_PERF.smoke.json`` under
``--smoke``, so CI never clobbers the committed trajectory), and the
same points are re-emitted as an experiment-matrix manifest
(``BENCH_PERF.matrix.json``) so the bench trajectory and the
``repro expt gate`` regression machinery speak one schema — see
:mod:`repro.expt` and docs/EXPERIMENTS.md.

The trajectory to watch: ``blocks_per_second`` should stay flat across
stream count and strand length — the incremental consumption cursor and
cached disk models make per-block service cost O(1); any regression to
super-linear cost shows up as a falling curve at the 1000-stream point.
"""

import json
from pathlib import Path

from conftest import emit, param, pedantic_args, smoke_mode

from repro.expt import build_manifest, cell_from_scale_result, stable_json
from repro.perf import (
    run_cluster_scale_bench,
    run_obs_overhead_scenario,
    run_profiled_scale_scenario,
    run_scale_scenario,
    run_server_compare_scenario,
    run_sweep,
    scale_grid,
)
from repro.perf.scenarios import ScaleScenario

ROOT = Path(__file__).resolve().parent.parent

#: Concurrent-stream scale points (smoke: tiny but still multi-stream).
STREAM_POINTS = param((10, 100, 1000), (2, 3))
BLOCKS_PER_STREAM = param(1000, 12)
SWEEP_SEEDS = param((0, 1), (0,))
SWEEP_DRIVES = param(("testbed", "table"), ("testbed",))
SWEEP_ARRIVALS = param(("uniform", "staggered"), ("uniform",))
SERVE_SESSIONS = param(50, 8)
SERVE_STRANDS = param(5, 2)
OBS_STREAMS = param(100, 8)
OBS_BLOCKS = param(1000, 50)
# min-of-repeats walls: 5 repeats under-samples on noisy shared hosts
# (observed min-of-5 ratios spanning 1.11-1.19 on one machine where
# min-of-15 converges to 1.12), so the full run takes 15.
OBS_REPEATS = param(15, 2)
CLUSTER_NODES = param(20, 3)
CLUSTER_SESSIONS = param(1000, 12)
CLUSTER_TITLES = param(40, 4)
CLUSTER_PER_NODE_STREAMS = param(75, 8)
CLUSTER_FAILOVER_NODES = param(4, 3)
CLUSTER_FAILOVER_SESSIONS = param(32, 12)


def _scenario(streams: int) -> ScaleScenario:
    return ScaleScenario(
        name=f"scale-n{streams}",
        streams=streams,
        blocks_per_stream=BLOCKS_PER_STREAM,
        k=4,
        buffer_capacity=8,
        seed=0,
        drive="testbed",
    )


def _bench_path() -> Path:
    name = "BENCH_PERF.smoke.json" if smoke_mode() else "BENCH_PERF.json"
    return ROOT / name


def _matrix_path() -> Path:
    name = (
        "BENCH_PERF.matrix.smoke.json" if smoke_mode()
        else "BENCH_PERF.matrix.json"
    )
    return ROOT / name


def test_perf_scale_points(benchmark):
    """Score every scale point; benchmark the largest; write the JSON."""
    points = [run_scale_scenario(_scenario(n)) for n in STREAM_POINTS]

    result = benchmark.pedantic(
        run_scale_scenario,
        args=(_scenario(STREAM_POINTS[-1]),),
        **pedantic_args(),
    )
    assert result.blocks_delivered == (
        STREAM_POINTS[-1] * BLOCKS_PER_STREAM
    )

    sweep = run_sweep(
        scale_grid(
            stream_counts=list(STREAM_POINTS[:-1]) or [STREAM_POINTS[0]],
            blocks_per_stream=max(BLOCKS_PER_STREAM // 5, 4),
            seeds=SWEEP_SEEDS,
            drives=SWEEP_DRIVES,
            arrivals=SWEEP_ARRIVALS,
        ),
        workers=None,
    )

    compare = run_server_compare_scenario(
        sessions=SERVE_SESSIONS, strands=SERVE_STRANDS
    )
    assert compare.batched_wins, (
        "batched+cached admission must sustain strictly more continuous "
        f"streams than per-request: {compare.batched_continuous} vs "
        f"{compare.per_request_continuous}"
    )

    cluster = run_cluster_scale_bench(
        nodes=CLUSTER_NODES,
        sessions=CLUSTER_SESSIONS,
        titles=CLUSTER_TITLES,
        per_node_streams=CLUSTER_PER_NODE_STREAMS,
        failover_nodes=CLUSTER_FAILOVER_NODES,
        failover_sessions=CLUSTER_FAILOVER_SESSIONS,
    )
    assert cluster.all_continuous, (
        "every admitted cluster session must stay continuous: "
        f"{cluster.scale['continuous']} of {cluster.scale['admitted']}"
    )
    assert cluster.within_bounds, (
        "measured concurrency exceeded the analytical VoD bounds: "
        f"{cluster.scale['admitted']} admitted vs full-catalog "
        f"{cluster.bounds['full_catalog']}"
    )
    assert cluster.handoff_clean_ratio > 0.9, (
        ">90% of node-kill handoffs must preserve continuity: "
        f"{cluster.failover['clean']} clean of "
        f"{cluster.failover['affected']} affected"
    )
    if not smoke_mode():
        # The acceptance scale: 1000+ concurrent sessions, sharded.
        assert cluster.scale["admitted"] >= 1000

    overhead = run_obs_overhead_scenario(
        streams=OBS_STREAMS,
        blocks_per_stream=OBS_BLOCKS,
        repeats=OBS_REPEATS,
    )
    if not smoke_mode():
        # The acceptance budget: full tracing + metrics + SLOs must cost
        # < 15% wall on the 100-session scenario.  Smoke walls are too
        # small to compare meaningfully, so only full mode enforces it.
        assert overhead.within_budget, (
            f"observability overhead ratio {overhead.ratio:.3f} exceeds "
            f"budget {overhead.budget_ratio:.2f} "
            f"({overhead.wall_obs_s:.3f}s vs {overhead.wall_off_s:.3f}s)"
        )

    profiled = run_profiled_scale_scenario(
        streams=STREAM_POINTS[-1], blocks_per_stream=BLOCKS_PER_STREAM
    )
    profile_section = profiled.section
    share_sum = sum(
        phase["share"] for phase in profile_section["phases"].values()
    )
    # Cost attribution must account for the whole run.
    assert abs(share_sum - 1.0) <= 1e-9, (
        f"profile phase shares must sum to 1.0, got {share_sum!r}"
    )
    assert profiled.blocks_delivered == (
        STREAM_POINTS[-1] * BLOCKS_PER_STREAM
    )

    record = {
        "benchmark": "perf_scale",
        "schema_version": 1,
        "mode": "smoke" if smoke_mode() else "full",
        "blocks_per_stream": BLOCKS_PER_STREAM,
        "points": [point.to_dict() for point in points],
        "sweep": sweep.to_dict(),
        "server_compare": compare.to_dict(),
        "cluster_scale": cluster.to_dict(),
        "obs_overhead": overhead.to_dict(),
        "profile": profile_section,
    }
    path = _bench_path()
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    # The same trajectory as an expt-matrix manifest, so the scale
    # points can feed `repro expt gate`/`diff` like any matrix run.
    manifest = build_manifest(
        name=f"bench-perf-scale-{record['mode']}",
        cell_records=[
            cell_from_scale_result(point)
            for point in points + list(sweep.results)
        ],
        workers=sweep.workers,
        parallel=sweep.parallel,
        wall_time_s=sweep.wall_time_s,
    )
    matrix_path = _matrix_path()
    matrix_path.write_text(stable_json(manifest))

    table_lines = [
        f"perf scale trajectory ({record['mode']}) -> {path.name}, "
        f"{matrix_path.name}"
    ]
    for point in points:
        table_lines.append(
            f"  n={point.streams:>5} x {point.blocks_per_stream} blocks: "
            f"{point.wall_time_s:.3f}s wall, "
            f"{point.blocks_per_second:,.0f} blocks/s, "
            f"{point.streams_per_second:,.0f} streams/s"
        )
    table_lines.append(
        f"  serve compare: batched {compare.batched_continuous} vs "
        f"per-request {compare.per_request_continuous} continuous "
        f"({compare.sessions_per_second:,.0f} sessions/s)"
    )
    table_lines.append(
        f"  cluster scale: {cluster.scale['continuous']}/"
        f"{cluster.scale['admitted']} continuous on "
        f"{cluster.params['nodes']} nodes "
        f"(full-catalog bound {cluster.bounds['full_catalog']}, "
        f"demand {cluster.bounds['demand_satisfiable']}/"
        f"{cluster.bounds['demand_total']}); failover "
        f"{cluster.failover['clean']}/{cluster.failover['affected']} "
        f"clean handoffs"
    )
    table_lines.append(
        f"  obs overhead: x{overhead.ratio:.3f} "
        f"({overhead.wall_obs_s:.3f}s traced vs "
        f"{overhead.wall_off_s:.3f}s off, {overhead.spans} spans, "
        f"budget x{overhead.budget_ratio:.2f})"
    )
    hot = profile_section["top"][0]
    table_lines.append(
        f"  profile n={STREAM_POINTS[-1]}: hottest {hot['phase']} "
        f"({hot['share'] * 100:.1f}% of "
        f"{profile_section['total_cost_s']:.1f}s modeled, "
        f"{profile_section['total_ops']} ops)"
    )
    emit("\n".join(table_lines), sweep.table())

    for point in points:
        assert point.blocks_delivered == (
            point.streams * point.blocks_per_stream
        )
