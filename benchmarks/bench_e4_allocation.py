"""E4 — §3: constrained vs random vs contiguous allocation."""

from conftest import emit

from repro.analysis import e4_allocation


def test_e4_allocation_disciplines(benchmark):
    result = benchmark.pedantic(
        e4_allocation, rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result.table)
    assert result.read_ahead_needed["constrained"] == 0
    assert result.read_ahead_needed["random"] > 0
