"""E4 — §3: constrained vs random vs contiguous allocation."""

from conftest import emit, pedantic_args

from repro.analysis import e4_allocation


def test_e4_allocation_disciplines(benchmark):
    result = benchmark.pedantic(
        e4_allocation, **pedantic_args()
    )
    emit(result.table)
    assert result.read_ahead_needed["constrained"] == 0
    assert result.read_ahead_needed["random"] > 0
