"""E12 — §5: end-to-end prototype session at the admission limit."""

from conftest import emit, pedantic_args

from repro.analysis import e12_prototype
from repro.analysis.report import render_series


def test_e12_prototype_session(benchmark):
    result = benchmark.pedantic(
        e12_prototype, **pedantic_args()
    )
    emit(result.table, render_series(result.startup_series))
    emit(f"admission refused request #{result.rejected_at}")
    assert result.all_continuous
    assert result.rejected_at >= 2
