"""E11 — Table 1 / §2: derived symbol quantities across profiles."""

from conftest import emit

from repro.analysis import e11_symbols


def test_e11_symbol_table(benchmark):
    result = benchmark(e11_symbols)
    emit(result.table)
    by_profile = {row[0]: row for row in result.table.rows}
    assert by_profile["testbed-1991"][6] is True
    assert by_profile["hdtv-2.5gbit"][6] is False
