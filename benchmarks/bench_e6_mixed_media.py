"""E6 — §3.3.3 / Eqs. (4)-(6): homogeneous vs heterogeneous blocks."""

from conftest import emit

from repro.analysis import e6_mixed_media


def test_e6_mixed_media_schemes(benchmark):
    result = benchmark(e6_mixed_media)
    emit(result.table)
    assert result.heterogeneous_bound > result.homogeneous_bound
