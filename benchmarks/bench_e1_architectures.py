"""E1 — Figs. 1-3 / Eqs. (1)-(3): retrieval-architecture continuity bounds."""

from conftest import emit, pedantic_args

from repro.analysis import e1_architectures


def test_e1_architecture_bounds(benchmark):
    result = benchmark.pedantic(
        e1_architectures, **pedantic_args()
    )
    emit(result.table)
    assert all(m == 0 for m in result.misses_inside.values())
    assert result.bounds["sequential"] < result.bounds["pipelined"]
