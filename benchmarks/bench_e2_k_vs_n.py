"""E2 — Fig. 4 / Eqs. (15)-(17): blocks-per-round k against request count n."""

from conftest import emit

from repro.analysis import e2_k_vs_n
from repro.analysis.report import render_series


def test_e2_fig4_k_vs_n(benchmark):
    result = benchmark(e2_k_vs_n)
    emit(result.table, render_series(result.series_transition))
    emit(f"n_max (Eq. 17) = {result.n_max}")
    assert result.n_max >= 1
    assert result.series_transition.ys == sorted(result.series_transition.ys)
