"""E10 — §4: silence elimination storage savings."""

from conftest import emit, pedantic_args

from repro.analysis import e10_silence
from repro.analysis.report import render_series


def test_e10_silence_elimination(benchmark):
    result = benchmark.pedantic(
        e10_silence, **pedantic_args()
    )
    emit(result.table, render_series(result.series))
    assert result.series.ys == sorted(result.series.ys)
