"""E10 — §4: silence elimination storage savings."""

from conftest import emit

from repro.analysis import e10_silence
from repro.analysis.report import render_series


def test_e10_silence_elimination(benchmark):
    result = benchmark.pedantic(
        e10_silence, rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result.table, render_series(result.series))
    assert result.series.ys == sorted(result.series.ys)
