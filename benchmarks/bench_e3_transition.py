"""E3 — §3.4: naive k jump vs the staged Eq.-(18) transition."""

from conftest import emit, pedantic_args

from repro.analysis import e3_transition


def test_e3_transition_continuity(benchmark):
    result = benchmark.pedantic(
        e3_transition, **pedantic_args()
    )
    emit(result.table)
    assert result.staged_misses == 0
    assert result.naive_misses > 0
