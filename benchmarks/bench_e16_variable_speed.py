"""E16 — §3.3.2: fast-forward and slow-motion playback behaviours."""

from conftest import emit, pedantic_args

from repro.analysis import e16_variable_speed


def test_e16_variable_speed(benchmark):
    result = benchmark.pedantic(
        e16_variable_speed, **pedantic_args()
    )
    emit(result.table)
    skip = result.rows["fast-forward 2x, skipping"]
    noskip = result.rows["fast-forward 2x, no skip"]
    slow = result.rows["slow motion 0.5x"]
    # Skipping halves the fetches; slow motion idles the disk the most.
    assert skip.metrics.blocks_delivered < noskip.metrics.blocks_delivered
    assert slow.switch_idle_time > noskip.switch_idle_time
    assert slow.task_switches > 0
