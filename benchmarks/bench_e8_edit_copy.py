"""E8 — §4.2 / Eqs. (19)-(20): seam-repair copying vs disk occupancy."""

from conftest import emit, pedantic_args

from repro.analysis import e8_edit_copy


def test_e8_editing_copy_bounds(benchmark):
    result = benchmark.pedantic(
        e8_edit_copy, **pedantic_args()
    )
    emit(result.table)
    sparse_bound, _ = result.bounds["sparse"]
    _, dense_bound = result.bounds["dense"]
    assert result.copies["sparse"] <= sparse_bound
    assert result.copies["dense"] <= dense_bound
