"""E15 — §6.2 extension: storage reorganization on a dense disk."""

from conftest import emit

from repro.analysis import e15_reorganization


def test_e15_reorganization(benchmark):
    result = benchmark.pedantic(
        e15_reorganization, rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result.table)
    assert not result.feasible_before
    assert result.feasible_after
    assert result.blocks_moved > 0
