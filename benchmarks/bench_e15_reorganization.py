"""E15 — §6.2 extension: storage reorganization on a dense disk."""

from conftest import emit, pedantic_args

from repro.analysis import e15_reorganization


def test_e15_reorganization(benchmark):
    result = benchmark.pedantic(
        e15_reorganization, **pedantic_args()
    )
    emit(result.table)
    assert not result.feasible_before
    assert result.feasible_after
    assert result.blocks_moved > 0
