"""E9 — §4.1: rope operations are pointer manipulation, plus GC sharing."""

from conftest import emit

from repro.analysis import e9_rope_ops


def test_e9_rope_operation_cost(benchmark):
    result = benchmark.pedantic(
        e9_rope_ops, rounds=3, iterations=1, warmup_rounds=1
    )
    emit(result.table, result.gc_behaviour)
    assert all(c == 0 for c in result.media_blocks_copied.values())
