"""E9 — §4.1: rope operations are pointer manipulation, plus GC sharing."""

from conftest import emit, pedantic_args

from repro.analysis import e9_rope_ops


def test_e9_rope_operation_cost(benchmark):
    result = benchmark.pedantic(
        e9_rope_ops, **pedantic_args()
    )
    emit(result.table, result.gc_behaviour)
    assert all(c == 0 for c in result.media_blocks_copied.values())
