"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (see DESIGN.md §3) and
prints its table/series through :func:`emit`.  Because pytest captures
file descriptors during the run, emitted artifacts are buffered and
flushed into the terminal summary after capture ends — so the rows appear
in ``pytest benchmarks/ --benchmark-only`` output (and anything it is
piped to) without requiring ``-s``.

Smoke mode: ``pytest benchmarks --smoke`` shrinks every benchmark's
workload to the tiny values its :func:`param` calls declare, so a CI
job can execute each ``bench_e*.py`` end to end in seconds — benches
can't silently rot between full runs.

Every benchmark run also emits an observability snapshot of the
canonical steady scenario (:mod:`repro.obs.scenarios`) into the
artifact section, so the benchmark history carries the telemetry
baseline alongside the paper tables.
"""

from typing import List, TypeVar

_EMITTED: List[str] = []
_SMOKE = False

T = TypeVar("T")


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks with tiny workloads (CI rot check)",
    )


def pytest_configure(config):
    global _SMOKE
    _SMOKE = config.getoption("--smoke")


def smoke_mode() -> bool:
    """True when the run was started with ``--smoke``."""
    return _SMOKE


def param(full: T, smoke: T) -> T:
    """Pick a benchmark parameter by mode: *full* fidelity or *smoke*.

    Call at module level or inside a benchmark body; collection happens
    after ``pytest_configure``, so both see the final mode.
    """
    return smoke if _SMOKE else full


def pedantic_args() -> dict:
    """Standard ``benchmark.pedantic`` settings for artifact benches.

    Smoke mode shrinks to one cold round — enough to prove the driver
    still runs and its assertions still hold, with no timing fidelity.
    """
    if _SMOKE:
        return {"rounds": 1, "iterations": 1, "warmup_rounds": 0}
    return {"rounds": 3, "iterations": 1, "warmup_rounds": 1}


def emit(*renderables) -> None:
    """Queue experiment output for the post-run terminal summary."""
    for renderable in renderables:
        text = renderable if isinstance(renderable, str) else (
            renderable.render()
        )
        _EMITTED.append(text)


def _emit_obs_snapshot() -> None:
    """Append the steady-scenario observability snapshot artifact."""
    from repro.obs.scenarios import run_steady_scenario

    run = run_steady_scenario(seconds=param(4.0, 1.0))
    _EMITTED.append(
        "observability snapshot (steady scenario, deterministic):\n"
        + run.snapshot()
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    _emit_obs_snapshot()
    terminalreporter.section("reproduced paper artifacts")
    for text in _EMITTED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
