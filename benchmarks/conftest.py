"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (see DESIGN.md §3) and
prints its table/series through :func:`emit`.  Because pytest captures
file descriptors during the run, emitted artifacts are buffered and
flushed into the terminal summary after capture ends — so the rows appear
in ``pytest benchmarks/ --benchmark-only`` output (and anything it is
piped to) without requiring ``-s``.
"""

from typing import List

_EMITTED: List[str] = []


def emit(*renderables) -> None:
    """Queue experiment output for the post-run terminal summary."""
    for renderable in renderables:
        text = renderable if isinstance(renderable, str) else (
            renderable.render()
        )
        _EMITTED.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.section("reproduced paper artifacts")
    for text in _EMITTED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
