"""The Multimedia Storage Manager (MSM): strands, indices, GC (§5.2).

This package implements the device-dependent lower layer of the prototype:
physical placement of media strands (with the granularity and scattering
the §3 analysis derives), the 3-level block index of Fig. 5/6, silence
elimination with NULL delay holders, and interest-based garbage
collection.
"""

from repro.fs.blocks import AudioPayload, BlockKind, MediaBlock
from repro.fs.gc import GarbageCollector, InterestRegistry
from repro.fs.index import (
    HeaderBlock,
    PRIMARY_ENTRY_BITS,
    PrimaryBlock,
    PrimaryEntry,
    SECONDARY_ENTRY_BITS,
    SecondaryBlock,
    SecondaryEntry,
    StrandIndex,
    fanout_for,
)
from repro.fs.persist import (
    dump_image,
    load_file,
    load_image,
    save_file,
)
from repro.fs.reorganize import ReorganizationReport, Reorganizer
from repro.fs.silence import AudioBlockPlan, SilenceStats, plan_audio_blocks
from repro.fs.storage_manager import MediaPolicies, MultimediaStorageManager
from repro.fs.strand import Strand
from repro.fs.striped import StripedStorageManager, StripedStrand

__all__ = [
    "AudioBlockPlan",
    "AudioPayload",
    "BlockKind",
    "GarbageCollector",
    "HeaderBlock",
    "InterestRegistry",
    "MediaBlock",
    "MediaPolicies",
    "MultimediaStorageManager",
    "PRIMARY_ENTRY_BITS",
    "PrimaryBlock",
    "PrimaryEntry",
    "ReorganizationReport",
    "Reorganizer",
    "SECONDARY_ENTRY_BITS",
    "SecondaryBlock",
    "SecondaryEntry",
    "SilenceStats",
    "Strand",
    "StrandIndex",
    "StripedStorageManager",
    "StripedStrand",
    "dump_image",
    "fanout_for",
    "load_file",
    "load_image",
    "plan_audio_blocks",
    "save_file",
]
