"""The 3-level strand block index (§3.5, Figs. 5 and 6).

"For each strand, the file system maintains primary indices in a sequence
of Primary Blocks (PB), each of which contains mapping from media block
numbers to their raw disk addresses.  Secondary indices, which are
pointers to Primary Blocks, are maintained in a sequence of Secondary
Blocks (SB).  Pointers to all Secondary Blocks of a strand are stored in
the Header Block (HB)."

The structure "permits large strand sizes, and random as well as
concurrent access to strands": because a strand is immutable, its primary
blocks fill uniformly, and block number → (SB, PB, entry) resolves with
two divisions — no tree walk.

"We use NULL pointers in the primary blocks of a strand to indicate
silence for the duration of a block" — a primary entry of ``None`` is a
silence delay holder; lookups return it as such and the playback path
synthesizes silence without any disk access.

Entry sizes follow Fig. 6's field lists (four-byte fields): a primary
entry is 2 fields (sector, sectorCount) = 64 bits; a secondary entry is 4
fields = 128 bits; fan-outs derive from the disk block size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import IndexCorruptionError, ParameterError

__all__ = [
    "PRIMARY_ENTRY_BITS",
    "SECONDARY_ENTRY_BITS",
    "fanout_for",
    "PrimaryEntry",
    "PrimaryBlock",
    "SecondaryEntry",
    "SecondaryBlock",
    "HeaderBlock",
    "StrandIndex",
]

#: Bits per primary-index entry: sector + sectorCount (Fig. 6).
PRIMARY_ENTRY_BITS = 64
#: Bits per secondary-index entry: startBlock + BlockCount + sector +
#: sectorCount (Fig. 6).
SECONDARY_ENTRY_BITS = 128


def fanout_for(block_bits: float, entry_bits: int) -> int:
    """Entries that fit in one index block of *block_bits*."""
    if block_bits <= 0:
        raise ParameterError(f"block_bits must be positive, got {block_bits}")
    if entry_bits <= 0:
        raise ParameterError(f"entry_bits must be positive, got {entry_bits}")
    fanout = int(block_bits // entry_bits)
    if fanout < 1:
        raise ParameterError(
            f"index block of {block_bits} bits cannot hold a "
            f"{entry_bits}-bit entry"
        )
    return fanout


@dataclass(frozen=True)
class PrimaryEntry:
    """One media block's raw disk address: position + length (Fig. 6)."""

    sector: int
    sector_count: int

    def __post_init__(self) -> None:
        if self.sector < 0:
            raise ParameterError(f"sector must be >= 0, got {self.sector}")
        if self.sector_count < 1:
            raise ParameterError(
                f"sector_count must be >= 1, got {self.sector_count}"
            )


@dataclass
class PrimaryBlock:
    """A sequence of media-block addresses (None = silence holder)."""

    capacity: int
    entries: List[Optional[PrimaryEntry]] = field(default_factory=list)
    #: Disk slot holding this PB once assigned (None while in memory only).
    slot: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ParameterError(
                f"capacity must be >= 1, got {self.capacity}"
            )

    @property
    def is_full(self) -> bool:
        """True when no more entries fit."""
        return len(self.entries) >= self.capacity

    def append(self, entry: Optional[PrimaryEntry]) -> None:
        """Add a media-block address (or a NULL silence holder)."""
        if self.is_full:
            raise IndexCorruptionError(
                f"primary block overfilled past capacity {self.capacity}"
            )
        self.entries.append(entry)


@dataclass(frozen=True)
class SecondaryEntry:
    """Pointer to one primary block (Fig. 6)."""

    start_block: int
    block_count: int
    sector: int
    sector_count: int


@dataclass
class SecondaryBlock:
    """A sequence of pointers to primary blocks."""

    capacity: int
    entries: List[SecondaryEntry] = field(default_factory=list)
    slot: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ParameterError(
                f"capacity must be >= 1, got {self.capacity}"
            )

    @property
    def is_full(self) -> bool:
        """True when no more entries fit."""
        return len(self.entries) >= self.capacity


@dataclass
class HeaderBlock:
    """Strand header: rate, counts, and the secondary-block array (Fig. 6)."""

    frame_rate: float
    frame_count: int = 0
    secondary_slots: List[Optional[int]] = field(default_factory=list)
    slot: Optional[int] = None

    @property
    def secondary_count(self) -> int:
        """Number of secondary blocks in the strand."""
        return len(self.secondary_slots)


class StrandIndex:
    """The assembled 3-level index of one strand.

    Parameters
    ----------
    frame_rate:
        Recording rate stored in the header block.
    primary_fanout / secondary_fanout:
        Entries per PB / SB, normally from :func:`fanout_for`.
    """

    def __init__(
        self,
        frame_rate: float,
        primary_fanout: int,
        secondary_fanout: int,
    ):
        if frame_rate <= 0:
            raise ParameterError(
                f"frame_rate must be positive, got {frame_rate}"
            )
        if primary_fanout < 1 or secondary_fanout < 1:
            raise ParameterError(
                "fan-outs must be >= 1, got "
                f"{primary_fanout}/{secondary_fanout}"
            )
        self.primary_fanout = primary_fanout
        self.secondary_fanout = secondary_fanout
        self.header = HeaderBlock(frame_rate=frame_rate)
        self.primaries: List[PrimaryBlock] = []
        self.secondaries: List[SecondaryBlock] = []

    # -- construction --------------------------------------------------------

    def append(
        self, entry: Optional[PrimaryEntry], units: int = 0
    ) -> int:
        """Record the next media block's address; returns its block number.

        ``entry=None`` appends a silence delay holder.  *units* (frames or
        samples represented by the block — for silence, the samples the
        silent period covers) accumulates into the header's frame count.
        """
        if units < 0:
            raise ParameterError(f"units must be >= 0, got {units}")
        if not self.primaries or self.primaries[-1].is_full:
            self._add_primary()
        block_number = self.block_count
        self.primaries[-1].append(entry)
        self._current_secondary_entry_grow()
        self.header.frame_count += units
        return block_number

    def _add_primary(self) -> None:
        if not self.secondaries or self.secondaries[-1].is_full:
            self.secondaries.append(SecondaryBlock(self.secondary_fanout))
            self.header.secondary_slots.append(None)
        self.primaries.append(PrimaryBlock(self.primary_fanout))
        start = (len(self.primaries) - 1) * self.primary_fanout
        self.secondaries[-1].entries.append(
            SecondaryEntry(
                start_block=start, block_count=0, sector=-1, sector_count=0
            )
        )

    def _current_secondary_entry_grow(self) -> None:
        secondary = self.secondaries[-1]
        last = secondary.entries[-1]
        secondary.entries[-1] = SecondaryEntry(
            start_block=last.start_block,
            block_count=last.block_count + 1,
            sector=last.sector,
            sector_count=last.sector_count,
        )

    # -- lookup ----------------------------------------------------------------

    @property
    def block_count(self) -> int:
        """Media blocks (including silence holders) indexed so far."""
        if not self.primaries:
            return 0
        return (
            (len(self.primaries) - 1) * self.primary_fanout
            + len(self.primaries[-1].entries)
        )

    def lookup(self, block_number: int) -> Optional[PrimaryEntry]:
        """Resolve a media block number to its disk address (None=silence).

        Constant-time: immutable strands fill their primary blocks
        uniformly, so the position is pure arithmetic.
        """
        if not 0 <= block_number < self.block_count:
            raise ParameterError(
                f"block {block_number} outside strand "
                f"(0..{self.block_count - 1})"
            )
        primary_index, offset = divmod(block_number, self.primary_fanout)
        return self.primaries[primary_index].entries[offset]

    def update(
        self, block_number: int, entry: Optional[PrimaryEntry]
    ) -> None:
        """Rewrite one media block's address (physical migration).

        Used by storage reorganization (§6.2): the *logical* strand is
        immutable, but its blocks may be moved on disk, which rewrites
        the corresponding primary entry in place.
        """
        if not 0 <= block_number < self.block_count:
            raise ParameterError(
                f"block {block_number} outside strand "
                f"(0..{self.block_count - 1})"
            )
        primary_index, offset = divmod(block_number, self.primary_fanout)
        self.primaries[primary_index].entries[offset] = entry

    def __iter__(self) -> Iterator[Optional[PrimaryEntry]]:
        for primary in self.primaries:
            yield from primary.entries

    # -- disk residence ----------------------------------------------------------

    def index_block_count(self) -> int:
        """Disk blocks the index itself occupies (HB + SBs + PBs)."""
        return 1 + len(self.secondaries) + len(self.primaries)

    def assign_slots(self, slots: List[int]) -> None:
        """Bind the header, secondary, and primary blocks to disk slots.

        *slots* must contain exactly :meth:`index_block_count` entries, in
        HB, SB..., PB... order.
        """
        needed = self.index_block_count()
        if len(slots) != needed:
            raise ParameterError(
                f"index needs {needed} slots, got {len(slots)}"
            )
        cursor = iter(slots)
        self.header.slot = next(cursor)
        for position, secondary in enumerate(self.secondaries):
            secondary.slot = next(cursor)
            self.header.secondary_slots[position] = secondary.slot
        for primary in self.primaries:
            primary.slot = next(cursor)
        # Back-fill PB addresses into the secondary entries.
        for secondary in self.secondaries:
            for position, entry in enumerate(secondary.entries):
                primary = self.primaries[entry.start_block // self.primary_fanout]
                secondary.entries[position] = SecondaryEntry(
                    start_block=entry.start_block,
                    block_count=entry.block_count,
                    sector=primary.slot if primary.slot is not None else -1,
                    sector_count=1,
                )

    def assigned_slots(self) -> List[int]:
        """All disk slots the index occupies (for deletion)."""
        slots: List[int] = []
        if self.header.slot is not None:
            slots.append(self.header.slot)
        for secondary in self.secondaries:
            if secondary.slot is not None:
                slots.append(secondary.slot)
        for primary in self.primaries:
            if primary.slot is not None:
                slots.append(primary.slot)
        return slots

    # -- verification -----------------------------------------------------------

    def verify(self) -> None:
        """Check internal consistency; raises IndexCorruptionError."""
        if len(self.header.secondary_slots) != len(self.secondaries):
            raise IndexCorruptionError(
                "header secondary array length "
                f"{len(self.header.secondary_slots)} != secondary block "
                f"count {len(self.secondaries)}"
            )
        covered = 0
        for number, secondary in enumerate(self.secondaries):
            if not secondary.entries:
                raise IndexCorruptionError(f"secondary block {number} is empty")
            for entry in secondary.entries:
                if entry.start_block != covered:
                    raise IndexCorruptionError(
                        f"secondary entry starts at block {entry.start_block}"
                        f", expected {covered}"
                    )
                covered += entry.block_count
        if covered != self.block_count:
            raise IndexCorruptionError(
                f"secondary entries cover {covered} blocks, index holds "
                f"{self.block_count}"
            )
        for number, primary in enumerate(self.primaries[:-1]):
            if len(primary.entries) != self.primary_fanout:
                raise IndexCorruptionError(
                    f"interior primary block {number} holds "
                    f"{len(primary.entries)} entries, expected a full "
                    f"{self.primary_fanout}"
                )
