"""Persistence: saving and loading a file-system image.

The prototype's metadata — header/secondary/primary blocks, rope records,
access lists — lives on disk and survives restarts.  The reproduction
keeps its state in Python objects, so this module provides the
equivalent: a complete, versioned JSON image of an MSM (+ optional MRS)
that round-trips every strand (contents, placement, index, silence
holders), the free map, the interest registry, and every rope's segment
list and access rights.

The image deliberately serializes *through the public structure* (block
kinds, primary entries, segments) rather than pickling objects, so images
are inspectable, diffable, and independent of internal refactoring.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ParameterError
from repro.fs.blocks import AudioPayload, BlockKind, MediaBlock
from repro.fs.index import StrandIndex, fanout_for, PRIMARY_ENTRY_BITS, SECONDARY_ENTRY_BITS
from repro.fs.storage_manager import MultimediaStorageManager
from repro.fs.strand import Strand
from repro.rope.intervals import MediaTrack, Segment, Trigger
from repro.rope.server import MultimediaRopeServer
from repro.rope.structures import MultimediaRope

__all__ = ["IMAGE_VERSION", "dump_image", "load_image", "save_file", "load_file"]

IMAGE_VERSION = 1


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _block_to_json(block: MediaBlock) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "kind": block.kind.value,
        "video_tokens": list(block.video_tokens),
        "video_bits": block.video_bits,
    }
    if block.audio is not None:
        payload["audio"] = {
            "start_sample": block.audio.start_sample,
            "sample_count": block.audio.sample_count,
            "average_energy": block.audio.average_energy,
            "bits": block.audio.bits,
        }
    return payload


def _block_from_json(data: Dict[str, Any]) -> MediaBlock:
    audio = None
    if "audio" in data:
        audio = AudioPayload(**data["audio"])
    return MediaBlock(
        kind=BlockKind(data["kind"]),
        video_tokens=tuple(data["video_tokens"]),
        video_bits=data["video_bits"],
        audio=audio,
    )


def _strand_to_json(strand: Strand) -> Dict[str, Any]:
    blocks: List[Dict[str, Any]] = []
    for number in range(strand.block_count):
        slot = strand.slot_of(number)
        entry: Dict[str, Any] = {"units": strand.units_of(number)}
        if slot is None:
            entry["silence"] = True
        else:
            entry["slot"] = slot
            entry["content"] = _block_to_json(strand.block_at(number))
        blocks.append(entry)
    return {
        "strand_id": strand.strand_id,
        "kind": strand.kind.value,
        "unit_rate": strand.unit_rate,
        "granularity": strand.granularity,
        "sectors_per_block": strand.sectors_per_block,
        "scattering_lower": strand.scattering_lower,
        "scattering_upper": (
            None if strand.scattering_upper == float("inf")
            else strand.scattering_upper
        ),
        "index_slots": strand.index.assigned_slots(),
        "blocks": blocks,
    }


def _strand_from_json(
    data: Dict[str, Any], block_bits: float
) -> Strand:
    index = StrandIndex(
        frame_rate=data["unit_rate"],
        primary_fanout=fanout_for(block_bits, PRIMARY_ENTRY_BITS),
        secondary_fanout=fanout_for(block_bits, SECONDARY_ENTRY_BITS),
    )
    upper = data["scattering_upper"]
    strand = Strand(
        strand_id=data["strand_id"],
        kind=BlockKind(data["kind"]),
        unit_rate=data["unit_rate"],
        granularity=data["granularity"],
        sectors_per_block=data["sectors_per_block"],
        index=index,
        scattering_lower=data["scattering_lower"],
        scattering_upper=float("inf") if upper is None else upper,
    )
    for entry in data["blocks"]:
        if entry.get("silence"):
            strand.append_silence(entry["units"])
        else:
            strand.append_block(
                _block_from_json(entry["content"]), entry["slot"]
            )
    if data["index_slots"]:
        strand.index.assign_slots(list(data["index_slots"]))
    return strand.finalize()


def _track_to_json(track: Optional[MediaTrack]) -> Optional[Dict[str, Any]]:
    if track is None:
        return None
    return {
        "strand_id": track.strand_id,
        "start_unit": track.start_unit,
        "length_units": track.length_units,
        "rate": track.rate,
        "granularity": track.granularity,
    }


def _track_from_json(data: Optional[Dict[str, Any]]) -> Optional[MediaTrack]:
    if data is None:
        return None
    return MediaTrack(**data)


def _rope_to_json(rope: MultimediaRope) -> Dict[str, Any]:
    return {
        "rope_id": rope.rope_id,
        "creator": rope.creator,
        "play_access": list(rope.play_access),
        "edit_access": list(rope.edit_access),
        "segments": [
            {
                "video": _track_to_json(segment.video),
                "audio": _track_to_json(segment.audio),
                "triggers": [
                    {
                        "video_block": trigger.video_block,
                        "audio_block": trigger.audio_block,
                        "text": trigger.text,
                    }
                    for trigger in segment.triggers
                ],
            }
            for segment in rope.segments
        ],
    }


def _rope_from_json(data: Dict[str, Any]) -> MultimediaRope:
    segments = tuple(
        Segment(
            video=_track_from_json(seg["video"]),
            audio=_track_from_json(seg["audio"]),
            triggers=tuple(
                Trigger(**trigger) for trigger in seg["triggers"]
            ),
        )
        for seg in data["segments"]
    )
    return MultimediaRope(
        rope_id=data["rope_id"],
        creator=data["creator"],
        segments=segments,
        play_access=tuple(data["play_access"]),
        edit_access=tuple(data["edit_access"]),
    )


# ---------------------------------------------------------------------------
# Public interface
# ---------------------------------------------------------------------------

def dump_image(
    msm: MultimediaStorageManager,
    mrs: Optional[MultimediaRopeServer] = None,
) -> Dict[str, Any]:
    """Serialize an MSM (and optionally its rope server) to a JSON dict."""
    image: Dict[str, Any] = {
        "version": IMAGE_VERSION,
        "slots": msm.freemap.slots,
        "strands": [
            _strand_to_json(msm.get_strand(strand_id))
            for strand_id in msm.strand_ids()
        ],
    }
    if mrs is not None:
        image["ropes"] = [
            _rope_to_json(mrs.get_rope(rope_id))
            for rope_id in mrs.rope_ids()
        ]
    return image


def load_image(
    image: Dict[str, Any],
    msm: MultimediaStorageManager,
    mrs: Optional[MultimediaRopeServer] = None,
) -> None:
    """Restore an image into a *fresh* MSM (and MRS) on equivalent hardware.

    The target storage manager must be empty and its drive must expose at
    least as many slots as the image was taken on.
    """
    if image.get("version") != IMAGE_VERSION:
        raise ParameterError(
            f"unsupported image version {image.get('version')!r}"
        )
    if msm.strand_ids():
        raise ParameterError("load_image requires an empty storage manager")
    if msm.freemap.slots < image["slots"]:
        raise ParameterError(
            f"target drive has {msm.freemap.slots} slots, image needs "
            f"{image['slots']}"
        )
    block_bits = msm.drive.block_bits
    highest_strand = 0
    for strand_data in image["strands"]:
        strand = _strand_from_json(strand_data, block_bits)
        for slot in strand.slots():
            msm.freemap.allocate(slot)
        for slot in strand.index.assigned_slots():
            msm.freemap.allocate(slot)
        msm._strands[strand.strand_id] = strand
        highest_strand = max(highest_strand, _numeric_suffix(strand.strand_id))
    _advance_counter(msm, "_ids", highest_strand)
    if mrs is not None and "ropes" in image:
        highest_rope = 0
        for rope_data in image["ropes"]:
            rope = _rope_from_json(rope_data)
            mrs._install(rope)
            highest_rope = max(highest_rope, _numeric_suffix(rope.rope_id))
        _advance_counter(mrs, "_rope_ids", highest_rope)


def _numeric_suffix(identifier: str) -> int:
    digits = "".join(ch for ch in identifier if ch.isdigit())
    return int(digits) if digits else 0


def _advance_counter(owner: Any, attribute: str, minimum: int) -> None:
    """Ensure an itertools.count ID generator starts past *minimum*."""
    import itertools

    setattr(owner, attribute, itertools.count(minimum + 1))


def save_file(
    path: str,
    msm: MultimediaStorageManager,
    mrs: Optional[MultimediaRopeServer] = None,
) -> None:
    """Write the image as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dump_image(msm, mrs), handle, indent=1)


def load_file(
    path: str,
    msm: MultimediaStorageManager,
    mrs: Optional[MultimediaRopeServer] = None,
) -> None:
    """Restore an image JSON file into fresh servers."""
    with open(path, "r", encoding="utf-8") as handle:
        load_image(json.load(handle), msm, mrs)
