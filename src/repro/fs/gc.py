"""Garbage collection of unreferenced strands via *interests* (§4).

"A media strand, no part of which is referred to by any rope, can be
deleted to reclaim its storage space.  A garbage collection algorithm such
as the one presented by Terry and Swinehart in the Etherphone system,
which uses a reference count mechanism called interests, can be used for
this purpose."

:class:`InterestRegistry` records which ropes hold an interest in which
strands; :class:`GarbageCollector` sweeps strands whose interest set is
empty.  Interests are per (rope, strand) pair — a rope referencing three
intervals of one strand holds a single interest in it, dropped only when
the rope stops referencing the strand entirely (or is deleted).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set

from repro.errors import GarbageCollectionError

__all__ = ["InterestRegistry", "GarbageCollector"]


class InterestRegistry:
    """Reference counts ("interests") from ropes to strands."""

    def __init__(self) -> None:
        self._by_strand: Dict[str, Set[str]] = {}
        self._by_rope: Dict[str, Set[str]] = {}

    def register(self, rope_id: str, strand_id: str) -> None:
        """Record that *rope_id* references *strand_id* (idempotent)."""
        self._by_strand.setdefault(strand_id, set()).add(rope_id)
        self._by_rope.setdefault(rope_id, set()).add(strand_id)

    def drop(self, rope_id: str, strand_id: str) -> None:
        """Remove one rope→strand interest."""
        holders = self._by_strand.get(strand_id)
        if holders is None or rope_id not in holders:
            raise GarbageCollectionError(
                f"rope {rope_id!r} holds no interest in strand {strand_id!r}"
            )
        holders.discard(rope_id)
        if not holders:
            del self._by_strand[strand_id]
        referenced = self._by_rope.get(rope_id, set())
        referenced.discard(strand_id)
        if not referenced and rope_id in self._by_rope:
            del self._by_rope[rope_id]

    def drop_rope(self, rope_id: str) -> List[str]:
        """Drop every interest held by *rope_id*; returns affected strands."""
        strands = sorted(self._by_rope.get(rope_id, set()))
        for strand_id in strands:
            self.drop(rope_id, strand_id)
        return strands

    def sync_rope(self, rope_id: str, referenced: Iterable[str]) -> None:
        """Make *rope_id*'s interests exactly match *referenced*.

        Called after every editing operation: interests are added for
        newly referenced strands and dropped for strands the edited rope
        no longer mentions.
        """
        target = set(referenced)
        current = set(self._by_rope.get(rope_id, set()))
        for strand_id in target - current:
            self.register(rope_id, strand_id)
        for strand_id in current - target:
            self.drop(rope_id, strand_id)

    def interest_count(self, strand_id: str) -> int:
        """Number of ropes referencing a strand."""
        return len(self._by_strand.get(strand_id, ()))

    def is_referenced(self, strand_id: str) -> bool:
        """True when at least one rope references the strand."""
        return self.interest_count(strand_id) > 0

    def holders(self, strand_id: str) -> Set[str]:
        """Ropes currently referencing a strand."""
        return set(self._by_strand.get(strand_id, set()))

    def strands_of(self, rope_id: str) -> Set[str]:
        """Strands a rope currently references."""
        return set(self._by_rope.get(rope_id, set()))


class GarbageCollector:
    """Sweeps unreferenced strands out of the storage manager.

    Parameters
    ----------
    registry:
        The interest registry consulted for liveness.
    delete_strand:
        Callback that actually reclaims a strand's disk space (the
        storage manager's ``delete_strand``).
    """

    def __init__(
        self,
        registry: InterestRegistry,
        delete_strand: Callable[[str], None],
    ):
        self.registry = registry
        self._delete_strand = delete_strand
        self.collected_total = 0

    def collect(self, known_strands: Iterable[str]) -> List[str]:
        """Delete every known strand with no interests; returns their IDs."""
        victims = [
            strand_id
            for strand_id in known_strands
            if not self.registry.is_referenced(strand_id)
        ]
        for strand_id in victims:
            self._delete_strand(strand_id)
        self.collected_total += len(victims)
        return victims
