"""Strands: immutable sequences of continuously recorded media (§2).

"Strand is an immutable sequence of continuously recorded audio samples or
video frames.  Immutability of strands is necessary to simplify the
process of garbage collection."

A :class:`Strand` couples three things:

* the **content** of its media blocks (:class:`repro.fs.blocks.MediaBlock`
  per block number; silence-eliminated audio blocks have no content),
* the **placement** of those blocks on disk (a slot per block; silence
  holders have none),
* the **3-level index** (:class:`repro.fs.index.StrandIndex`) mapping
  block numbers to raw disk addresses, with NULL entries for silence.

A strand under recording accepts appends; :meth:`finalize` freezes it.
Every later mutation attempt raises
:class:`~repro.errors.StrandImmutableError` — rope editing never touches
strand contents, it only builds new interval lists (§4).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ParameterError, StrandImmutableError
from repro.fs.blocks import BlockKind, MediaBlock
from repro.fs.index import PrimaryEntry, StrandIndex

__all__ = ["Strand"]


class Strand:
    """One immutable media strand and its on-disk layout.

    Parameters
    ----------
    strand_id:
        Unique identifier assigned by the storage manager.
    kind:
        VIDEO, AUDIO, or MIXED.
    unit_rate:
        Frames/s (video) or samples/s (audio) — the recording rate.
    granularity:
        Units per block (η) this strand was stored with.
    sectors_per_block:
        Disk sectors per block slot, for index-entry construction.
    index:
        The strand's 3-level index (owned by this strand).
    scattering_lower / scattering_upper:
        The placement-policy bounds this strand's blocks honour; the
        editing layer reads them for the §4.2 copy bounds.
    """

    def __init__(
        self,
        strand_id: str,
        kind: BlockKind,
        unit_rate: float,
        granularity: int,
        sectors_per_block: int,
        index: StrandIndex,
        scattering_lower: float = 0.0,
        scattering_upper: float = float("inf"),
    ):
        if kind not in (BlockKind.VIDEO, BlockKind.AUDIO, BlockKind.MIXED):
            raise ParameterError(f"strands hold media, not {kind}")
        if unit_rate <= 0:
            raise ParameterError(
                f"unit_rate must be positive, got {unit_rate}"
            )
        if granularity < 1:
            raise ParameterError(
                f"granularity must be >= 1, got {granularity}"
            )
        if sectors_per_block < 1:
            raise ParameterError(
                f"sectors_per_block must be >= 1, got {sectors_per_block}"
            )
        self.strand_id = strand_id
        self.kind = kind
        self.unit_rate = unit_rate
        self.granularity = granularity
        self.sectors_per_block = sectors_per_block
        self.index = index
        self.scattering_lower = scattering_lower
        self.scattering_upper = scattering_upper
        self._contents: Dict[int, MediaBlock] = {}
        self._slots: List[Optional[int]] = []
        self._block_units: List[int] = []
        self._units: int = 0
        self._finalized = False

    # -- recording-time mutation -----------------------------------------------

    def _check_mutable(self) -> None:
        if self._finalized:
            raise StrandImmutableError(
                f"strand {self.strand_id} is finalized; strands are "
                "immutable — edit at the rope layer instead"
            )

    def append_block(self, block: MediaBlock, slot: int) -> int:
        """Append a stored media block at disk *slot*; returns block number."""
        self._check_mutable()
        if slot < 0:
            raise ParameterError(f"slot must be >= 0, got {slot}")
        units = block.frame_count if self.kind is not BlockKind.AUDIO else (
            block.sample_count
        )
        if self.kind is BlockKind.MIXED:
            units = block.frame_count
        entry = PrimaryEntry(
            sector=slot * self.sectors_per_block,
            sector_count=self.sectors_per_block,
        )
        number = self.index.append(entry, units=units)
        self._contents[number] = block
        self._slots.append(slot)
        self._block_units.append(units)
        self._units += units
        return number

    def append_silence(self, units: int) -> int:
        """Append a NULL silence holder covering *units* samples."""
        self._check_mutable()
        if self.kind is BlockKind.VIDEO:
            raise ParameterError("video strands have no silence holders")
        if units < 1:
            raise ParameterError(f"units must be >= 1, got {units}")
        number = self.index.append(None, units=units)
        self._slots.append(None)
        self._block_units.append(units)
        self._units += units
        return number

    def finalize(self) -> "Strand":
        """Freeze the strand; further appends raise.  Returns self."""
        self._finalized = True
        return self

    def relocate_block(self, block_number: int, new_slot: int) -> None:
        """Move a stored block to a new disk slot (physical migration).

        Storage reorganization (§6.2) is allowed on finalized strands:
        immutability protects the *logical* media sequence, not the
        physical addresses.  The 3-level index is rewritten to match.
        The caller (the reorganizer) owns free-map bookkeeping.
        """
        current = self.slot_of(block_number)
        if current is None:
            raise ParameterError(
                f"block {block_number} is a silence holder; nothing to move"
            )
        if new_slot < 0:
            raise ParameterError(f"new_slot must be >= 0, got {new_slot}")
        self._slots[block_number] = new_slot
        self.index.update(
            block_number,
            PrimaryEntry(
                sector=new_slot * self.sectors_per_block,
                sector_count=self.sectors_per_block,
            ),
        )

    # -- read access ----------------------------------------------------------

    @property
    def is_finalized(self) -> bool:
        """True once recording completed."""
        return self._finalized

    @property
    def block_count(self) -> int:
        """Blocks including silence holders."""
        return len(self._slots)

    @property
    def stored_block_count(self) -> int:
        """Blocks that actually occupy disk slots."""
        return sum(1 for slot in self._slots if slot is not None)

    @property
    def unit_count(self) -> int:
        """Total frames/samples, including silence-covered samples."""
        return self._units

    @property
    def duration(self) -> float:
        """Playback length in seconds."""
        return self._units / self.unit_rate

    @property
    def stored_bits(self) -> float:
        """Total payload bits on disk."""
        return sum(block.payload_bits for block in self._contents.values())

    @property
    def block_playback_duration(self) -> float:
        """Nominal playback duration of one full block (η/R)."""
        return self.granularity / self.unit_rate

    def slot_of(self, block_number: int) -> Optional[int]:
        """Disk slot of a block (None = silence holder)."""
        if not 0 <= block_number < len(self._slots):
            raise ParameterError(
                f"block {block_number} outside strand "
                f"(0..{len(self._slots) - 1})"
            )
        return self._slots[block_number]

    def block_at(self, block_number: int) -> Optional[MediaBlock]:
        """Content of a block (None = silence holder)."""
        self.slot_of(block_number)  # bounds check
        return self._contents.get(block_number)

    def units_of(self, block_number: int) -> int:
        """Frames/samples a block covers (silence holders included)."""
        self.slot_of(block_number)  # bounds check
        return self._block_units[block_number]

    def unit_offset_of(self, block_number: int) -> int:
        """First unit (frame/sample) position covered by a block."""
        self.slot_of(block_number)  # bounds check
        return sum(self._block_units[:block_number])

    def slots(self) -> List[int]:
        """All occupied media slots, in block order (silences skipped)."""
        return [slot for slot in self._slots if slot is not None]

    def blocks(self) -> Iterator[Tuple[int, Optional[MediaBlock]]]:
        """Iterate ``(block_number, content-or-None)`` in playback order."""
        for number in range(len(self._slots)):
            yield number, self._contents.get(number)

    def verify_against_index(self) -> None:
        """Cross-check placement against the index (test/debug aid)."""
        self.index.verify()
        if self.index.block_count != self.block_count:
            raise ParameterError(
                f"index holds {self.index.block_count} blocks, strand "
                f"placement holds {self.block_count}"
            )
        for number, slot in enumerate(self._slots):
            entry = self.index.lookup(number)
            if slot is None:
                if entry is not None:
                    raise ParameterError(
                        f"block {number}: silence in placement but indexed "
                        f"at sector {entry.sector}"
                    )
            else:
                if entry is None:
                    raise ParameterError(
                        f"block {number}: placed at slot {slot} but index "
                        "holds a NULL silence entry"
                    )
                if entry.sector != slot * self.sectors_per_block:
                    raise ParameterError(
                        f"block {number}: slot {slot} disagrees with "
                        f"indexed sector {entry.sector}"
                    )
