"""Storage reorganization for densely utilized disks (§6.2 future work).

"Constrained scattering of blocks of a media strand can be difficult to
achieve when the disk is densely utilized.  When it becomes impossible to
place new media strands in such a way that their scattering bounds are
satisfied, the storage of existing media strands on the disk may have to
be reorganized.  Towards this end, we are investigating mechanisms for
merging multiple media strands so as to optimize storage utilization."

:class:`Reorganizer` implements that mechanism: when a trial placement
fails, existing strands are migrated one at a time into fresh, compact
constrained placements (sweeping from the low end of the disk), which
coalesces the scattered free slots into a contiguous high region where
new strands fit again.  Migration moves *physical* blocks only — the
strand's logical content (its immutable frame/sample sequence) is
untouched, and its 3-level index is rewritten to the new addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.disk.allocation import ConstrainedScatterAllocator, ScatterBounds
from repro.errors import (
    AllocationError,
    DiskFullError,
    ScatteringError,
)
from repro.fs.storage_manager import MultimediaStorageManager
from repro.fs.strand import Strand

__all__ = ["ReorganizationReport", "Reorganizer"]


@dataclass(frozen=True)
class ReorganizationReport:
    """Outcome of a make-room pass."""

    success: bool
    strands_migrated: int
    blocks_moved: int
    trial_blocks: int

    @property
    def moved_anything(self) -> bool:
        """True when at least one block changed position."""
        return self.blocks_moved > 0


class Reorganizer:
    """Migrates strands to restore scattering-feasible free space."""

    def __init__(self, msm: MultimediaStorageManager):
        self.msm = msm

    # -- feasibility probing -----------------------------------------------------

    def placement_feasible(
        self, block_count: int, bounds: Optional[ScatterBounds] = None
    ) -> bool:
        """Can a *block_count*-block strand be placed right now?

        Runs a trial allocation against the live free map and rolls it
        back; nothing is stored.
        """
        if bounds is None:
            policy = self.msm.policies.video
            bounds = ScatterBounds(
                policy.scattering_lower, policy.scattering_upper
            )
        allocator = ConstrainedScatterAllocator(
            self.msm.drive, self.msm.freemap, bounds
        )
        try:
            slots = allocator.allocate_strand(block_count)
        except (ScatteringError, AllocationError, DiskFullError):
            return False
        allocator.release(slots)
        return True

    # -- migration -----------------------------------------------------------------

    def _migrate_strand(self, strand: Strand, hint: int) -> int:
        """Re-place all of *strand*'s blocks compactly from *hint*.

        Returns the number of blocks moved.  The old slots are released
        only after the new placement fully succeeds, so a failed
        migration leaves the strand untouched.
        """
        bounds = ScatterBounds(
            strand.scattering_lower, strand.scattering_upper
        )
        old_slots = strand.slots()
        if not old_slots:
            return 0
        # Release first so the allocator can reuse this strand's own
        # region; on failure, re-claim the exact old slots.
        for slot in old_slots:
            self.msm.freemap.release(slot)
        allocator = ConstrainedScatterAllocator(
            self.msm.drive, self.msm.freemap, bounds
        )
        try:
            new_slots = allocator.allocate_strand(len(old_slots), hint)
        except (ScatteringError, AllocationError, DiskFullError):
            for slot in old_slots:
                self.msm.freemap.allocate(slot)
            return 0
        moved = 0
        cursor = iter(new_slots)
        for number in range(strand.block_count):
            if strand.slot_of(number) is None:
                continue
            new_slot = next(cursor)
            if strand.slot_of(number) != new_slot:
                moved += 1
            strand.relocate_block(number, new_slot)
        return moved

    def make_room(
        self,
        block_count: int,
        bounds: Optional[ScatterBounds] = None,
    ) -> ReorganizationReport:
        """Reorganize until a *block_count*-block placement fits.

        Strands are migrated in ID order, each packed immediately after
        the previous one from the low end of the disk; after each
        migration the trial placement is retried.  Index blocks are not
        moved (they have no real-time constraint).
        """
        if self.placement_feasible(block_count, bounds):
            return ReorganizationReport(
                success=True, strands_migrated=0, blocks_moved=0,
                trial_blocks=block_count,
            )
        migrated = 0
        moved = 0
        hint = 0
        for strand_id in self.msm.strand_ids():
            strand = self.msm.get_strand(strand_id)
            moved_here = self._migrate_strand(strand, hint)
            if strand.slots():
                hint = max(strand.slots()) + 1
            if moved_here:
                migrated += 1
                moved += moved_here
            if self.placement_feasible(block_count, bounds):
                return ReorganizationReport(
                    success=True, strands_migrated=migrated,
                    blocks_moved=moved, trial_blocks=block_count,
                )
        return ReorganizationReport(
            success=self.placement_feasible(block_count, bounds),
            strands_migrated=migrated,
            blocks_moved=moved,
            trial_blocks=block_count,
        )
