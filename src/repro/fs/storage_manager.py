"""The Multimedia Storage Manager (MSM) — §5.2's lower layer.

"This layer is responsible for physical storage of media strands on the
disk.  The functionality of the MSM include: determination of granularity
and scattering of strands, enforcing admission control to service multiple
requests simultaneously, and maintenance of scattering while editing."

The MSM owns the drive, the free map, the per-medium placement policies
(derived from the continuity analysis of §3), the strand table, and the
interest registry used for garbage collection.  Strand storage here is
*logical* — blocks are placed and indexed but no simulated time is
charged; the real-time behaviour is exercised by :mod:`repro.service`,
which replays stored placements through the same drive with timing.
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core import admission
from repro.core.continuity import Architecture, max_scattering_mixed
from repro.core.granularity import (
    PlacementPolicy,
    derive_policy,
    max_granularity,
    scattering_lower_bound,
)
from repro.core.symbols import (
    AudioStream,
    DisplayDeviceParameters,
    VideoStream,
    audio_block_model,
    video_block_model,
)
from repro.disk.allocation import ConstrainedScatterAllocator, ScatterBounds
from repro.disk.drive import SimulatedDrive
from repro.disk.freemap import FreeMap
from repro.disk.layout import GapFiller
from repro.errors import ParameterError, UnknownStrandError
from repro.fs.blocks import AudioPayload, BlockKind, MediaBlock
from repro.fs.gc import GarbageCollector, InterestRegistry
from repro.fs.index import (
    PRIMARY_ENTRY_BITS,
    SECONDARY_ENTRY_BITS,
    StrandIndex,
    fanout_for,
)
from repro.fs.silence import plan_audio_blocks
from repro.fs.strand import Strand
from repro.media.audio import AudioChunk, SilenceDetector
from repro.media.frames import Frame

__all__ = ["MediaPolicies", "MultimediaStorageManager"]


@dataclass(frozen=True)
class MediaPolicies:
    """Derived placement policies, one per stored medium."""

    video: PlacementPolicy
    audio: PlacementPolicy
    mixed: PlacementPolicy


def _clamp_granularity(eta: int, unit_size: float, slot_bits: float) -> int:
    """Keep η·s within one block slot (all slots are one fixed size)."""
    capacity = int(slot_bits // unit_size)
    if capacity < 1:
        raise ParameterError(
            f"a {slot_bits}-bit slot cannot hold one {unit_size}-bit unit"
        )
    return max(1, min(eta, capacity))


class MultimediaStorageManager:
    """Strand storage over one simulated drive.

    Parameters
    ----------
    drive:
        The mechanism strands are placed on.
    video / audio:
        The stream formats this server stores.
    video_device / audio_device:
        Display-device parameters — their buffer sizes determine
        granularity (§3.3.4).
    architecture:
        Retrieval architecture the policies are derived for.
    copy_budget:
        §4.2 editing-copy budget, setting the scattering lower bound.
    general_admission:
        When True, use the per-request-k controller
        (:class:`repro.core.general_admission.GeneralAdmissionController`,
        the Eq.-11 general form) instead of the paper's uniform-k
        algorithm — admits mixed audio+video populations the averaged
        model rejects.
    obs:
        Optional :class:`~repro.obs.Observability` handle.  When given,
        it is attached to the drive, its audit log is wired into the
        admission controller, and the storage hot paths report into its
        profiling timers; sessions built over this MSM inherit it.
    """

    def __init__(
        self,
        drive: SimulatedDrive,
        video: VideoStream,
        audio: AudioStream,
        video_device: DisplayDeviceParameters,
        audio_device: DisplayDeviceParameters,
        architecture: Architecture = Architecture.PIPELINED,
        copy_budget: int = 4,
        freemap: Optional[FreeMap] = None,
        general_admission: bool = False,
        obs=None,
    ):
        self.drive = drive
        self.obs = obs
        if obs is not None:
            drive.attach_observer(obs)
        self.freemap = freemap if freemap is not None else FreeMap(drive.slots)
        self.video = video
        self.audio = audio
        self.video_device = video_device
        self.audio_device = audio_device
        self.architecture = architecture
        self.copy_budget = copy_budget
        self.disk_params = drive.parameters()
        self.policies = self._derive_policies()
        if general_admission:
            from repro.core.general_admission import (
                GeneralAdmissionController,
            )

            self.admission = GeneralAdmissionController(self.disk_params)
        else:
            self.admission = admission.AdmissionController(self.disk_params)
        if obs is not None:
            self.admission.audit = obs.audit
        self.interests = InterestRegistry()
        self.collector = GarbageCollector(self.interests, self.delete_strand)
        self._strands: Dict[str, Strand] = {}
        self._ids = itertools.count(1)
        self._gap_filler = GapFiller(self.freemap)
        self.degraded_heads = 0

    # -- degraded-mode admission (fault recovery) -------------------------------

    def revalidate_admission(self, heads_lost: int = 1) -> int:
        """Shrink admission capacity after losing disk heads mid-service.

        Degraded mode derates the analytic transfer rate by the surviving
        head fraction (each lost head takes its share of the aggregate
        bandwidth with it), which raises β and therefore lowers the
        Eq.-(17) capacity ``n_max = ⌈γ/β⌉ − 1``.  Active requests keep
        playing — degraded, with recovery skips — but no *new* request is
        admitted against capacity the hardware no longer has.

        Returns the revalidated n_max: for the currently active request
        set when one exists, else for a representative video request.
        0 means the server can admit nothing (the last head died).
        """
        if heads_lost < 1:
            raise ParameterError(
                f"heads_lost must be >= 1, got {heads_lost}"
            )
        total = max(1, self.disk_params.heads)
        surviving = total - heads_lost
        self.degraded_heads += heads_lost
        if surviving < 1:
            # The last mechanism is gone: freeze admission entirely.
            if hasattr(self.admission, "max_k"):
                self.admission.max_k = 0
            self._audit_revalidate(heads_lost, surviving, total, 0)
            return 0
        self.disk_params = replace(
            self.disk_params,
            transfer_rate=self.disk_params.transfer_rate
            * (surviving / total),
            heads=surviving,
        )
        self.admission.disk = self.disk_params
        active = dict(getattr(self.admission, "active_requests", {}) or {})
        requests = list(active.values())
        if not requests:
            probe = admission.RequestDescriptor(
                block=video_block_model(
                    self.video, self.policies.video.granularity
                ),
                scattering_avg=min(
                    self.policies.video.scattering_upper,
                    self.disk_params.seek_max,
                ),
            )
            requests = [probe]
        degraded_n_max = max(
            0,
            admission.n_max(
                admission.service_parameters(requests, self.disk_params)
            ),
        )
        self._audit_revalidate(heads_lost, surviving, total, degraded_n_max)
        return degraded_n_max

    def _audit_revalidate(
        self, heads_lost: int, surviving: int, total: int, new_n_max: int
    ) -> None:
        """Record a degraded-mode revalidation in the admission audit log.

        The logged inequality is the liveness condition the degrade path
        branches on: with ``surviving >= 1`` the server keeps admitting
        against the shrunk ``n_max``; below it, admission freezes.
        """
        audit = getattr(self.admission, "audit", None)
        if audit is None:
            return
        audit.record(
            "revalidate",
            f"degraded(heads={surviving}/{total})",
            "surviving >= 1",
            {
                "heads_lost": float(heads_lost),
                "surviving": float(surviving),
                "total": float(total),
                "n_max": float(new_n_max),
            },
            satisfied=surviving >= 1,
            detail=f"degraded n_max={new_n_max} "
            f"(cumulative heads lost: {self.degraded_heads})",
        )

    # -- admission (RPC-visible surface) -----------------------------------------

    def _trace_span(self, name: str, trace):
        """Open a span continuing a wire *trace* context, or None."""
        if trace is None or self.obs is None:
            return None
        tracer = self.obs.tracer
        if not tracer.enabled:
            return None
        return tracer.start_span(
            name, float(trace.get("time", 0.0)), parent=trace
        )

    def admit(self, descriptor, trace=None):
        """Run admission control for *descriptor* (§3.4, Eq. 17/18).

        This is the method the MRS calls across the RPC boundary; the
        optional *trace* keyword is a marshalled span context
        (:meth:`repro.obs.tracing.Span.wire`) continued here as an
        ``msm.admit`` span, so a session's trace stays connected from
        the server front end down into the storage manager.
        """
        span = self._trace_span("msm.admit", trace)
        tracer = self.obs.tracer if self.obs is not None else None
        try:
            decision = self.admission.admit(descriptor)
        except Exception as error:
            if span is not None:
                tracer.end_span(
                    span, span.start, status=type(error).__name__
                )
            raise
        if span is not None:
            span.attrs["request_id"] = decision.request_id
            tracer.end_span(span, span.start)
        return decision

    def release(self, request_id: str, trace=None) -> None:
        """Release an admitted request's service slot (RPC-visible)."""
        span = self._trace_span("msm.release", trace)
        self.admission.release(request_id)
        if span is not None:
            self.obs.tracer.end_span(span, span.start)

    # -- admission descriptors ---------------------------------------------------

    def descriptor_for_media(
        self, includes_video: bool
    ) -> admission.RequestDescriptor:
        """Admission descriptor for a request's dominant medium.

        Video dominates whenever selected (it is "the most demanding
        medium" per §3); audio-only requests use the audio policy.  The
        MSM owns this derivation because the policies and disk
        parameters live here — the MRS and the media server both ask
        for descriptors through this one method.
        """
        if includes_video:
            policy = self.policies.video
            block = video_block_model(self.video, policy.granularity)
        else:
            policy = self.policies.audio
            block = audio_block_model(self.audio, policy.granularity)
        scattering = min(
            self.disk_params.seek_avg, policy.scattering_upper
        )
        return admission.RequestDescriptor(
            block=block, scattering_avg=scattering
        )

    # -- policy derivation -----------------------------------------------------

    def _derive_policies(self) -> MediaPolicies:
        slot_bits = self.drive.block_bits
        video_eta = _clamp_granularity(
            max_granularity(self.architecture, self.video_device),
            self.video.frame_size,
            slot_bits,
        )
        video_policy = derive_policy(
            video_block_model(self.video, video_eta),
            self.disk_params,
            self.video_device,
            architecture=self.architecture,
            copy_budget=self.copy_budget,
            granularity=video_eta,
        )
        audio_eta = _clamp_granularity(
            max_granularity(self.architecture, self.audio_device),
            self.audio.sample_size,
            slot_bits,
        )
        audio_policy = derive_policy(
            audio_block_model(self.audio, audio_eta),
            self.disk_params,
            self.audio_device,
            architecture=self.architecture,
            copy_budget=self.copy_budget,
            granularity=audio_eta,
        )
        # Heterogeneous blocks: video granularity, with the corresponding
        # audio payload sharing the block; the §3.3.3 Eq.-(6) bound governs.
        audio_per_video_block = max(
            1,
            int(
                self.audio.sample_rate
                * video_eta
                / self.video.frame_rate
            ),
        )
        mixed_eta = _clamp_granularity(
            video_eta,
            self.video.frame_size
            + audio_per_video_block
            * self.audio.sample_size
            / max(1, video_eta),
            slot_bits,
        )
        mixed_upper = max_scattering_mixed(
            video_block_model(self.video, mixed_eta),
            audio_block_model(self.audio, audio_per_video_block),
            self.disk_params,
            heterogeneous=True,
        )
        mixed_policy = PlacementPolicy(
            granularity=mixed_eta,
            block_bits=mixed_eta * self.video.frame_size
            + audio_per_video_block * self.audio.sample_size,
            scattering_lower=scattering_lower_bound(
                self.disk_params, self.copy_budget
            ),
            scattering_upper=mixed_upper,
            architecture=self.architecture,
        )
        return MediaPolicies(
            video=video_policy, audio=audio_policy, mixed=mixed_policy
        )

    def policy_for(self, kind: BlockKind) -> PlacementPolicy:
        """The placement policy governing a block kind."""
        if kind is BlockKind.VIDEO:
            return self.policies.video
        if kind is BlockKind.AUDIO:
            return self.policies.audio
        if kind is BlockKind.MIXED:
            return self.policies.mixed
        raise ParameterError(f"no placement policy for {kind}")

    def _allocator_for(self, policy: PlacementPolicy) -> ConstrainedScatterAllocator:
        return ConstrainedScatterAllocator(
            self.drive,
            self.freemap,
            ScatterBounds(policy.scattering_lower, policy.scattering_upper),
        )

    # -- strand bookkeeping ------------------------------------------------------

    def _new_strand_id(self) -> str:
        return f"S{next(self._ids):04d}"

    def _new_index(self, unit_rate: float) -> StrandIndex:
        slot_bits = self.drive.block_bits
        return StrandIndex(
            frame_rate=unit_rate,
            primary_fanout=fanout_for(slot_bits, PRIMARY_ENTRY_BITS),
            secondary_fanout=fanout_for(slot_bits, SECONDARY_ENTRY_BITS),
        )

    def _register(self, strand: Strand) -> Strand:
        strand.index.assign_slots(
            self._gap_filler.place(strand.index.index_block_count())
        )
        strand.finalize()
        self._strands[strand.strand_id] = strand
        return strand

    def get_strand(self, strand_id: str) -> Strand:
        """Look up a strand; raises :class:`UnknownStrandError`."""
        try:
            return self._strands[strand_id]
        except KeyError:
            raise UnknownStrandError(strand_id) from None

    def strand_ids(self) -> List[str]:
        """All stored strand IDs, sorted."""
        return sorted(self._strands)

    @property
    def occupancy(self) -> float:
        """Disk-occupancy fraction (drives the §4.2 sparse/dense regime)."""
        return self.freemap.occupancy

    # -- recording (batch interfaces) ---------------------------------------------

    def _obs_timer(self, name: str):
        """A profiling context for *name*, or a no-op when unobserved."""
        if self.obs is not None:
            return self.obs.timed(name)
        return contextlib.nullcontext()

    def store_video_strand(
        self,
        frames: Sequence[Frame],
        hint: Optional[int] = None,
    ) -> Strand:
        """Store a video frame sequence as a new strand."""
        with self._obs_timer("msm.store_video_strand"):
            return self._store_video_strand(frames, hint)

    def _store_video_strand(
        self,
        frames: Sequence[Frame],
        hint: Optional[int],
    ) -> Strand:
        if not frames:
            raise ParameterError("cannot store an empty video strand")
        policy = self.policies.video
        allocator = self._allocator_for(policy)
        index = self._new_index(self.video.frame_rate)
        strand = Strand(
            strand_id=self._new_strand_id(),
            kind=BlockKind.VIDEO,
            unit_rate=self.video.frame_rate,
            granularity=policy.granularity,
            sectors_per_block=self.drive.sectors_per_block,
            index=index,
            scattering_lower=policy.scattering_lower,
            scattering_upper=policy.scattering_upper,
        )
        previous: Optional[int] = None
        eta = policy.granularity
        for start in range(0, len(frames), eta):
            group = frames[start:start + eta]
            block = MediaBlock(
                kind=BlockKind.VIDEO,
                video_tokens=tuple(frame.token for frame in group),
                video_bits=sum(frame.size_bits for frame in group),
            )
            if previous is None:
                slot = allocator.allocate_first(hint)
            else:
                slot = allocator.allocate_after(previous)
            strand.append_block(block, slot)
            previous = slot
        return self._register(strand)

    def store_audio_strand(
        self,
        chunks: Sequence[AudioChunk],
        detector: Optional[SilenceDetector] = SilenceDetector(),
        hint: Optional[int] = None,
    ) -> Strand:
        """Store a chunked audio stream, applying silence elimination.

        Pass ``detector=None`` to store every block (the E10 baseline).
        """
        with self._obs_timer("msm.store_audio_strand"):
            return self._store_audio_strand(chunks, detector, hint)

    def _store_audio_strand(
        self,
        chunks: Sequence[AudioChunk],
        detector: Optional[SilenceDetector],
        hint: Optional[int],
    ) -> Strand:
        if not chunks:
            raise ParameterError("cannot store an empty audio strand")
        policy = self.policies.audio
        plan = plan_audio_blocks(
            self.audio, chunks, policy.granularity, detector
        )
        allocator = self._allocator_for(policy)
        strand = Strand(
            strand_id=self._new_strand_id(),
            kind=BlockKind.AUDIO,
            unit_rate=self.audio.sample_rate,
            granularity=policy.granularity,
            sectors_per_block=self.drive.sectors_per_block,
            index=self._new_index(self.audio.sample_rate),
            scattering_lower=policy.scattering_lower,
            scattering_upper=policy.scattering_upper,
        )
        previous: Optional[int] = None
        for number, payload in enumerate(plan.payloads):
            if payload is None:
                strand.append_silence(plan.samples_in_block(number))
                continue
            block = MediaBlock(kind=BlockKind.AUDIO, audio=payload)
            if previous is None:
                slot = allocator.allocate_first(hint)
            else:
                slot = allocator.allocate_after(previous)
            strand.append_block(block, slot)
            previous = slot
        return self._register(strand)

    def store_mixed_strand(
        self,
        frames: Sequence[Frame],
        chunks: Sequence[AudioChunk],
        hint: Optional[int] = None,
    ) -> Strand:
        """Store video + audio together in heterogeneous blocks (§3.3.3).

        Each block holds η_vs frames plus the audio samples spanning the
        same playback period, giving "implicit inter-media
        synchronization".
        """
        with self._obs_timer("msm.store_mixed_strand"):
            return self._store_mixed_strand(frames, chunks, hint)

    def _store_mixed_strand(
        self,
        frames: Sequence[Frame],
        chunks: Sequence[AudioChunk],
        hint: Optional[int],
    ) -> Strand:
        if not frames or not chunks:
            raise ParameterError("a mixed strand needs both media")
        policy = self.policies.mixed
        allocator = self._allocator_for(policy)
        strand = Strand(
            strand_id=self._new_strand_id(),
            kind=BlockKind.MIXED,
            unit_rate=self.video.frame_rate,
            granularity=policy.granularity,
            sectors_per_block=self.drive.sectors_per_block,
            index=self._new_index(self.video.frame_rate),
            scattering_lower=policy.scattering_lower,
            scattering_upper=policy.scattering_upper,
        )
        eta = policy.granularity
        total_samples = chunks[-1].end_sample
        samples_per_block = int(
            self.audio.sample_rate * eta / self.video.frame_rate
        )
        previous: Optional[int] = None
        block_number = 0
        for start in range(0, len(frames), eta):
            group = frames[start:start + eta]
            sample_start = block_number * samples_per_block
            sample_count = max(
                1, min(samples_per_block, total_samples - sample_start)
            )
            audio_payload = AudioPayload(
                start_sample=sample_start,
                sample_count=sample_count,
                average_energy=0.5,
                bits=sample_count * self.audio.sample_size,
            )
            block = MediaBlock(
                kind=BlockKind.MIXED,
                video_tokens=tuple(frame.token for frame in group),
                video_bits=sum(frame.size_bits for frame in group),
                audio=audio_payload,
            )
            if previous is None:
                slot = allocator.allocate_first(hint)
            else:
                slot = allocator.allocate_after(previous)
            strand.append_block(block, slot)
            previous = slot
            block_number += 1
        return self._register(strand)

    # -- editing support (§4.2) ---------------------------------------------------

    def copy_blocks_near(
        self,
        source: Strand,
        block_numbers: Sequence[int],
        anchor_slot: int,
    ) -> Strand:
        """Copy blocks of *source* into a new strand placed after *anchor*.

        This is the §4.2 redistribution primitive: the copied blocks are
        reallocated with the source's own scattering bounds, starting from
        the anchor block's neighbourhood, so the seam they patch satisfies
        the bounds.  "copying creates a new strand containing only the
        copied blocks because (1) strands are immutable, and (2) creating
        a separate strand aids the process of garbage collection."
        """
        if not block_numbers:
            raise ParameterError("no blocks to copy")
        bounds = ScatterBounds(
            source.scattering_lower, source.scattering_upper
        )
        allocator = ConstrainedScatterAllocator(
            self.drive, self.freemap, bounds
        )
        strand = Strand(
            strand_id=self._new_strand_id(),
            kind=source.kind,
            unit_rate=source.unit_rate,
            granularity=source.granularity,
            sectors_per_block=self.drive.sectors_per_block,
            index=self._new_index(source.unit_rate),
            scattering_lower=source.scattering_lower,
            scattering_upper=source.scattering_upper,
        )
        previous = anchor_slot
        for number in block_numbers:
            content = source.block_at(number)
            if content is None:
                strand.append_silence(
                    max(1, source.granularity)
                )
                continue
            slot = allocator.allocate_after(previous)
            strand.append_block(content, slot)
            previous = slot
        return self._register(strand)

    def create_copied_strand(
        self,
        source: Strand,
        block_numbers: Sequence[int],
        slots: Sequence[int],
    ) -> Strand:
        """Copy specific blocks of *source* into caller-chosen free slots.

        The §4.2 repairer computes redistribution positions itself
        (equal spacing between the seam's anchors) and hands the exact
        slots here; this method allocates them, copies the block contents,
        and registers the result as a new immutable strand.
        """
        if len(block_numbers) != len(slots):
            raise ParameterError(
                f"{len(block_numbers)} blocks but {len(slots)} slots"
            )
        if not block_numbers:
            raise ParameterError("no blocks to copy")
        taken: List[int] = []
        try:
            for slot in slots:
                self.freemap.allocate(slot)
                taken.append(slot)
        except Exception:
            for slot in taken:
                self.freemap.release(slot)
            raise
        strand = Strand(
            strand_id=self._new_strand_id(),
            kind=source.kind,
            unit_rate=source.unit_rate,
            granularity=source.granularity,
            sectors_per_block=self.drive.sectors_per_block,
            index=self._new_index(source.unit_rate),
            scattering_lower=source.scattering_lower,
            scattering_upper=source.scattering_upper,
        )
        for number, slot in zip(block_numbers, slots):
            content = source.block_at(number)
            if content is None:
                raise ParameterError(
                    f"block {number} of {source.strand_id} is a silence "
                    "holder; copy stored blocks only"
                )
            strand.append_block(content, slot)
        return self._register(strand)

    # -- deletion -------------------------------------------------------------------

    def delete_strand(self, strand_id: str) -> None:
        """Reclaim a strand's media and index blocks."""
        strand = self.get_strand(strand_id)
        for slot in strand.slots():
            self.freemap.release(slot)
        for slot in strand.index.assigned_slots():
            self.freemap.release(slot)
        del self._strands[strand_id]

    def collect_garbage(self) -> List[str]:
        """Run the interest-based collector over all strands."""
        return self.collector.collect(self.strand_ids())
