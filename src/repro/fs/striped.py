"""Striped strand storage on multi-head arrays (§3.1's concurrent path).

The concurrent architecture (Fig. 3, Eq. 3) assumes p disk accesses in
flight at once; for that to work, consecutive blocks of a strand must
live on *different* mechanisms.  :class:`StripedStorageManager` provides
the storage side: strand block i is placed on member drive ``i mod p``,
with constrained scattering enforced per member between the blocks that
share a drive (blocks i and i+p) — the positioning bound that matters,
because that is the seek each head actually performs between its
consecutive accesses.

Per §3.3.4, the per-member scattering bound comes from Eq. (3): a head
has (p−1) block-playback periods to complete each access, so striping
relaxes the placement constraint by a factor ≈ (p−1) — exactly the
"concurrent" column of experiment E1, now realized end to end through
storage, not just synthetic placements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.continuity import Architecture, max_scattering
from repro.core.symbols import (
    DisplayDeviceParameters,
    VideoStream,
    video_block_model,
)
from repro.disk.allocation import ConstrainedScatterAllocator, ScatterBounds
from repro.disk.freemap import FreeMap
from repro.disk.raid import DriveArray, StripedSlot
from repro.errors import ParameterError, UnknownStrandError
from repro.media.frames import Frame

__all__ = ["StripedStrand", "StripedStorageManager"]


@dataclass
class StripedStrand:
    """A video strand striped across an array.

    Attributes
    ----------
    strand_id:
        Unique identifier.
    granularity:
        Frames per block.
    addresses:
        Block addresses in playback order: (member drive, slot).
    tokens:
        Per-block frame tokens, for round-trip verification.
    bits:
        Per-block payload bits.
    frame_rate:
        Recording rate.
    """

    strand_id: str
    granularity: int
    addresses: List[StripedSlot]
    tokens: List[Tuple[str, ...]]
    bits: List[float]
    frame_rate: float

    @property
    def block_count(self) -> int:
        """Blocks in the strand."""
        return len(self.addresses)

    @property
    def block_playback_duration(self) -> float:
        """Nominal playback seconds per full block."""
        return self.granularity / self.frame_rate


class StripedStorageManager:
    """Video strand storage striped over a :class:`DriveArray`.

    Parameters
    ----------
    array:
        The member mechanisms (p = array.heads).
    video:
        Stream format stored.
    video_device:
        Display parameters; Eq. (3) with p = array.heads sets the
        per-member scattering bound.
    granularity:
        Frames per block (must fit the member block size).
    """

    def __init__(
        self,
        array: DriveArray,
        video: VideoStream,
        video_device: DisplayDeviceParameters,
        granularity: int = 4,
    ):
        if granularity < 1:
            raise ParameterError(
                f"granularity must be >= 1, got {granularity}"
            )
        block = video_block_model(video, granularity)
        if block.block_bits > array.block_bits:
            raise ParameterError(
                f"{granularity} frames ({block.block_bits:.0f} bits) "
                f"exceed the member block size ({array.block_bits:.0f})"
            )
        self.array = array
        self.video = video
        self.granularity = granularity
        params = array.parameters()
        # Eq. (3): each member may scatter its consecutive blocks within
        # (p−1) playback periods; headroom is measured per member hop.
        upper = max_scattering(
            Architecture.CONCURRENT, block, params, video_device,
            p=array.heads,
        )
        self.scattering_upper = upper
        self._freemaps = [
            FreeMap(member.slots) for member in array.drives
        ]
        self._allocators = [
            ConstrainedScatterAllocator(
                member, freemap, ScatterBounds(0.0, upper)
            )
            for member, freemap in zip(array.drives, self._freemaps)
        ]
        self._strands: Dict[str, StripedStrand] = {}
        self._ids = itertools.count(1)

    @property
    def heads(self) -> int:
        """Degree of striping p."""
        return self.array.heads

    def store_video_strand(self, frames: Sequence[Frame]) -> StripedStrand:
        """Stripe a frame sequence across the array's members."""
        if not frames:
            raise ParameterError("cannot store an empty strand")
        addresses: List[StripedSlot] = []
        tokens: List[Tuple[str, ...]] = []
        bits: List[float] = []
        previous_on_member: List[Optional[int]] = [None] * self.heads
        for index, start in enumerate(
            range(0, len(frames), self.granularity)
        ):
            group = frames[start:start + self.granularity]
            member_index = index % self.heads
            allocator = self._allocators[member_index]
            previous = previous_on_member[member_index]
            if previous is None:
                slot = allocator.allocate_first()
            else:
                slot = allocator.allocate_after(previous)
            previous_on_member[member_index] = slot
            addresses.append(
                StripedSlot(drive_index=member_index, slot=slot)
            )
            tokens.append(tuple(frame.token for frame in group))
            bits.append(sum(frame.size_bits for frame in group))
        strand = StripedStrand(
            strand_id=f"X{next(self._ids):04d}",
            granularity=self.granularity,
            addresses=addresses,
            tokens=tokens,
            bits=bits,
            frame_rate=self.video.frame_rate,
        )
        self._strands[strand.strand_id] = strand
        return strand

    def get_strand(self, strand_id: str) -> StripedStrand:
        """Look up a striped strand."""
        try:
            return self._strands[strand_id]
        except KeyError:
            raise UnknownStrandError(strand_id) from None

    def delete_strand(self, strand_id: str) -> None:
        """Reclaim a striped strand's blocks on every member."""
        strand = self.get_strand(strand_id)
        for address in strand.addresses:
            self._freemaps[address.drive_index].release(address.slot)
        del self._strands[strand_id]

    def occupancy(self) -> float:
        """Mean member occupancy."""
        return sum(f.occupancy for f in self._freemaps) / self.heads

    # -- playback ------------------------------------------------------------

    def playback_fetches(self, strand: StripedStrand):
        """The strand as :class:`BlockFetch`es for simulate_concurrent.

        Block i's slot addresses member ``i mod p``, which is exactly the
        convention :func:`repro.service.playback.simulate_concurrent`
        applies, so the fetches can be handed to it with this manager's
        array.
        """
        from repro.rope.server import BlockFetch

        fetches = []
        frame_duration = 1.0 / strand.frame_rate
        for index, address in enumerate(strand.addresses):
            frame_count = len(strand.tokens[index])
            fetches.append(
                BlockFetch(
                    slot=address.slot,
                    bits=strand.bits[index],
                    duration=frame_count * frame_duration,
                    tokens=strand.tokens[index],
                )
            )
        return fetches
