"""Silence elimination in the audio recording path (§4).

"In silence elimination, if the average energy level over a block falls
below a threshold, no audio data is stored for that duration. ...
explicit delay holders have to be placed in audio strands to represent
silences.  We use NULL pointers in the primary blocks of a strand to
indicate silence for the duration of a block."

This module packs a chunked audio stream into block-sized units and
classifies each against the silence detector, producing the recording
plan the storage manager executes: store the block, or append a NULL
delay holder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.symbols import AudioStream
from repro.errors import ParameterError
from repro.fs.blocks import AudioPayload
from repro.media.audio import AudioChunk, SilenceDetector, chunks_to_blocks

__all__ = ["AudioBlockPlan", "SilenceStats", "plan_audio_blocks"]


@dataclass(frozen=True)
class AudioBlockPlan:
    """The recording plan for one audio stream.

    Attributes
    ----------
    payloads:
        One entry per block period, in order: an :class:`AudioPayload` to
        store, or None for a silence-eliminated block.
    samples_per_block:
        The granularity (η_as) the plan was cut at.
    trailing_samples:
        Samples in the final (possibly partial) block period.
    """

    payloads: Sequence[Optional[AudioPayload]]
    samples_per_block: int
    trailing_samples: int

    @property
    def block_count(self) -> int:
        """Total block periods, silent or stored."""
        return len(self.payloads)

    @property
    def stored_count(self) -> int:
        """Blocks that will occupy disk space."""
        return sum(1 for p in self.payloads if p is not None)

    @property
    def silent_count(self) -> int:
        """Blocks replaced by NULL delay holders."""
        return self.block_count - self.stored_count

    def samples_in_block(self, block_number: int) -> int:
        """Samples covered by a given block period."""
        if not 0 <= block_number < self.block_count:
            raise ParameterError(
                f"block {block_number} outside plan (0..{self.block_count - 1})"
            )
        if block_number == self.block_count - 1 and self.trailing_samples:
            return self.trailing_samples
        return self.samples_per_block

    def stats(self, sample_size: float) -> "SilenceStats":
        """Bit-level outcome of the plan at *sample_size* bits/sample."""
        if sample_size <= 0:
            raise ParameterError(
                f"sample_size must be positive, got {sample_size}"
            )
        stored_bits = sum(
            payload.bits for payload in self.payloads if payload is not None
        )
        eliminated_bits = sum(
            self.samples_in_block(number) * sample_size
            for number, payload in enumerate(self.payloads)
            if payload is None
        )
        return SilenceStats(
            total_blocks=self.block_count,
            stored_blocks=self.stored_count,
            silent_blocks=self.silent_count,
            stored_bits=stored_bits,
            eliminated_bits=eliminated_bits,
        )


@dataclass(frozen=True)
class SilenceStats:
    """Bytes-level outcome of silence elimination for reporting."""

    total_blocks: int
    stored_blocks: int
    silent_blocks: int
    stored_bits: float
    eliminated_bits: float

    @property
    def silence_ratio(self) -> float:
        """Fraction of block periods eliminated."""
        if self.total_blocks == 0:
            return 0.0
        return self.silent_blocks / self.total_blocks

    @property
    def space_saving(self) -> float:
        """Fraction of raw bits not stored."""
        total = self.stored_bits + self.eliminated_bits
        if total == 0:
            return 0.0
        return self.eliminated_bits / total


def plan_audio_blocks(
    stream: AudioStream,
    chunks: Sequence[AudioChunk],
    samples_per_block: int,
    detector: Optional[SilenceDetector] = None,
) -> AudioBlockPlan:
    """Cut a chunked stream into block periods and classify each.

    With ``detector=None`` silence elimination is disabled and every block
    is stored (the comparison baseline for the E10 experiment).
    """
    if samples_per_block < 1:
        raise ParameterError(
            f"samples_per_block must be >= 1, got {samples_per_block}"
        )
    if not chunks:
        return AudioBlockPlan(
            payloads=(), samples_per_block=samples_per_block,
            trailing_samples=0,
        )
    total_samples = chunks[-1].end_sample
    energies = list(chunks_to_blocks(chunks, samples_per_block))
    payloads: List[Optional[AudioPayload]] = []
    for number, energy in enumerate(energies):
        start = number * samples_per_block
        count = min(samples_per_block, total_samples - start)
        if detector is not None and detector.is_silent(energy):
            payloads.append(None)
        else:
            payloads.append(
                AudioPayload(
                    start_sample=start,
                    sample_count=count,
                    average_energy=energy,
                    bits=count * stream.sample_size,
                )
            )
    trailing = total_samples - (len(energies) - 1) * samples_per_block
    return AudioBlockPlan(
        payloads=tuple(payloads),
        samples_per_block=samples_per_block,
        trailing_samples=trailing if trailing != samples_per_block else 0,
    )
