"""Media blocks: the basic unit of disk storage (§2).

"There are two types of blocks: (1) Homogeneous blocks, which contain data
belonging to one medium, and (2) Heterogeneous blocks, which contain data
belonging to multiple media."

A :class:`MediaBlock` is the logical content of one disk block slot.  The
simulation does not store sample bytes; a block carries the *sizes* that
drive timing plus the content *tokens* that round-trip tests verify.
Video tokens are per frame; audio content is summarized as a sample range
plus its average energy (what silence detection consumes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ParameterError

__all__ = ["BlockKind", "AudioPayload", "MediaBlock"]


class BlockKind(enum.Enum):
    """What a disk block holds."""

    VIDEO = "video"
    AUDIO = "audio"
    MIXED = "mixed"        # heterogeneous: video + audio together
    TEXT = "text"          # conventional file data stored in scatter gaps
    INDEX = "index"        # header / secondary / primary index blocks


@dataclass(frozen=True)
class AudioPayload:
    """The audio content of a block: a sample range and its energy."""

    start_sample: int
    sample_count: int
    average_energy: float
    bits: float

    def __post_init__(self) -> None:
        if self.start_sample < 0:
            raise ParameterError(
                f"start_sample must be >= 0, got {self.start_sample}"
            )
        if self.sample_count < 1:
            raise ParameterError(
                f"sample_count must be >= 1, got {self.sample_count}"
            )
        if not 0.0 <= self.average_energy <= 1.0:
            raise ParameterError(
                f"average_energy must be in [0, 1], got {self.average_energy}"
            )
        if self.bits <= 0:
            raise ParameterError(f"bits must be positive, got {self.bits}")


@dataclass(frozen=True)
class MediaBlock:
    """Logical content of one stored block.

    Attributes
    ----------
    kind:
        Homogeneous video/audio, heterogeneous mixed, text, or index.
    video_tokens:
        Content tokens of the frames in this block, in display order
        (empty for non-video blocks).
    video_bits:
        Bits of video payload.
    audio:
        The audio payload, if any.
    """

    kind: BlockKind
    video_tokens: Tuple[str, ...] = ()
    video_bits: float = 0.0
    audio: Optional[AudioPayload] = None

    def __post_init__(self) -> None:
        if self.video_bits < 0:
            raise ParameterError(
                f"video_bits must be >= 0, got {self.video_bits}"
            )
        if self.kind is BlockKind.VIDEO:
            if not self.video_tokens or self.audio is not None:
                raise ParameterError(
                    "a VIDEO block needs frames and no audio payload"
                )
        elif self.kind is BlockKind.AUDIO:
            if self.audio is None or self.video_tokens:
                raise ParameterError(
                    "an AUDIO block needs an audio payload and no frames"
                )
        elif self.kind is BlockKind.MIXED:
            if self.audio is None or not self.video_tokens:
                raise ParameterError(
                    "a MIXED block needs both frames and an audio payload"
                )

    @property
    def payload_bits(self) -> float:
        """Total stored bits in this block."""
        audio_bits = self.audio.bits if self.audio is not None else 0.0
        return self.video_bits + audio_bits

    @property
    def frame_count(self) -> int:
        """Number of video frames in this block."""
        return len(self.video_tokens)

    @property
    def sample_count(self) -> int:
        """Number of audio samples in this block."""
        return self.audio.sample_count if self.audio is not None else 0
