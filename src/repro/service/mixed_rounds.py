"""Concurrent storage *and* retrieval in one service loop (§3, §3.4).

"the file system can only accept a limited number of requests without
violating the continuity requirements of any of the requests" — and those
requests are storage or retrieval alike: §3's analysis treats recording
and playback symmetrically (disk write time ≈ read time, capture time ≈
display time), and §3.4's admission control covers "n active media
storage/retrieval requests".

:class:`MixedRoundService` realizes that: the round loop multiplexes
playback streams (:class:`~repro.service.rounds.StreamState`) *and*
recording streams (:class:`RecordStream`).  A recording stream's capture
hardware produces one block per block period into a bounded staging
buffer; the service must write each block out before the buffer overruns
(block j's deadline is when block ``j + capacity`` finishes capturing),
which is the storage-side continuity requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.service.rounds import RoundRobinService, StreamState
from repro.sim.metrics import ContinuityMetrics

__all__ = ["RecordStream", "MixedRoundService"]


@dataclass
class RecordStream:
    """One RECORD request's progress through its placement.

    Attributes
    ----------
    request_id:
        Identifier for reporting.
    slots:
        Target disk slots in recording order (the strand's placement).
    block_period:
        Seconds of media per block (η/R) — capture produces one block per
        period, starting at time 0.
    staging_capacity:
        Capture-device staging buffers; block j must be written before
        block ``j + staging_capacity`` finishes capturing.
    k_override:
        Per-request k_i (general Eq.-11 admission), else the global k.
    block_bits:
        Payload bits written per block (None = full device block).
    """

    request_id: str
    slots: Sequence[int]
    block_period: float
    staging_capacity: int = 2
    k_override: Optional[int] = None
    block_bits: Optional[float] = None
    next_block: int = 0
    metrics: ContinuityMetrics = field(default_factory=ContinuityMetrics)

    def __post_init__(self) -> None:
        if self.block_period <= 0:
            raise ParameterError(
                f"block_period must be positive, got {self.block_period}"
            )
        if self.staging_capacity < 1:
            raise ParameterError(
                f"staging_capacity must be >= 1, got {self.staging_capacity}"
            )
        self.metrics.request_id = self.request_id

    @property
    def finished(self) -> bool:
        """True when every block has been written."""
        return self.next_block >= len(self.slots)

    def captured_at(self, now: float) -> int:
        """Blocks fully captured by *now* (one per period from t = 0)."""
        return min(len(self.slots), int(now / self.block_period))

    def deadline_of(self, block_number: int) -> float:
        """When the staging buffer overruns unless this block is written."""
        return (
            block_number + 1 + self.staging_capacity
        ) * self.block_period


class MixedRoundService(RoundRobinService):
    """Round service over playback *and* recording requests.

    Each round serves the playback streams exactly as
    :class:`RoundRobinService`, then gives every recording stream its k
    blocks — writing only blocks that capture has actually produced (the
    disk cannot write media that does not exist yet; if none is ready the
    service waits for the next capture, which is recording's analogue of
    buffer regulation).
    """

    def __init__(
        self,
        drive,
        k_schedule: Callable[[int, int], int],
        record_streams: Sequence[RecordStream] = (),
        tracer=None,
    ):
        super().__init__(drive, k_schedule, tracer)
        self.record_streams: List[RecordStream] = list(record_streams)

    def run(
        self,
        initial: Sequence[StreamState],
        admissions=(),
        max_rounds: int = 100_000,
    ) -> Dict[str, ContinuityMetrics]:
        metrics = super().run(initial, admissions, max_rounds)
        for record in self.record_streams:
            metrics[record.request_id] = record.metrics
        return metrics

    def _extra_work_pending(self) -> bool:
        return bool(self._active_recorders())

    def _active_recorders(self) -> List[RecordStream]:
        return [r for r in self.record_streams if not r.finished]

    def _run_round(
        self,
        time: float,
        active: Sequence[StreamState],
        k: int,
        round_number: int,
    ) -> Tuple[float, bool]:
        time, progressed = super()._run_round(time, active, k, round_number)
        recorders = self._active_recorders()
        for record in recorders:
            quota = record.k_override if record.k_override else k
            written = 0
            while written < quota and not record.finished:
                block_number = record.next_block
                captured_time = (block_number + 1) * record.block_period
                if captured_time > time:
                    if written == 0 and not active:
                        # Nothing else to do: wait for capture.
                        time = captured_time
                    else:
                        break
                start = max(time, captured_time)
                time = start + self.drive.write_slot(
                    record.slots[block_number], record.block_bits
                )
                record.metrics.record_delivery(
                    time, record.deadline_of(block_number)
                )
                record.next_block += 1
                written += 1
                progressed = True
        return time, progressed

