"""Single-request retrieval simulators for the three §3.1 architectures.

These replay a request's block-fetch sequence through the simulated drive
under sequential (Fig. 1), pipelined (Fig. 2), or concurrent (Fig. 3)
disk↔display organization, and score the resulting arrival times against
the playback deadlines.  They are the empirical side of experiment E1:
inside the analytic feasibility region of Eqs. (1)–(3) the simulators must
measure zero misses (the analysis is safe); outside it, sustained misses
appear.

Scoring convention: playback starts the moment the first block is ready
for display ("anti-jitter" read-ahead of further blocks can be layered on
by starting the clock later); block j's deadline is that start plus the
cumulative playback duration of blocks 0..j−1; a block is *ready* when its
transfer (and, for the sequential architecture, its display conversion)
completes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.disk.drive import SimulatedDrive
from repro.disk.raid import DriveArray
from repro.errors import ParameterError
from repro.media.devices import DisplayDevice
from repro.rope.server import BlockFetch
from repro.sim.metrics import ContinuityMetrics

__all__ = [
    "simulate_sequential",
    "simulate_pipelined",
    "simulate_concurrent",
]


def _deadlines(
    fetches: Sequence[BlockFetch], start: float
) -> List[float]:
    """Deadline of each block: start + cumulative prior playback time."""
    deadlines = []
    elapsed = start
    for fetch in fetches:
        deadlines.append(elapsed)
        elapsed += fetch.duration
    return deadlines


def _score(
    metrics: ContinuityMetrics,
    ready: Sequence[float],
    deadlines: Sequence[float],
) -> None:
    for arrival, deadline in zip(ready, deadlines):
        metrics.record_delivery(arrival, deadline)


def simulate_sequential(
    fetches: Sequence[BlockFetch],
    drive: SimulatedDrive,
    display: DisplayDevice,
    request_id: str = "seq",
    read_ahead: int = 0,
) -> Tuple[ContinuityMetrics, List[float]]:
    """Fig. 1: read a block, display it, read the next (Eq. 1 regime).

    Returns (metrics, ready-times).  *read_ahead* delays the playback
    clock start by that many block periods' worth of prefetched blocks
    (§3.3.2 anti-jitter delay).
    """
    if read_ahead < 0:
        raise ParameterError(f"read_ahead must be >= 0, got {read_ahead}")
    time = 0.0
    ready: List[float] = []
    for fetch in fetches:
        if fetch.slot is not None:
            time += drive.read_slot(fetch.slot, fetch.bits)
            time += display.display_time(fetch.bits)
        ready.append(time)
    anchor = min(read_ahead, len(ready) - 1) if ready else 0
    start = ready[anchor] if ready else 0.0
    deadlines = _deadlines(fetches, start)
    # Blocks consumed as read-ahead are ready by definition of the start.
    metrics = ContinuityMetrics(request_id=request_id)
    metrics.startup_latency = start
    _score(metrics, ready, deadlines)
    return metrics, ready


def simulate_pipelined(
    fetches: Sequence[BlockFetch],
    drive: SimulatedDrive,
    request_id: str = "pipe",
    read_ahead: int = 0,
) -> Tuple[ContinuityMetrics, List[float]]:
    """Fig. 2: transfers overlap display; back-to-back reads (Eq. 2 regime).

    With two device buffers, a block is ready for display the moment its
    transfer completes; display conversion happens concurrently with the
    next transfer.
    """
    if read_ahead < 0:
        raise ParameterError(f"read_ahead must be >= 0, got {read_ahead}")
    time = 0.0
    ready: List[float] = []
    for fetch in fetches:
        if fetch.slot is not None:
            time += drive.read_slot(fetch.slot, fetch.bits)
        ready.append(time)
    anchor = min(read_ahead, len(ready) - 1) if ready else 0
    start = ready[anchor] if ready else 0.0
    deadlines = _deadlines(fetches, start)
    metrics = ContinuityMetrics(request_id=request_id)
    metrics.startup_latency = start
    _score(metrics, ready, deadlines)
    return metrics, ready


def simulate_concurrent(
    fetches: Sequence[BlockFetch],
    array: DriveArray,
    request_id: str = "conc",
) -> Tuple[ContinuityMetrics, List[float]]:
    """Fig. 3: p parallel accesses per batch (Eq. 3 regime).

    Consecutive blocks are striped over the array's members; each batch
    of p blocks is read concurrently and completes when its slowest
    member does.  Playback starts when the first batch lands (the p
    buffered blocks of §3.3.2).

    Fetches must carry slots addressed per member drive — i.e. block i's
    ``slot`` is a slot on drive ``i mod p``.  Silence fetches participate
    in the batch structure but cost no disk time.
    """
    p = array.heads
    time = 0.0
    ready: List[float] = []
    index = 0
    while index < len(fetches):
        batch = fetches[index:index + p]
        durations = []
        for offset, fetch in enumerate(batch):
            if fetch.slot is None:
                continue
            member = array.member((index + offset) % p)
            durations.append(member.read_slot(fetch.slot, fetch.bits))
        batch_time = max(durations) if durations else 0.0
        time += batch_time
        ready.extend([time] * len(batch))
        index += p
    start = ready[min(p - 1, len(ready) - 1)] if ready else 0.0
    deadlines = _deadlines(fetches, start)
    metrics = ContinuityMetrics(request_id=request_id)
    metrics.startup_latency = start
    _score(metrics, ready, deadlines)
    return metrics, ready
