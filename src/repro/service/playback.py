"""Single-request retrieval simulators for the three §3.1 architectures.

These replay a request's block-fetch sequence through the simulated drive
under sequential (Fig. 1), pipelined (Fig. 2), or concurrent (Fig. 3)
disk↔display organization, and score the resulting arrival times against
the playback deadlines.  They are the empirical side of experiment E1:
inside the analytic feasibility region of Eqs. (1)–(3) the simulators must
measure zero misses (the analysis is safe); outside it, sustained misses
appear.

Scoring convention: playback starts the moment the first block is ready
for display ("anti-jitter" read-ahead of further blocks can be layered on
by starting the clock later); block j's deadline is that start plus the
cumulative playback duration of blocks 0..j−1; a block is *ready* when its
transfer (and, for the sequential architecture, its display conversion)
completes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.disk.drive import SimulatedDrive
from repro.disk.raid import DriveArray
from repro.errors import HeadFailureError, ParameterError
from repro.faults.recovery import RecoveryPolicy, read_with_recovery
from repro.media.devices import DisplayDevice
from repro.obs.registry import DEADLINE_SLACK_BUCKETS
from repro.rope.server import BlockFetch
from repro.sim.metrics import ContinuityMetrics

__all__ = [
    "simulate_sequential",
    "simulate_pipelined",
    "simulate_concurrent",
]


def _deadlines(
    fetches: Sequence[BlockFetch], start: float
) -> List[float]:
    """Deadline of each block: start + cumulative prior playback time."""
    deadlines = []
    elapsed = start
    for fetch in fetches:
        deadlines.append(elapsed)
        elapsed += fetch.duration
    return deadlines


def _score(
    metrics: ContinuityMetrics,
    ready: Sequence[float],
    deadlines: Sequence[float],
    skipped: Optional[Set[int]] = None,
    obs=None,
) -> None:
    slack_hist = delivered_counter = skipped_counter = None
    if obs is not None:
        registry = obs.registry
        slack_hist = registry.histogram(
            "session.deadline_slack_s", DEADLINE_SLACK_BUCKETS
        )
        delivered_counter = registry.counter("session.blocks_delivered")
        skipped_counter = registry.counter("session.blocks_skipped")
    for index, (arrival, deadline) in enumerate(zip(ready, deadlines)):
        if skipped and index in skipped:
            metrics.record_skip(arrival, deadline)
            if obs is not None:
                skipped_counter.inc()
        else:
            metrics.record_delivery(arrival, deadline)
            if obs is not None:
                delivered_counter.inc()
                slack_hist.observe(deadline - arrival)


def _read_block(
    drive: SimulatedDrive,
    fetch: BlockFetch,
    time: float,
    recovery: RecoveryPolicy,
    obs=None,
) -> Tuple[float, bool]:
    """One fetch through the (possibly faulty) drive: (time, delivered).

    A head failure is terminal for a single-drive simulator; it is
    reported as an undelivered block and the drive keeps failing fast for
    the remainder of the run.
    """
    if drive.injector is None:
        return time + drive.read_slot(fetch.slot, fetch.bits), True
    try:
        elapsed, ok = read_with_recovery(
            drive, fetch.slot, fetch.bits, recovery, now=time, obs=obs
        )
    except HeadFailureError as fault:
        return time + fault.elapsed, False
    return time + elapsed, ok


def simulate_sequential(
    fetches: Sequence[BlockFetch],
    drive: SimulatedDrive,
    display: DisplayDevice,
    request_id: str = "seq",
    read_ahead: int = 0,
    recovery: Optional[RecoveryPolicy] = None,
    obs=None,
) -> Tuple[ContinuityMetrics, List[float]]:
    """Fig. 1: read a block, display it, read the next (Eq. 1 regime).

    Returns (metrics, ready-times).  *read_ahead* delays the playback
    clock start by that many block periods' worth of prefetched blocks
    (§3.3.2 anti-jitter delay).
    """
    if read_ahead < 0:
        raise ParameterError(f"read_ahead must be >= 0, got {read_ahead}")
    policy = recovery if recovery is not None else RecoveryPolicy()
    time = 0.0
    ready: List[float] = []
    skipped: Set[int] = set()
    for index, fetch in enumerate(fetches):
        if fetch.slot is not None:
            time, delivered = _read_block(drive, fetch, time, policy, obs)
            if delivered:
                time += display.display_time(fetch.bits)
            else:
                skipped.add(index)
        ready.append(time)
    anchor = min(read_ahead, len(ready) - 1) if ready else 0
    start = ready[anchor] if ready else 0.0
    deadlines = _deadlines(fetches, start)
    # Blocks consumed as read-ahead are ready by definition of the start.
    metrics = ContinuityMetrics(request_id=request_id)
    metrics.startup_latency = start
    _score(metrics, ready, deadlines, skipped, obs=obs)
    return metrics, ready


def simulate_pipelined(
    fetches: Sequence[BlockFetch],
    drive: SimulatedDrive,
    request_id: str = "pipe",
    read_ahead: int = 0,
    recovery: Optional[RecoveryPolicy] = None,
    obs=None,
) -> Tuple[ContinuityMetrics, List[float]]:
    """Fig. 2: transfers overlap display; back-to-back reads (Eq. 2 regime).

    With two device buffers, a block is ready for display the moment its
    transfer completes; display conversion happens concurrently with the
    next transfer.
    """
    if read_ahead < 0:
        raise ParameterError(f"read_ahead must be >= 0, got {read_ahead}")
    policy = recovery if recovery is not None else RecoveryPolicy()
    time = 0.0
    ready: List[float] = []
    skipped: Set[int] = set()
    for index, fetch in enumerate(fetches):
        if fetch.slot is not None:
            time, delivered = _read_block(drive, fetch, time, policy, obs)
            if not delivered:
                skipped.add(index)
        ready.append(time)
    anchor = min(read_ahead, len(ready) - 1) if ready else 0
    start = ready[anchor] if ready else 0.0
    deadlines = _deadlines(fetches, start)
    metrics = ContinuityMetrics(request_id=request_id)
    metrics.startup_latency = start
    _score(metrics, ready, deadlines, skipped, obs=obs)
    return metrics, ready


def simulate_concurrent(
    fetches: Sequence[BlockFetch],
    array: DriveArray,
    request_id: str = "conc",
    recovery: Optional[RecoveryPolicy] = None,
    on_head_failure: Optional[Callable[[HeadFailureError], None]] = None,
    obs=None,
) -> Tuple[ContinuityMetrics, List[float]]:
    """Fig. 3: p parallel accesses per batch (Eq. 3 regime).

    Consecutive blocks are striped over the array's members; each batch
    of p blocks is read concurrently and completes when its slowest
    member does.  Playback starts when the first batch lands (the p
    buffered blocks of §3.3.2).

    Fetches must carry slots addressed per member drive — i.e. block i's
    ``slot`` is a slot on drive ``i mod p``.  Silence fetches participate
    in the batch structure but cost no disk time.

    Under fault injection the batch degrades rather than aborts: a
    member whose head dies loses its share of every later stripe (each
    lost block a recorded skip), and *on_head_failure* fires once per
    dead member so the caller can revalidate admission against the
    surviving p.
    """
    p = array.heads
    policy = recovery if recovery is not None else RecoveryPolicy()
    time = 0.0
    ready: List[float] = []
    skipped: Set[int] = set()
    failed_members: Set[int] = set()
    index = 0
    while index < len(fetches):
        batch = fetches[index:index + p]
        durations = []
        for offset, fetch in enumerate(batch):
            if fetch.slot is None:
                continue
            member_index = (index + offset) % p
            member = array.member(member_index)
            if member.injector is None:
                durations.append(member.read_slot(fetch.slot, fetch.bits))
                continue
            try:
                elapsed, ok = read_with_recovery(
                    member, fetch.slot, fetch.bits, policy, now=time,
                    obs=obs,
                )
            except HeadFailureError as fault:
                durations.append(fault.elapsed)
                skipped.add(index + offset)
                if member_index not in failed_members:
                    failed_members.add(member_index)
                    if on_head_failure is not None:
                        on_head_failure(fault)
                continue
            durations.append(elapsed)
            if not ok:
                skipped.add(index + offset)
        batch_time = max(durations) if durations else 0.0
        time += batch_time
        ready.extend([time] * len(batch))
        index += p
    start = ready[min(p - 1, len(ready) - 1)] if ready else 0.0
    deadlines = _deadlines(fetches, start)
    metrics = ContinuityMetrics(request_id=request_id)
    metrics.startup_latency = start
    _score(metrics, ready, deadlines, skipped, obs=obs)
    return metrics, ready
