"""End-to-end service sessions: MRS requests → round service → metrics.

This is the wiring layer the §5 prototype calls "the file system": it
takes PLAY requests admitted by the rope server, flattens them to
playback plans, builds the §3.4 round-robin service with the admission
controller's k (including staged transitions), runs the simulation, and
returns per-request continuity metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.buffering import buffers_for_average_continuity
from repro.core.continuity import Architecture
from repro.errors import HeadFailureError, ParameterError
from repro.faults.recovery import RecoveryPolicy
from repro.rope.server import MultimediaRopeServer, PlaybackPlan
from repro.service.rounds import Admission, RoundRobinService, StreamState
from repro.sim.metrics import ContinuityMetrics
from repro.sim.trace import Tracer

__all__ = ["SessionResult", "PlaybackSession", "staged_k_schedule"]


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one service session."""

    metrics: Dict[str, ContinuityMetrics]
    rounds: int
    k_used: int
    head_failure: Optional[HeadFailureError] = None
    degraded_n_max: Optional[int] = None

    @property
    def all_continuous(self) -> bool:
        """True when every request played without a single miss."""
        return all(m.continuous for m in self.metrics.values())

    @property
    def total_misses(self) -> int:
        """Summed deadline misses across requests."""
        return sum(m.misses for m in self.metrics.values())

    @property
    def total_skips(self) -> int:
        """Summed fault-recovery skips across requests."""
        return sum(m.skips for m in self.metrics.values())

    def summary(self) -> str:
        """Canonical multi-line rendering (byte-stable; see
        :meth:`ContinuityMetrics.summary`), one line per request in
        request-id order."""
        return "\n".join(
            self.metrics[rid].summary() for rid in sorted(self.metrics)
        )


def staged_k_schedule(
    k_initial: int, steps: Sequence[Tuple[int, int]]
) -> Callable[[int, int], int]:
    """Build a k schedule from staged transitions.

    Parameters
    ----------
    k_initial:
        k for round 0.
    steps:
        ``(round_number, k)`` pairs, ascending; from that round on, the
        given k applies.  The paper's step-of-1 transition expands to
        consecutive rounds each raising k by one.
    """
    if k_initial < 1:
        raise ParameterError(f"k_initial must be >= 1, got {k_initial}")
    ordered = sorted(steps)

    def schedule(round_number: int, active: int) -> int:
        k = k_initial
        for start_round, value in ordered:
            if round_number >= start_round:
                k = value
        return k

    return schedule


class PlaybackSession:
    """Runs admitted PLAY requests through the round-robin service.

    Parameters
    ----------
    server:
        The rope server whose storage manager owns the drive and the
        admission controller.
    architecture:
        Governs buffer sizing (2k for pipelined, §3.3.2).
    recovery:
        Fault-recovery policy forwarded to the round service (applies
        only when the drive carries a fault injector).
    obs:
        Optional :class:`~repro.obs.Observability` handle forwarded to
        the round service and attached to the drive for the run.
        Defaults to the storage manager's own observer (if any), so one
        handle wired at MSM construction observes every session.
    """

    def __init__(
        self,
        server: MultimediaRopeServer,
        architecture: Architecture = Architecture.PIPELINED,
        tracer: Optional[Tracer] = None,
        recovery: Optional[RecoveryPolicy] = None,
        obs=None,
    ):
        self.server = server
        self.architecture = architecture
        self.tracer = tracer
        self.recovery = recovery
        self.obs = obs if obs is not None else server.msm.obs
        self._degraded_n_max: Optional[int] = None

    def _on_head_failure(self, fault: HeadFailureError) -> None:
        """Degrade admission the moment a head dies mid-round.

        The storage manager recomputes its analytic parameters with the
        surviving head count, shrinking ``n_max`` so no *new* request is
        admitted against capacity the hardware no longer has.
        """
        self._degraded_n_max = self.server.msm.revalidate_admission(
            heads_lost=1
        )

    @staticmethod
    def _request_id_of(request) -> str:
        """Accept both raw request-ID strings and typed API requests."""
        return getattr(request, "session_id", request)

    def _stream_for(
        self, request_id: str, k: int
    ) -> StreamState:
        fetches = self.fetch_sequence(request_id)
        capacity = buffers_for_average_continuity(self.architecture, k)
        return StreamState(
            request_id=request_id,
            fetches=fetches,
            buffer_capacity=max(capacity, 2),
        )

    def fetch_sequence(self, request_id: str) -> List:
        """The interleaved disk-fetch sequence one request will follow.

        This is exactly the order :meth:`run` delivers the request's
        blocks in; the media server records it per session so the
        cache-equivalence tests can compare delivered sequences.
        """
        return self._interleave(self.server.playback_plan(request_id))

    @staticmethod
    def _interleave(plan: PlaybackPlan) -> List:
        """Merge a plan's video and audio fetches into one disk sequence.

        Fetches are ordered by their cumulative playback position, so the
        round service reads each medium just ahead of its deadline —
        homogeneous blocks retrieved "for every n video blocks" (§3.3.3).
        """
        sequence = []
        v_time = 0.0
        a_time = 0.0
        vi = ai = 0
        video, audio = plan.video, plan.audio
        while vi < len(video) or ai < len(audio):
            take_video = ai >= len(audio) or (
                vi < len(video) and v_time <= a_time
            )
            if take_video:
                sequence.append(video[vi])
                v_time += video[vi].duration
                vi += 1
            else:
                sequence.append(audio[ai])
                a_time += audio[ai].duration
                ai += 1
        return sequence

    def run(
        self,
        request_ids: Sequence,
        k: Optional[int] = None,
        admissions: Sequence[Tuple[int, str]] = (),
        k_schedule: Optional[Callable[[int, int], int]] = None,
    ) -> SessionResult:
        """Service *request_ids* from round 0 (+ later admissions) to done.

        Parameters
        ----------
        request_ids:
            Raw MRS request-ID strings, or typed
            :class:`repro.api.PlayRequest` values (their ``session_id``
            is the request ID).
        k:
            Blocks per request per round; defaults to the admission
            controller's current k.
        admissions:
            ``(round_number, request_id)`` pairs joining mid-run; the
            request may likewise be a :class:`~repro.api.PlayRequest`.
        k_schedule:
            Full override of the per-round k (wins over *k*).
        """
        controller = self.server.msm.admission
        if k is None:
            k = max(1, controller.current_k)
        if k_schedule is None:
            def k_schedule(round_number: int, active: int) -> int:
                return k
        initial = [
            self._stream_for(self._request_id_of(r), k) for r in request_ids
        ]
        later = [
            Admission(
                round_number=round_number,
                stream=self._stream_for(self._request_id_of(r), k),
            )
            for round_number, r in admissions
        ]
        service = RoundRobinService(
            self.server.msm.drive,
            k_schedule,
            tracer=self.tracer,
            recovery=self.recovery,
            on_head_failure=self._on_head_failure,
            obs=self.obs,
        )
        if self.obs is not None and self.server.msm.drive.obs is None:
            self.server.msm.drive.attach_observer(self.obs)
        metrics = service.run(initial, later)
        return SessionResult(
            metrics=metrics,
            rounds=service.rounds_run,
            k_used=k,
            head_failure=service.head_failure,
            degraded_n_max=self._degraded_n_max,
        )
