"""An in-process stand-in for the prototype's MRS↔MSM transport (§5.2).

In the prototype "the MRS of our testbed system is implemented on a
SPARCstation, whereas the MSM is implemented on a PC-AT", talking over
TCP/IP; applications link a "rope stub library which uses remote procedure
calls to contact the MRS".  The reproduction keeps both layers in one
process (the repro brief's substitution), but preserves the *boundary*: a
:class:`RpcChannel` intercepts every cross-layer call, records it with
estimated marshalled sizes, and forbids calls to private attributes — so
the layering claim ("decoupled design ... permits their execution on
different hardware") stays checkable.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.errors import ParameterError

__all__ = ["RpcCall", "RpcChannel", "estimate_bytes", "stub_for"]


@dataclass(frozen=True)
class RpcCall:
    """One logged cross-layer invocation."""

    method: str
    argument_bytes: int
    result_bytes: int


def estimate_bytes(value: Any) -> int:
    """Rough marshalled size of a call argument/result.

    Deliberately crude — the point is relative magnitude (rope metadata is
    tiny; media never crosses the boundary), not wire-format accuracy.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, set)):
        return 8 + sum(estimate_bytes(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(
            estimate_bytes(k) + estimate_bytes(v) for k, v in value.items()
        )
    if isinstance(value, enum.Enum):
        # An enum marshals as its value (the API types use string values).
        return estimate_bytes(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Typed request/response messages (repro.api and friends): a
        # small envelope plus every field, recursively — so nested
        # dataclasses and collections are sized instead of falling into
        # the scalar-attributes guess below.
        return 16 + sum(
            estimate_bytes(getattr(value, f.name))
            for f in dataclasses.fields(value)
        )
    # Arbitrary objects: count their public scalar attributes.
    total = 16
    for name in dir(value):
        if name.startswith("_"):
            continue
        try:
            attribute = getattr(value, name)
        except Exception:
            continue
        if isinstance(attribute, (int, float, str, bool)):
            total += estimate_bytes(attribute)
    return total


class RpcChannel:
    """Call log and policy enforcement for one layer boundary.

    With a span *tracer* attached, any call carrying a ``trace`` keyword
    (a :meth:`repro.obs.tracing.Span.wire` context dict — marshalled and
    size-counted like every other argument) is wrapped in an
    ``rpc.<method>`` span, and the trace field the callee receives is
    rewritten to that span's own context — so the caller's span parents
    the RPC span, which parents whatever the callee opens, and one
    session's trace stays a single connected tree across the boundary.
    """

    def __init__(self, name: str, tracer: Any = None):
        self.name = name
        self.tracer = tracer
        self.calls: List[RpcCall] = []

    def invoke(
        self, target: Any, method: str, *args: Any, **kwargs: Any
    ) -> Any:
        """Call ``target.method(*args, **kwargs)`` through the channel."""
        if method.startswith("_"):
            raise ParameterError(
                f"RPC channel {self.name!r} refuses private method "
                f"{method!r}; cross-layer calls use public interfaces only"
            )
        bound = getattr(target, method)
        if not callable(bound):
            raise ParameterError(
                f"{method!r} on {type(target).__name__} is not callable"
            )
        span = None
        trace = kwargs.get("trace")
        if (
            trace is not None
            and self.tracer is not None
            and self.tracer.enabled
        ):
            send_time = float(trace.get("time", 0.0))
            span = self.tracer.start_span(
                f"rpc.{method}",
                send_time,
                parent=trace,
                attrs={"channel": self.name},
            )
            if span is not None:
                kwargs = dict(kwargs)
                kwargs["trace"] = span.wire(send_time)
        argument_bytes = estimate_bytes(list(args)) + estimate_bytes(kwargs)
        try:
            result = bound(*args, **kwargs)
        except Exception:
            if span is not None:
                self.tracer.end_span(span, span.start, status="error")
            raise
        if span is not None:
            self.tracer.end_span(span, span.start)
        self.calls.append(
            RpcCall(
                method=method,
                argument_bytes=argument_bytes,
                result_bytes=estimate_bytes(result),
            )
        )
        return result

    @property
    def call_count(self) -> int:
        """Total cross-layer calls."""
        return len(self.calls)

    @property
    def bytes_transferred(self) -> int:
        """Total estimated marshalled bytes both ways."""
        return sum(c.argument_bytes + c.result_bytes for c in self.calls)

    def calls_by_method(self) -> Dict[str, int]:
        """Histogram of invoked methods."""
        histogram: Dict[str, int] = {}
        for call in self.calls:
            histogram[call.method] = histogram.get(call.method, 0) + 1
        return histogram


class _Stub:
    """Attribute-proxy produced by :func:`stub_for`."""

    def __init__(self, target: Any, channel: RpcChannel):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_channel", channel)

    def __getattr__(self, name: str) -> Any:
        target = object.__getattribute__(self, "_target")
        channel = object.__getattribute__(self, "_channel")
        attribute = getattr(target, name)
        if callable(attribute):
            def call(*args: Any, **kwargs: Any) -> Any:
                return channel.invoke(target, name, *args, **kwargs)
            return call
        return attribute


def stub_for(target: Any, channel: RpcChannel) -> Any:
    """A client-side stub routing method calls through *channel*.

    Mirrors the prototype's "rope stub library": applications hold the
    stub, never the server object, and every call is logged.
    """
    return _Stub(target, channel)
