"""The storage (recording) side of continuity (§3).

"the continuity requirements of retrieval and storage are similar to each
other" — capture hardware produces one block every block period and the
disk must retire writes fast enough that the capture device's staging
buffer never overflows (an overflow loses live media, the recording-side
analogue of a playback glitch).

:func:`simulate_recording` replays a placement's write sequence against a
block-periodic capture process and reports overflow/lateness metrics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.disk.drive import SimulatedDrive
from repro.errors import ParameterError
from repro.sim.metrics import ContinuityMetrics

__all__ = ["simulate_recording"]


def simulate_recording(
    slots: Sequence[int],
    drive: SimulatedDrive,
    block_period: float,
    buffer_capacity: int = 2,
    block_bits: Optional[float] = None,
    request_id: str = "rec",
) -> Tuple[ContinuityMetrics, List[float]]:
    """Write a strand's blocks as capture hardware produces them.

    Parameters
    ----------
    slots:
        The target disk slots in recording order (a strand placement).
    block_period:
        Seconds of media per block (η/R) — one block becomes available
        to write at the end of each period.
    buffer_capacity:
        Capture staging buffers.  Block j must be written out before
        block ``j + capacity`` finishes capturing, or the device drops
        media; each such event is scored as a miss with its lateness.
    block_bits:
        Payload bits per block (defaults to the drive's full block).

    Returns (metrics, write-completion times).  Misses here mean the
    configuration violates the *storage* continuity requirement.
    """
    if block_period <= 0:
        raise ParameterError(
            f"block_period must be positive, got {block_period}"
        )
    if buffer_capacity < 1:
        raise ParameterError(
            f"buffer_capacity must be >= 1, got {buffer_capacity}"
        )
    metrics = ContinuityMetrics(request_id=request_id)
    completions: List[float] = []
    time = 0.0
    for number, slot in enumerate(slots):
        captured_at = (number + 1) * block_period
        start = max(time, captured_at)
        time = start + drive.write_slot(slot, block_bits) - (
            # write_slot returns full access time; the head was moved at
            # call time, so the duration is simply added.
            0.0
        )
        completions.append(time)
        # Deadline: the staging buffer must free this block before the
        # (j + capacity)-th block finishes capturing.
        deadline = (number + 1 + buffer_capacity) * block_period
        metrics.record_delivery(time, deadline)
    occupancy_high = 0
    for number, completion in enumerate(completions):
        # Blocks captured but not yet retired when this write completes.
        captured = min(len(slots), int(completion / block_period))
        occupancy_high = max(occupancy_high, captured - number - 1)
    metrics.buffer_high_water = max(0, occupancy_high)
    return metrics, completions
