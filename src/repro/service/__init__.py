"""The real-time service layer: architecture simulators, round-robin
service, recording, sessions, and the MRS↔MSM RPC boundary."""

from repro.service.playback import (
    simulate_concurrent,
    simulate_pipelined,
    simulate_sequential,
)
from repro.service.besteffort import TextRequest, UnifiedService
from repro.service.mixed_rounds import MixedRoundService, RecordStream
from repro.service.recording import simulate_recording
from repro.service.rounds import Admission, RoundRobinService, StreamState
from repro.service.rpc import RpcCall, RpcChannel, estimate_bytes, stub_for
from repro.service.scan_order import (
    RoundTimeProbe,
    ScanOrderService,
    measured_capacity,
    probe_round_times,
)
from repro.service.session import (
    PlaybackSession,
    SessionResult,
    staged_k_schedule,
)
from repro.service.variable_speed import (
    VariableSpeedResult,
    simulate_variable_speed,
    transform_plan,
)

__all__ = [
    "Admission",
    "MixedRoundService",
    "PlaybackSession",
    "RecordStream",
    "TextRequest",
    "UnifiedService",
    "RoundRobinService",
    "RoundTimeProbe",
    "RpcCall",
    "RpcChannel",
    "ScanOrderService",
    "SessionResult",
    "StreamState",
    "VariableSpeedResult",
    "estimate_bytes",
    "measured_capacity",
    "probe_round_times",
    "simulate_concurrent",
    "simulate_pipelined",
    "simulate_recording",
    "simulate_sequential",
    "simulate_variable_speed",
    "staged_k_schedule",
    "stub_for",
    "transform_plan",
]
