"""Seek-optimized request ordering within a service round (§6.2).

"The admission control algorithm that we have developed uses a
round-robin servicing of requests in the order in which they are
received, and assumes maximum separation between blocks while switching
between requests.  As a result, the estimates of the maximum number of
requests ... are pessimistic.  We are investigating algorithms for
servicing requests in the order that minimizes ... the separations
between blocks, thereby minimizing the overhead of switching."

:class:`ScanOrderService` implements that investigation: each round,
instead of the arrival-order rotation, requests are serviced in the order
of their next block's cylinder along the current head direction (the
elevator/SCAN discipline applied at request granularity).  Switch
overheads then approach a single sweep across the disk per round instead
of n potentially full-stroke seeks, and the measured per-request switch
cost β̂ feeds a *measured* capacity estimate that beats Eq. (17)'s
pessimistic one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.service.rounds import RoundRobinService, StreamState

__all__ = ["ScanOrderService", "RoundTimeProbe", "measured_capacity"]


class ScanOrderService(RoundRobinService):
    """Round service with per-round SCAN ordering of requests.

    Identical semantics to :class:`RoundRobinService` — same k schedule,
    buffer regulation, deadline scoring — except that within each round
    the requests are visited in ascending cylinder order starting from
    the current head position (and the sweep direction alternates, the
    classic elevator), which minimizes inter-request switch seeks.
    """

    def _run_round(
        self,
        time: float,
        active: Sequence[StreamState],
        k: int,
        round_number: int,
    ) -> Tuple[float, bool]:
        ordered = self._scan_order(active, round_number)
        return super()._run_round(time, ordered, k, round_number)

    def _scan_order(
        self, active: Sequence[StreamState], round_number: int
    ) -> List[StreamState]:
        def next_cylinder(stream: StreamState) -> int:
            for fetch in stream.fetches[stream.next_fetch:]:
                if fetch.slot is not None:
                    return self.drive.cylinder_of(fetch.slot)
            return 0

        ascending = round_number % 2 == 0
        head = self.drive.head_cylinder
        keyed = [(next_cylinder(stream), stream) for stream in active]
        if ascending:
            ahead = sorted(
                (c, s.request_id, s) for c, s in keyed if c >= head
            )
            behind = sorted(
                ((c, s.request_id, s) for c, s in keyed if c < head),
                reverse=True,
            )
        else:
            ahead = sorted(
                ((c, s.request_id, s) for c, s in keyed if c <= head),
                reverse=True,
            )
            behind = sorted(
                (c, s.request_id, s) for c, s in keyed if c > head
            )
        return [stream for _c, _rid, stream in ahead + behind]


@dataclass
class RoundTimeProbe:
    """Measures per-round service times for capacity estimation."""

    durations: List[float]

    @property
    def mean(self) -> float:
        """Average round duration, seconds."""
        if not self.durations:
            return 0.0
        return sum(self.durations) / len(self.durations)

    @property
    def worst(self) -> float:
        """Longest observed round, seconds."""
        return max(self.durations, default=0.0)


def probe_round_times(
    service: RoundRobinService,
    streams: Sequence[StreamState],
) -> RoundTimeProbe:
    """Run *streams* to completion, recording each round's duration."""
    durations: List[float] = []
    original = service._run_round

    def instrumented(time, active, k, round_number):
        new_time, progressed = original(time, active, k, round_number)
        if progressed:
            durations.append(new_time - time)
        return new_time, progressed

    service._run_round = instrumented  # type: ignore[method-assign]
    try:
        service.run(list(streams))
    finally:
        service._run_round = original  # type: ignore[method-assign]
    return RoundTimeProbe(durations=durations)


def measured_capacity(
    block_playback: float,
    k: int,
    worst_round: float,
    n_probed: int,
) -> int:
    """Eq. (17) re-evaluated with a *measured* per-block cost β̂.

    The analytic bound plugs the disk's average seek into β (Eq. 13) —
    pessimistic, because constrained placement bounds intra-request
    seeks far tighter.  Probing n streams at k blocks/round measures the
    real amortized per-block service cost ``β̂ = worst_round / (n·k)``;
    the §6.2 "statistical" capacity is then ``⌈γ/β̂⌉ − 1``, exactly
    Eq. (17)'s form with β replaced by the measurement.
    """
    if n_probed < 1 or k < 1:
        raise ParameterError("n_probed and k must be >= 1")
    if worst_round <= 0:
        raise ParameterError("worst_round must be positive")
    beta_hat = worst_round / (n_probed * k)
    return max(1, math.ceil(block_playback / beta_hat) - 1)
