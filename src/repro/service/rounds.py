"""Round-robin servicing of multiple requests (§3.4).

"In order to service multiple requests simultaneously, the file system
proceeds in rounds.  In each round, it multiplexes among the media block
transfers of the n requests", reading k consecutive blocks per request
before switching; switching costs a real head movement (bounded by the
maximum seek).

:class:`RoundRobinService` replays any number of playback plans through
one simulated drive under a per-round k schedule, scoring continuity per
request.  It supports:

* mid-run admissions (new streams joining at a chosen round) with either
  the paper's transition-safe step-of-1 k growth or a naive jump — the
  E3 experiment's comparison;
* buffer-capacity regulation ("regulating the number of data blocks
  transferred for each request during each service round, so as not to
  overflow the buffering available in the display subsystem");
* per-request playback clocks that start when the request's anti-jitter
  read-ahead (its first k-block service) completes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.disk.drive import SimulatedDrive
from repro.errors import HeadFailureError, ParameterError
from repro.faults.recovery import RecoveryPolicy, read_with_recovery
from repro.obs.registry import (
    DEADLINE_SLACK_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    ROUND_UTILIZATION_BUCKETS,
)
from repro.obs.timeline import BlockStage
from repro.rope.server import BlockFetch
from repro.sim.metrics import ContinuityMetrics
from repro.sim.trace import Tracer

__all__ = [
    "StreamState",
    "Admission",
    "RoundRobinService",
    "consumed_prefix",
]


def consumed_prefix(
    deliveries: Sequence[Tuple[float, float, float]],
    start: float,
    now: float,
) -> Tuple[int, float]:
    """Reference playback-consumption scan: ``(count, elapsed)`` at *now*.

    Playback cascades over the delivery schedule: block j starts when its
    data is ready and the previous block has finished, so consumption is a
    running fold over ``(ready, duration)``.  This is the O(n) rescan the
    :class:`StreamState` cursor replaces on its hot path; it remains the
    ground truth for non-monotone queries and for the equivalence tests.
    """
    count = 0
    elapsed = start
    for ready, _deadline, duration in deliveries:
        end = max(elapsed, ready) + duration
        if end <= now:
            count += 1
            elapsed = end
        else:
            break
    return count, elapsed


@dataclass
class StreamState:
    """One request's progress through its fetch plan.

    ``k_override``, when set, replaces the round's global k for this
    stream — the per-request k_i of Eq. (11)'s general formulation
    (see :func:`repro.core.admission.solve_heterogeneous_k`).
    """

    request_id: str
    fetches: Sequence[BlockFetch]
    buffer_capacity: int
    k_override: Optional[int] = None
    next_fetch: int = 0
    clock_start: Optional[float] = None
    _elapsed_playback: float = 0.0
    metrics: ContinuityMetrics = field(default_factory=ContinuityMetrics)
    #: (ready time, deadline, duration) per delivered block.
    deliveries: List[Tuple[float, float, float]] = field(default_factory=list)
    #: Delivery indexes whose data never arrived (fault-recovery skips);
    #: the playback timeline still advances over them (the glitch).
    skipped_indices: Set[int] = field(default_factory=set)
    #: Causal-trace context: the server-side root span (or wire dict)
    #: this stream's service spans continue, if any.
    trace: object = None
    #: Consumption cursor: blocks fully played as of the last query, and
    #: the playback clock right after the last consumed block.  Block end
    #: times are non-decreasing, so the cursor only ever moves forward
    #: while query times are monotone — the service loop's case — making
    #: every consumption query O(1) amortized over a stream's lifetime.
    _consumed_count: int = field(default=0, init=False, repr=False)
    _consumed_end: float = field(default=0.0, init=False, repr=False)
    #: Smallest positive block duration in the fetch plan (the Eq.-11
    #: budget term), computed lazily since the plan never changes.
    _duration_floor: Optional[float] = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        self.metrics.request_id = self.request_id
        if self.buffer_capacity < 1:
            raise ParameterError(
                f"buffer_capacity must be >= 1, got {self.buffer_capacity}"
            )

    @property
    def finished(self) -> bool:
        """True when every block has been delivered."""
        return self.next_fetch >= len(self.fetches)

    def _consume_state(self, now: float) -> Tuple[int, float]:
        """``(consumed count, playback clock after them)`` at *now*.

        Advances the cached cursor forward when *now* has not moved
        backwards; a query earlier than the last consumed block's end
        (never issued by the service loop) falls back to the reference
        rescan without disturbing the cursor.
        """
        if self.clock_start is None:
            return 0, 0.0
        count = self._consumed_count
        if count and now < self._consumed_end:
            return consumed_prefix(self.deliveries, self.clock_start, now)
        elapsed = self._consumed_end if count else self.clock_start
        deliveries = self.deliveries
        total = len(deliveries)
        while count < total:
            ready, _deadline, duration = deliveries[count]
            end = max(elapsed, ready) + duration
            if end > now:
                break
            count += 1
            elapsed = end
        if count != self._consumed_count:
            self._consumed_count = count
            self._consumed_end = elapsed
        return count, elapsed

    def consumed_at(self, now: float) -> int:
        """Blocks whose playback has completed by *now*."""
        return self._consume_state(now)[0]

    def buffered_at(self, now: float) -> int:
        """Blocks sitting in the display buffer at *now*."""
        return len(self.deliveries) - self._consume_state(now)[0]

    def next_consumption_time(self, now: float) -> float:
        """When the next buffered block finishes playing (inf if never).

        Used by the service loop to advance time when every stream's
        buffer is full — consumption is the only thing that frees space.
        """
        if self.clock_start is None:
            return float("inf")
        count, elapsed = self._consume_state(now)
        if count >= len(self.deliveries):
            return float("inf")
        ready, _deadline, duration = self.deliveries[count]
        return max(elapsed, ready) + duration


@dataclass(frozen=True)
class Admission:
    """A stream joining the service at the start of a given round."""

    round_number: int
    stream: StreamState


class RoundRobinService:
    """The §3.4 service loop over one drive.

    Parameters
    ----------
    drive:
        The shared mechanism.
    k_schedule:
        Callable ``(round_number, active_count) -> k`` giving the blocks
        per request to transfer in that round.  The paper's algorithm
        passes the admission controller's staged plan through this hook.
    tracer:
        Optional event tracer.
    recovery:
        Fault-recovery policy applied when the drive carries a
        :class:`~repro.faults.injector.FaultInjector`; defaults to the
        standard bounded retry.
    on_head_failure:
        Invoked once, with the :class:`HeadFailureError`, the first time
        the drive's head dies mid-service (admission revalidation hook).
    obs:
        Optional :class:`~repro.obs.Observability` handle.  When given,
        the loop records per-block lifecycle events into the session
        timeline and feeds the round-utilization / queue-depth /
        deadline-slack histograms; when None (the default) every hook is
        a single ``is None`` test.
    """

    def __init__(
        self,
        drive: SimulatedDrive,
        k_schedule: Callable[[int, int], int],
        tracer: Optional[Tracer] = None,
        recovery: Optional[RecoveryPolicy] = None,
        on_head_failure: Optional[Callable[[HeadFailureError], None]] = None,
        obs=None,
    ):
        self.drive = drive
        self.k_schedule = k_schedule
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.on_head_failure = on_head_failure
        self.head_failure: Optional[HeadFailureError] = None
        self.rounds_run = 0
        self.obs = obs
        # Hoisted observability handles: the per-block hot loop reads
        # these locals-of-self instead of chasing obs attributes, and a
        # disabled surface is a plain None test.
        self._tl = None
        self._tl_keep: Optional[int] = None
        self._tl_every: Optional[int] = None
        self._sp = None
        self._sp_keep: Optional[int] = None
        self._sp_every: Optional[int] = None
        self._slo = None
        self._prof = None
        self._stream_spans: Dict[str, object] = {}
        self._drive_traced = hasattr(drive, "traced_read")
        if obs is not None:
            registry = obs.registry
            self._obs_slack = registry.histogram(
                "session.deadline_slack_s", DEADLINE_SLACK_BUCKETS
            )
            self._obs_depth = registry.histogram(
                "service.queue_depth", QUEUE_DEPTH_BUCKETS
            )
            self._obs_util = registry.histogram(
                "service.round_utilization", ROUND_UTILIZATION_BUCKETS
            )
            self._obs_delivered = registry.counter(
                "session.blocks_delivered"
            )
            self._obs_skipped = registry.counter("session.blocks_skipped")
            self._obs_misses = registry.counter("session.deadline_misses")
            timeline = getattr(obs, "timeline", None)
            if timeline is not None and timeline.enabled:
                self._tl = timeline
                self._tl_keep = timeline.keep_first
                self._tl_every = timeline.every_kth
            span_tracer = getattr(obs, "tracer", None)
            if span_tracer is not None and span_tracer.enabled:
                self._sp = span_tracer
                self._sp_keep = span_tracer.block_keep_first
                self._sp_every = span_tracer.block_every_kth
            self._slo = getattr(obs, "slo", None)
            self._prof = getattr(obs, "profiler", None)
            if tracer is not None and hasattr(obs, "attach_sim_tracer"):
                obs.attach_sim_tracer(self.tracer)
        # Sampling prefilter for the per-block hot path: ``(keep_max,
        # every_gcd)`` such that an index >= keep_max whose remainder mod
        # every_gcd is nonzero is recorded by NO sampled surface — one
        # cheap test rejects it without evaluating per-surface gates.
        # None means some active surface records every block (no
        # prefilter possible); (0, 0) means nothing records at all.
        surfaces = []
        if self._tl is not None:
            surfaces.append((self._tl_keep, self._tl_every))
        if self._sp is not None:
            surfaces.append((self._sp_keep, self._sp_every))
        if not surfaces:
            self._sample_pre: Optional[Tuple[int, int]] = (0, 0)
        elif all(keep is not None for keep, _every in surfaces):
            gcd = 0
            for _keep, every in surfaces:
                if every is not None:
                    gcd = math.gcd(gcd, every)
            self._sample_pre = (
                max(keep for keep, _every in surfaces), gcd
            )
        else:
            self._sample_pre = None

    def _extra_work_pending(self) -> bool:
        """Hook for subclasses with non-playback work (e.g. recording).

        When True, the service loop keeps running rounds even after every
        playback stream has finished.
        """
        return False

    def run(
        self,
        initial: Sequence[StreamState],
        admissions: Sequence[Admission] = (),
        max_rounds: int = 100_000,
    ) -> Dict[str, ContinuityMetrics]:
        """Service all streams to completion; returns metrics per request."""
        time = 0.0
        active: List[StreamState] = list(initial)
        if self._sp is not None:
            for stream in active:
                self._open_stream_span(stream, time)
        pending = sorted(admissions, key=lambda a: a.round_number)
        next_pending = 0
        round_number = 0
        prof = self._prof
        while True:
            admitted_now = 0
            while (
                next_pending < len(pending)
                and pending[next_pending].round_number <= round_number
            ):
                admitted = pending[next_pending]
                next_pending += 1
                admitted_now += 1
                active.append(admitted.stream)
                self.tracer.emit(
                    time, "admit", admitted.stream.request_id,
                    f"round {round_number}",
                )
                if self._sp is not None:
                    self._open_stream_span(admitted.stream, time)
            # Compact finished streams out in place, preserving order.
            scanned = len(active)
            write = 0
            for stream in active:
                if not stream.finished:
                    active[write] = stream
                    write += 1
            if write != len(active):
                del active[write:]
            if prof is not None and (scanned or admitted_now):
                prof.record("admission_scan", ops=scanned + admitted_now)
            more_pending = next_pending < len(pending)
            if not active and not more_pending and not self._extra_work_pending():
                break
            if not active and more_pending and not self._extra_work_pending():
                round_number += 1
                continue
            k = self.k_schedule(round_number, len(active))
            if k < 1:
                raise ParameterError(
                    f"k schedule returned {k} for round {round_number}"
                )
            if self.obs is not None:
                self._obs_depth.observe(len(active))
                with self.obs.timed("service.round"):
                    time, progressed = self._run_round(
                        time, active, k, round_number
                    )
            else:
                time, progressed = self._run_round(
                    time, active, k, round_number
                )
            if not progressed:
                # Every buffer was full: idle until consumption frees one.
                if prof is not None:
                    prof.record("deadline_ordering", ops=len(active))
                wake = min(
                    stream.next_consumption_time(time) for stream in active
                )
                if wake == float("inf") or wake <= time:
                    raise ParameterError(
                        "service deadlocked: all buffers full and no "
                        "playback consuming them"
                    )
                time = wake
            round_number += 1
            self.rounds_run += 1
            if prof is not None:
                prof.checkpoint(time)
            if self._slo is not None:
                self._slo.on_round(time, round_number)
            if round_number > max_rounds:
                raise ParameterError(
                    f"exceeded {max_rounds} rounds; k schedule likely "
                    "starves a stream"
                )
        streams = list(initial) + [a.stream for a in admissions]
        if self.obs is not None:
            self._finalize_obs(streams)
        if self._slo is not None:
            self._slo.finalize(time)
        return {stream.request_id: stream.metrics for stream in streams}

    def _open_stream_span(self, stream: StreamState, time: float) -> None:
        """Start this stream's ``service.stream`` span.

        Parents on the server-side root span when the tracer has one
        bound for the request (or the stream carries a wire context);
        otherwise the span roots a trace keyed by the request id — the
        same trace id the server side would have produced.
        """
        tracer = self._sp
        parent = stream.trace
        if parent is None:
            parent = tracer.context_for(stream.request_id)
        span = tracer.start_span(
            "service.stream",
            time,
            parent=parent,
            session=stream.request_id,
            attrs={"blocks": len(stream.fetches)},
        )
        if span is not None:
            self._stream_spans[stream.request_id] = span
            stream.trace = span

    def _finalize_obs(self, streams: Sequence[StreamState]) -> None:
        """Score the completed run into the observability surfaces.

        Consumption times are derivable only after the fact (playback
        cascades over the delivery schedule), so ``consumed`` timeline
        events and the deadline-slack histogram are recorded here, once
        per delivered block, with the post-rescore deadlines.
        """
        timeline = self._tl
        keep = self._tl_keep
        every = self._tl_every
        tracer = self._sp
        prof = self._prof
        slack_observe = self._obs_slack.observe
        for stream in streams:
            span = self._stream_spans.pop(stream.request_id, None)
            if stream.clock_start is None:
                if prof is not None:
                    prof.record("span_finalize", ops=1)
                if tracer is not None and span is not None:
                    tracer.end_span(span, span.start, status="unstarted")
                continue
            elapsed = stream.clock_start
            skipped_indices = stream.skipped_indices
            deliveries = stream.deliveries
            if not skipped_indices and not stream.metrics.misses:
                # Continuous stream: every block arrived at or before its
                # deadline, so the playback cascade never stalled on a
                # late block and index i finished playing at exactly
                # ``deadline_i + duration_i`` — no O(n) fold needed, and
                # the sampled walk touches only the sampled indexes.
                if deliveries:
                    _last_ready, last_deadline, last_dur = deliveries[-1]
                    elapsed = last_deadline + last_dur
                if keep is None:
                    for index, (ready, deadline, duration) in enumerate(
                        deliveries
                    ):
                        if timeline is not None:
                            timeline.record(
                                deadline + duration, stream.request_id,
                                index, BlockStage.CONSUMED,
                            )
                        slack_observe(deadline - ready)
                else:
                    total = len(deliveries)
                    for index in range(keep if keep < total else total):
                        ready, deadline, duration = deliveries[index]
                        if timeline is not None:
                            timeline.record(
                                deadline + duration, stream.request_id,
                                index, BlockStage.CONSUMED,
                            )
                        slack_observe(deadline - ready)
                    if every is not None:
                        # Lattice resumes past the keep-first prefix (the
                        # multiples below it were just recorded).
                        for index in range(
                            keep + (-keep % every), total, every
                        ):
                            ready, deadline, duration = deliveries[index]
                            if timeline is not None:
                                timeline.record(
                                    deadline + duration,
                                    stream.request_id,
                                    index, BlockStage.CONSUMED,
                                )
                            slack_observe(deadline - ready)
            elif keep is None:
                # Unsampled: score every delivered block.
                for index, (ready, deadline, duration) in enumerate(
                    deliveries
                ):
                    end = (elapsed if elapsed > ready else ready) + duration
                    elapsed = end
                    if index in skipped_indices:
                        continue
                    if timeline is not None:
                        timeline.record(
                            end, stream.request_id, index,
                            BlockStage.CONSUMED,
                        )
                    slack_observe(deadline - ready)
            else:
                # Sampled + stalled: fold the consumption cascade in
                # plain segments between sampled indexes — the fold body
                # touches three locals per block, and the sampling
                # bookkeeping runs only at the sampled indexes.
                total = len(deliveries)
                sampled_indexes = list(
                    range(keep if keep < total else total)
                )
                if every is not None:
                    sampled_indexes.extend(
                        range(keep + (-keep % every), total, every)
                    )
                pos = 0
                for index in sampled_indexes:
                    for ready, _deadline, duration in deliveries[
                        pos:index
                    ]:
                        if ready > elapsed:
                            elapsed = ready
                        elapsed += duration
                    ready, deadline, duration = deliveries[index]
                    if ready > elapsed:
                        elapsed = ready
                    elapsed += duration
                    pos = index + 1
                    if index in skipped_indices:
                        continue
                    if timeline is not None:
                        timeline.record(
                            elapsed, stream.request_id, index,
                            BlockStage.CONSUMED,
                        )
                    slack_observe(deadline - ready)
                for ready, _deadline, duration in deliveries[pos:]:
                    if ready > elapsed:
                        elapsed = ready
                    elapsed += duration
            if prof is not None:
                prof.record(
                    "span_finalize", ops=len(deliveries) if deliveries else 1
                )
            self._obs_delivered.inc(
                len(deliveries) - len(skipped_indices)
            )
            if stream.metrics.misses:
                self._obs_misses.inc(stream.metrics.misses)
            if tracer is not None and span is not None:
                status = "ok" if stream.metrics.continuous else "degraded"
                tracer.end_span(span, elapsed, status=status)
        self.obs.registry.gauge("service.rounds_run").set(self.rounds_run)

    def _run_round(
        self,
        time: float,
        active: Sequence[StreamState],
        k: int,
        round_number: int,
    ) -> Tuple[float, bool]:
        progressed = False
        round_start = time
        #: Tightest Eq.-11 budget among streams served this round:
        #: min of (stream's k × its smallest positive block duration).
        budget = float("inf")
        obs = self.obs
        tl = self._tl
        tl_keep = self._tl_keep
        tl_every = self._tl_every
        sp = self._sp
        sp_keep = self._sp_keep
        sp_every = self._sp_every
        prof = self._prof
        # Consumption-cursor / deadline bookkeeping queries this round
        # (the buffer-room probe per stream + one per delivery).
        dq_ops = 0
        pre = self._sample_pre
        if pre is not None:
            pre_keep, pre_mod = pre
        for stream in active:
            if stream.finished:
                continue
            stream_k = stream.k_override if stream.k_override else k
            # Buffer regulation: never exceed display-subsystem capacity.
            room = stream.buffer_capacity - stream.buffered_at(time)
            dq_ops += 1
            quota = min(stream_k, max(0, room))
            if quota == 0:
                self.tracer.emit(
                    time, "buffer-full", stream.request_id,
                    f"round {round_number}",
                )
                continue
            stream_start = time
            delivered = 0
            while delivered < quota and not stream.finished:
                index = stream.next_fetch
                fetch = stream.fetches[index]
                if pre is not None and index >= pre_keep and (
                    pre_mod == 0 or index % pre_mod
                ):
                    # Fast reject: no sampled surface records this index.
                    tl_on = False
                    block_span = None
                else:
                    # Sampling gates, inlined: record when the index is
                    # in the keep-first prefix or on the every-kth
                    # lattice (or the surface is unsampled).
                    tl_on = tl is not None and (
                        tl_keep is None or index < tl_keep or (
                            tl_every is not None and not index % tl_every
                        )
                    )
                    if tl_on:
                        tl.record(
                            time, stream.request_id, index,
                            BlockStage.ENQUEUED,
                        )
                        if fetch.slot is not None:
                            tl.record(
                                time, stream.request_id, index,
                                BlockStage.READ_START,
                            )
                    block_span = None
                    if sp is not None and (
                        sp_keep is None or index < sp_keep or (
                            sp_every is not None
                            and not index % sp_every
                        )
                    ):
                        block_span = sp.start_span(
                            "service.block",
                            time,
                            parent=stream.trace,
                            session=stream.request_id,
                            attrs={"block": index, "round": round_number},
                        )
                skipped = False
                if fetch.slot is not None:
                    if block_span is None:
                        time, skipped = self._fetch_block(
                            stream, fetch, time
                        )
                    else:
                        time, skipped = self._fetch_block(
                            stream, fetch, time, block_span
                        )
                self._deliver(stream, fetch, time, skipped=skipped)
                stream.next_fetch += 1
                delivered += 1
                progressed = True
                if block_span is not None:
                    sp.end_span(
                        block_span, time,
                        status="skipped" if skipped else "ok",
                    )
                if tl_on:
                    tl.record(
                        time, stream.request_id, index,
                        BlockStage.READ_DONE,
                    )
                    if skipped:
                        tl.record(
                            time, stream.request_id, index,
                            BlockStage.SKIPPED,
                        )
                if skipped and obs is not None:
                    self._obs_skipped.inc()
            if delivered:
                dq_ops += delivered
                if prof is not None:
                    prof.attribute_stream(
                        stream.request_id,
                        cost=time - stream_start,
                        ops=delivered,
                    )
            if obs is not None and delivered:
                floor = stream._duration_floor
                if floor is None:
                    # The fetch plan is immutable, so the stream's
                    # smallest positive block duration is computed once
                    # and cached for every later round.
                    durations = [f.duration for f in stream.fetches]
                    floor = min(durations) if durations else 0.0
                    if floor <= 0.0:
                        floor = min(
                            (d for d in durations if d > 0.0),
                            default=0.0,
                        )
                    stream._duration_floor = floor
                if floor > 0.0:
                    stream_budget = stream_k * floor
                    if stream_budget < budget:
                        budget = stream_budget
            # Playback starts once the anti-jitter read-ahead — the first
            # k-block service, capped by what the display buffer can
            # actually hold — is on board.
            threshold = min(
                stream_k, stream.buffer_capacity, len(stream.fetches)
            )
            if stream.clock_start is None and (
                len(stream.deliveries) >= threshold
            ):
                stream.clock_start = time
                stream.metrics.startup_latency = time
                self._rescore(stream)
                self.tracer.emit(
                    time, "playback-start", stream.request_id,
                    f"after {len(stream.deliveries)} blocks",
                )
        if prof is not None and dq_ops:
            prof.record("deadline_ordering", ops=dq_ops)
        if (
            self.obs is not None
            and progressed
            and budget != float("inf")
            and budget > 0
        ):
            self._obs_util.observe((time - round_start) / budget)
        return time, progressed

    def _fetch_block(
        self,
        stream: StreamState,
        fetch: BlockFetch,
        time: float,
        span=None,
    ) -> Tuple[float, bool]:
        """Read one block with fault recovery; returns (time, skipped).

        With a sampled *span* (the block's ``service.block`` span) and a
        trace-capable drive, the read itself is traced — a
        ``cache.read``/``disk.access`` child per access, and
        ``fault.retry``/``fault.skip`` spans on the recovery path.
        """
        if self.drive.injector is None:
            # Healthy drive: the original zero-overhead path.
            if span is not None and self._drive_traced:
                elapsed = self.drive.traced_read(
                    fetch.slot, fetch.bits, time, self._sp, span
                )
                return time + elapsed, False
            return time + self.drive.read_slot(fetch.slot, fetch.bits), False
        deadline = None
        if stream.clock_start is not None:
            deadline = stream.clock_start + stream._elapsed_playback
        try:
            elapsed, ok = read_with_recovery(
                self.drive,
                fetch.slot,
                fetch.bits,
                self.recovery,
                now=time,
                deadline=deadline,
                tracer=self.tracer,
                subject=stream.request_id,
                obs=self.obs,
                span_tracer=self._sp if span is not None else None,
                span=span,
            )
        except HeadFailureError as fault:
            self._note_head_failure(fault, time + fault.elapsed)
            return time + fault.elapsed, True
        return time + elapsed, not ok

    def _note_head_failure(
        self, fault: HeadFailureError, time: float
    ) -> None:
        """Record the (first) head failure and fire the degrade hook."""
        if self.head_failure is not None:
            return
        self.head_failure = fault
        self.tracer.emit(
            time, "fault.degrade", "service",
            f"head {fault.drive_index} lost; degraded service, "
            "admission revalidation requested",
        )
        if self.on_head_failure is not None:
            self.on_head_failure(fault)

    def _deliver(
        self,
        stream: StreamState,
        fetch: BlockFetch,
        ready: float,
        skipped: bool = False,
    ) -> None:
        if skipped:
            stream.skipped_indices.add(len(stream.deliveries))
        if stream.clock_start is None:
            # Deadline unknown until the clock starts; placeholder scored
            # in _rescore.
            stream.deliveries.append((ready, float("nan"), fetch.duration))
            return
        deadline = stream.clock_start + stream._elapsed_playback
        stream._elapsed_playback += fetch.duration
        stream.deliveries.append((ready, deadline, fetch.duration))
        if skipped:
            stream.metrics.record_skip(ready, deadline)
        else:
            stream.metrics.record_delivery(ready, deadline)
        high = stream.buffered_at(ready)
        stream.metrics.buffer_high_water = max(
            stream.metrics.buffer_high_water, high
        )

    def _rescore(self, stream: StreamState) -> None:
        """Assign deadlines to pre-start deliveries once the clock starts."""
        start = stream.clock_start
        assert start is not None
        rescored: List[Tuple[float, float, float]] = []
        elapsed = 0.0
        for index, (ready, _deadline, duration) in enumerate(
            stream.deliveries
        ):
            deadline = start + elapsed
            elapsed += duration
            rescored.append((ready, deadline, duration))
            if index in stream.skipped_indices:
                stream.metrics.record_skip(ready, deadline)
            else:
                stream.metrics.record_delivery(ready, deadline)
        stream.deliveries = rescored
        stream._elapsed_playback = elapsed
