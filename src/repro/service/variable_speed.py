"""Variable-speed playback: fast-forward and slow motion (§3.3.2).

"Functions such as fast-forwarding can be supported by satisfying
continuity requirements at the fastest required display rate.  Whereas
fast-forwarding without skipping frames increases both continuity and
buffering requirements, fast-forwarding with skipping increases only the
continuity requirement.  However, when blocks are displayed slower than
the fastest rate ..., retrieval of media blocks proceeds faster than
their display, leading to accumulation of media blocks in buffers.  In
order to prevent unbounded accumulation, the disk can switch to some
other task after all the buffers allocated to the retrieval of a media
strand are filled, and switch back when sufficient buffers become empty"
— reading ahead h extra blocks before each switch to survive the
worst-case re-positioning seek.

:func:`transform_plan` rewrites a fetch sequence for a given speed
(dropping blocks for skipped fast-forward, stretching durations for slow
motion); :func:`simulate_variable_speed` replays the transformed plan
with a bounded buffer and the switch/read-ahead protocol, reporting both
continuity and the buffer/task-switch behaviour the paper predicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.disk.drive import SimulatedDrive
from repro.errors import ParameterError
from repro.rope.server import BlockFetch
from repro.sim.metrics import ContinuityMetrics

__all__ = [
    "VariableSpeedResult",
    "transform_plan",
    "simulate_variable_speed",
]


def transform_plan(
    fetches: Sequence[BlockFetch],
    speed: float,
    skipping: bool = False,
) -> List[BlockFetch]:
    """Rewrite a normal-speed fetch plan for playback at *speed*×.

    * ``speed > 1`` fast-forward: every duration shrinks by the factor.
      With *skipping*, only every ``⌈speed⌉``-th block is fetched, each
      shown for its un-skipped wall-clock share (the paper's
      "fast-forwarding with skipping").
    * ``speed < 1`` slow motion: durations stretch by 1/speed.
    """
    if speed <= 0:
        raise ParameterError(f"speed must be positive, got {speed}")
    if skipping and speed <= 1.0:
        raise ParameterError("skipping only applies to fast-forward")
    if skipping:
        stride = math.ceil(speed)
        kept = list(fetches[::stride])
        # Each kept block covers `stride` blocks of media in stride/speed
        # of wall-clock time.
        return [
            replace(fetch, duration=fetch.duration * stride / speed)
            for fetch in kept
        ]
    return [
        replace(fetch, duration=fetch.duration / speed)
        for fetch in fetches
    ]


@dataclass(frozen=True)
class VariableSpeedResult:
    """Outcome of a variable-speed playback simulation."""

    metrics: ContinuityMetrics
    buffer_high_water: int
    task_switches: int
    switch_idle_time: float

    @property
    def continuous(self) -> bool:
        """True when every displayed block met its deadline."""
        return self.metrics.continuous


def simulate_variable_speed(
    fetches: Sequence[BlockFetch],
    drive: SimulatedDrive,
    speed: float,
    buffer_capacity: int,
    skipping: bool = False,
    switch_penalty: float = None,
    request_id: str = "varspeed",
) -> VariableSpeedResult:
    """Replay a plan at *speed*× with bounded buffering and task switches.

    Pipelined transfer model: the disk reads ahead as long as buffer
    space remains; when the buffer fills it "switches to another task"
    and returns only when half the buffers have drained, paying
    *switch_penalty* (default: the drive's worst-case re-positioning
    time) before the next read — the behaviour §3.3.2 prescribes, with
    the h-block read-ahead realized by the full buffer it leaves behind.
    """
    if buffer_capacity < 1:
        raise ParameterError(
            f"buffer_capacity must be >= 1, got {buffer_capacity}"
        )
    plan = transform_plan(fetches, speed, skipping)
    if switch_penalty is None:
        params = drive.parameters()
        switch_penalty = params.seek_max
    metrics = ContinuityMetrics(request_id=request_id)
    ready: List[float] = []
    time = 0.0
    clock_start: float = None
    display_elapsed = 0.0
    consumed = 0
    switches = 0
    idle = 0.0
    away = False

    def consumed_by(now: float) -> int:
        if clock_start is None:
            return 0
        count = 0
        elapsed = clock_start
        for index, fetch in enumerate(plan[:len(ready)]):
            end = max(elapsed, ready[index]) + fetch.duration
            if end <= now:
                count += 1
                elapsed = end
            else:
                break
        return count

    for index, fetch in enumerate(plan):
        # Buffer regulation with the task-switch protocol.
        buffered = len(ready) - consumed_by(time)
        if buffered >= buffer_capacity:
            switches += 1
            away = True
            # Wait until half the buffers drain.
            target = len(ready) - buffer_capacity // 2
            wake = time
            elapsed = clock_start
            done = 0
            for j, done_fetch in enumerate(plan[:len(ready)]):
                end = max(elapsed, ready[j]) + done_fetch.duration
                elapsed = end
                done = j + 1
                if done >= max(target, consumed_by(time) + 1):
                    wake = end
                    break
            idle += max(0.0, wake - time)
            time = max(time, wake)
        if fetch.slot is not None:
            penalty = switch_penalty if away else 0.0
            away = False
            time += penalty + drive.read_slot(fetch.slot, fetch.bits)
        ready.append(time)
        if clock_start is None:
            clock_start = time
    # Score deadlines.
    deadline = clock_start if clock_start is not None else 0.0
    high_water = 0
    for index, fetch in enumerate(plan):
        metrics.record_delivery(ready[index], deadline)
        deadline += fetch.duration
    # High-water: densest over-delivery relative to consumption.
    for index in range(len(ready)):
        high_water = max(
            high_water, index + 1 - consumed_by(ready[index])
        )
    metrics.buffer_high_water = high_water
    return VariableSpeedResult(
        metrics=metrics,
        buffer_high_water=high_water,
        task_switches=switches,
        switch_idle_time=idle,
    )
