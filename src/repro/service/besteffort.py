"""Best-effort text I/O inside a continuous-media service loop (§3).

"A common file server can, however, integrate the functions of both a
conventional text file server and a multimedia file server by employing
constrained block allocation for (real-time) media strands, and using the
gaps between successive blocks of a media strand to store text files."

Storing text in the gaps is half the story (:class:`repro.disk.GapFiller`
does that); the other half is *serving* it without breaking continuity.
:class:`UnifiedService` extends the §3.4 round loop with a best-effort
queue: after each round's real-time transfers complete, the slack before
the earliest media deadline is spent on text-block reads — each read is
admitted into the slack only if its worst-case time (current-position
seek + transfer) still fits.  Media requests therefore keep their zero-
miss guarantee by construction, and text throughput becomes a measure of
the media load's leftover bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.disk.drive import SimulatedDrive
from repro.service.rounds import RoundRobinService, StreamState
from repro.sim.trace import Tracer

__all__ = ["TextRequest", "UnifiedService"]


@dataclass
class TextRequest:
    """A conventional (non-real-time) read: some text blocks, any time."""

    request_id: str
    slots: Sequence[int]
    served: int = 0
    completion_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        """True when every block has been read."""
        return self.served >= len(self.slots)

    @property
    def remaining(self) -> int:
        """Blocks still queued."""
        return len(self.slots) - self.served


class UnifiedService(RoundRobinService):
    """Round service with a best-effort text queue in the slack.

    Parameters
    ----------
    drive, k_schedule, tracer:
        As for :class:`RoundRobinService`.
    text_requests:
        Conventional reads to serve opportunistically, FIFO.
    """

    def __init__(
        self,
        drive: SimulatedDrive,
        k_schedule: Callable[[int, int], int],
        text_requests: Sequence[TextRequest] = (),
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(drive, k_schedule, tracer)
        self.text_requests: List[TextRequest] = list(text_requests)
        self.text_blocks_served = 0
        self.text_time_used = 0.0

    @staticmethod
    def _round_budget(active: Sequence[StreamState], k: int) -> float:
        """Eq. (11)'s right-hand side: ``min_i k_i·T_i`` over the active
        streams — the whole round (media + text) must fit inside it for
        every buffer to survive to the next round.  Streams carrying a
        per-request ``k_override`` (the general Eq.-11 form) contribute
        their own k_i; the others use the round's global k."""
        budget = float("inf")
        for stream in active:
            durations = [
                fetch.duration for fetch in stream.fetches
                if fetch.duration > 0
            ]
            if not durations:
                continue
            stream_k = stream.k_override if stream.k_override else k
            budget = min(budget, stream_k * min(durations))
        if budget == float("inf"):
            return 0.0
        return budget

    def _worst_case_text_read(self, slot: int) -> float:
        """Upper bound on one text read from the current head position."""
        distance = abs(
            self.drive.cylinder_of(slot) - self.drive.head_cylinder
        )
        return (
            self.drive.seek_model.seek_time(distance)
            + self.drive.rotation.max_latency
            + self.drive.transfer_time(self.drive.block_bits)
        )

    def _run_round(
        self,
        time: float,
        active: Sequence[StreamState],
        k: int,
        round_number: int,
    ) -> Tuple[float, bool]:
        round_start = time
        time, progressed = super()._run_round(time, active, k, round_number)
        budget = self._round_budget(active, k)
        time = self._serve_text_in_slack(
            time, round_start, budget, round_number
        )
        return time, progressed

    def _serve_text_in_slack(
        self,
        time: float,
        round_start: float,
        budget: float,
        round_number: int,
    ) -> float:
        """Spend the round's leftover Eq.-(11) budget on text reads.

        Media transfers took ``time − round_start`` of the k·γ budget;
        each text read is admitted only if its worst case still fits, so
        the whole round (media + text) respects the same bound the
        admission controller guaranteed — continuity is preserved by
        construction.
        """
        queue = [t for t in self.text_requests if not t.finished]
        if not queue or budget <= 0:
            return time
        deadline = round_start + budget
        for request in queue:
            while not request.finished:
                slot = request.slots[request.served]
                worst = self._worst_case_text_read(slot)
                if time + worst > deadline:
                    return time
                start = time
                time += self.drive.read_slot(slot)
                self.text_time_used += time - start
                request.served += 1
                self.text_blocks_served += 1
                if request.finished:
                    request.completion_time = time
                    self.tracer.emit(
                        time, "text-complete", request.request_id,
                        f"{len(request.slots)} blocks",
                    )
        return time

    def drain_text(self, start_time: float) -> float:
        """Serve any remaining text after media streams complete."""
        time = start_time
        for request in self.text_requests:
            while not request.finished:
                slot = request.slots[request.served]
                time += self.drive.read_slot(slot)
                request.served += 1
                self.text_blocks_served += 1
            if request.completion_time is None:
                request.completion_time = time
        return time
