"""Plain-text rendering of experiment results (paper-style rows).

Benchmarks print through these helpers so every experiment's output reads
the same way: a titled table of aligned columns, or an (x, y) series
rendered one point per line — the closest text analogue of the paper's
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.errors import ParameterError
from repro.sim.metrics import SweepSeries

__all__ = ["Table", "render_series", "format_cell"]

Cell = Union[str, int, float, bool, None]


def format_cell(value: Cell) -> str:
    """Uniform cell formatting: floats to 4 significant digits."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled, column-aligned text table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append one row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ParameterError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """The table as aligned text."""
        headers = [str(c) for c in self.columns]
        body = [[format_cell(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in body))
            if body
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_series(series: SweepSeries, width: int = 40) -> str:
    """Render a sweep series with a crude inline bar chart.

    The text analogue of a paper figure: one line per point, with a bar
    proportional to y (scaled to the series maximum).
    """
    if not series.xs:
        return f"{series.name}: (empty)"
    top = max(abs(y) for y in series.ys) or 1.0
    lines = [f"{series.name}  ({series.x_label} vs {series.y_label})"]
    for x, y in zip(series.xs, series.ys):
        bar = "#" * max(0, int(round(width * abs(y) / top)))
        lines.append(f"  {format_cell(x):>10}  {format_cell(y):>12}  {bar}")
    return "\n".join(lines)
