"""Experiment drivers: one function per reproduced figure/analysis.

Each ``eN_*`` function regenerates one paper artifact (see DESIGN.md §3's
experiment index) and returns tables/series ready for printing by the
corresponding benchmark.  All simulations are seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import TESTBED_1991, HDTV_2_5_GBIT, HardwareProfile
from repro.core import admission as adm
from repro.core import buffering, continuity
from repro.core.continuity import Architecture
from repro.core.editing_bounds import copy_bound_dense, copy_bound_sparse
from repro.core.symbols import BlockModel, video_block_model
from repro.disk import (
    ConstrainedScatterAllocator,
    ContiguousAllocator,
    FreeMap,
    RandomAllocator,
    ScatterBounds,
    SimulatedDrive,
    StrandPlacer,
    build_array,
    build_drive,
)
from repro.errors import AdmissionRejected
from repro.fs import MultimediaStorageManager
from repro.media import DisplayDevice, frames_for_duration, generate_talk_spurts
from repro.media.audio import SilenceDetector
from repro.rope import Media, MultimediaRopeServer
from repro.rope.server import BlockFetch
from repro.service import (
    PlaybackSession,
    simulate_concurrent,
    simulate_pipelined,
    simulate_sequential,
    staged_k_schedule,
)
from repro.service.rounds import Admission, RoundRobinService, StreamState
from repro.sim.metrics import SweepSeries
from repro.analysis.report import Table
from repro.units import gigabits_per_second, kilobytes

__all__ = [
    "fetches_with_gap",
    "default_msm",
    "e1_architectures",
    "e2_k_vs_n",
    "e3_transition",
    "e4_allocation",
    "e5_buffering",
    "e6_mixed_media",
    "e7_hdtv",
    "e8_edit_copy",
    "e9_rope_ops",
    "e10_silence",
    "e11_symbols",
    "e12_prototype",
]


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def fetches_with_gap(
    drive: SimulatedDrive,
    count: int,
    gap: float,
    block_bits: float,
    duration: float,
    extra_cylinders: int = 0,
) -> List[BlockFetch]:
    """A synthetic placement whose inter-block positioning delay ≈ *gap*.

    Blocks are laid at a fixed cylinder stride chosen so that
    ``seek(stride) + average rotation`` is as close to *gap* as the seek
    curve allows without exceeding it; *extra_cylinders* nudges the stride
    up (used to step just past a continuity bound).  The head sweeps
    forward and reverses at the disk edge, preserving the stride.
    """
    rotation = drive.rotation.average_latency
    budget = max(0.0, gap - rotation)
    stride = drive.seek_model.max_distance_within(
        budget, drive.geometry.cylinders
    )
    stride = max(0, stride) + extra_cylinders
    geometry = drive.geometry
    spb = drive.sectors_per_block
    spc = geometry.sectors_per_cylinder

    def slot_at(cylinder: int) -> int:
        first = (cylinder * spc + spb - 1) // spb
        return min(first, drive.slots - 1)

    fetches: List[BlockFetch] = []
    cylinder = 0
    direction = 1
    for _ in range(count):
        fetches.append(
            BlockFetch(
                slot=slot_at(cylinder), bits=block_bits, duration=duration
            )
        )
        nxt = cylinder + direction * max(stride, 1)
        if not 0 <= nxt < geometry.cylinders:
            direction = -direction
            nxt = cylinder + direction * max(stride, 1)
            nxt = max(0, min(geometry.cylinders - 1, nxt))
        cylinder = nxt
    return fetches


def default_msm(
    profile: HardwareProfile = TESTBED_1991,
    drive: Optional[SimulatedDrive] = None,
) -> MultimediaStorageManager:
    """A storage manager on the standard testbed drive."""
    if drive is None:
        drive = build_drive()
    return MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )


# ---------------------------------------------------------------------------
# E1 — Figs. 1-3 / Eqs. (1)-(3): architecture feasibility boundaries
# ---------------------------------------------------------------------------

@dataclass
class E1Result:
    """Analytic bounds and simulated miss counts per architecture."""

    table: Table
    bounds: Dict[str, float]
    misses_inside: Dict[str, int]
    misses_outside: Dict[str, int]


def e1_architectures(
    profile: HardwareProfile = TESTBED_1991,
    granularity: int = 1,
    blocks: int = 150,
    concurrency: int = 2,
) -> E1Result:
    """Regenerate the §3.1 comparison: who tolerates how much scattering.

    For each architecture: the analytic maximum scattering (slack = 0
    point), then a simulation at 95 % of the bound (must measure zero
    misses — the analysis is *safe*), and one at the drive's widest
    physically producible gap (full-stroke seeks).  Sequential and
    pipelined retrieval miss sustainedly out there; the concurrent
    architecture may not, because the Eq.-(3) bound is conservative
    (batched reads tolerate up to p·T rather than (p−1)·T).

    Granularity defaults to 1 frame/block so the testbed drive's maximum
    access time actually exceeds the bounds; at larger granularities the
    bounds exceed anything this mechanism can produce, which is itself
    the §3 point that larger blocks relax the placement constraint.
    """
    block = video_block_model(profile.video, granularity)
    duration = block.playback_duration
    table = Table(
        title="E1: continuity bounds per retrieval architecture "
              "(Figs. 1-3, Eqs. 1-3)",
        columns=[
            "architecture", "analytic l_ds max (ms)",
            "sim misses @95% bound", "widest gap (ms)",
            "sim misses @widest gap",
        ],
    )
    bounds: Dict[str, float] = {}
    inside: Dict[str, int] = {}
    outside: Dict[str, int] = {}

    def simulate(
        architecture: Architecture, p: int, gap: float
    ):
        if architecture is Architecture.CONCURRENT:
            array = build_array(p)
            fetches = fetches_with_gap(
                array.member(0), blocks, gap, block.block_bits, duration
            )
            metrics, _ = simulate_concurrent(fetches, array)
            return metrics
        drive = build_drive()
        fetches = fetches_with_gap(
            drive, blocks, gap, block.block_bits, duration
        )
        if architecture is Architecture.SEQUENTIAL:
            metrics, _ = simulate_sequential(
                fetches, drive, DisplayDevice(profile.video_device)
            )
        else:
            metrics, _ = simulate_pipelined(fetches, drive)
        return metrics

    def run(name: str, architecture: Architecture, p: int = 1):
        reference = build_drive()
        params = reference.parameters()
        bound = continuity.max_scattering(
            architecture, block, params, profile.video_device, p
        )
        bounds[name] = bound
        metrics_in = simulate(architecture, p, bound * 0.95)
        widest = (
            reference.seek_model.seek_time(reference.geometry.cylinders - 1)
            + reference.rotation.average_latency
        )
        metrics_out = simulate(architecture, p, widest)
        inside[name] = metrics_in.misses
        outside[name] = metrics_out.misses
        table.add_row(
            name, bound * 1e3, metrics_in.misses, widest * 1e3,
            metrics_out.misses,
        )

    run("sequential", Architecture.SEQUENTIAL)
    run("pipelined", Architecture.PIPELINED)
    run(f"concurrent(p={concurrency})", Architecture.CONCURRENT, concurrency)
    return E1Result(
        table=table, bounds=bounds, misses_inside=inside,
        misses_outside=outside,
    )


# ---------------------------------------------------------------------------
# E2 — Fig. 4 / Eqs. (15)-(17): k vs n
# ---------------------------------------------------------------------------

@dataclass
class E2Result:
    """The Fig.-4 curve plus its capacity bound."""

    table: Table
    series_steady: SweepSeries
    series_transition: SweepSeries
    n_max: int


def e2_k_vs_n(
    profile: HardwareProfile = TESTBED_1991,
    granularity: int = 4,
) -> E2Result:
    """Regenerate Fig. 4: blocks-per-round k against request count n."""
    drive = build_drive()
    params = drive.parameters()
    block = video_block_model(profile.video, granularity)
    descriptor = adm.RequestDescriptor(
        block=block, scattering_avg=params.seek_avg
    )
    table = Table(
        title="E2: variation of k with n (Fig. 4)",
        columns=["n", "k steady (Eq.16)", "k transition (Eq.18)", "feasible"],
    )
    steady = SweepSeries("k(n) steady", "n requests", "k blocks/round")
    transition = SweepSeries("k(n) transition", "n requests", "k blocks/round")
    capacity = 0
    n = 1
    while True:
        service = adm.service_parameters([descriptor] * n, params)
        try:
            k16 = adm.k_steady(service)
            k18 = adm.k_transition(service)
        except AdmissionRejected:
            table.add_row(n, None, None, False)
            break
        capacity = adm.n_max(service)
        table.add_row(n, k16, k18, True)
        steady.add(n, k16)
        transition.add(n, k18)
        n += 1
        if n > capacity + 1:
            service = adm.service_parameters([descriptor] * n, params)
            try:
                adm.k_steady(service)
            except AdmissionRejected:
                table.add_row(n, None, None, False)
            break
    return E2Result(
        table=table, series_steady=steady, series_transition=transition,
        n_max=capacity,
    )


# ---------------------------------------------------------------------------
# E3 — §3.4: naive vs staged k transition
# ---------------------------------------------------------------------------

@dataclass
class E3Result:
    """Transition-continuity comparison."""

    table: Table
    naive_misses: int
    staged_misses: int


def _equal_streams(
    drive: SimulatedDrive,
    count: int,
    blocks: int,
    gap: float,
    block: BlockModel,
    capacity: int,
) -> List[StreamState]:
    streams = []
    for i in range(count):
        fetches = fetches_with_gap(
            drive, blocks, gap, block.block_bits, block.playback_duration
        )
        streams.append(
            StreamState(
                request_id=f"s{i}",
                fetches=fetches,
                buffer_capacity=capacity,
            )
        )
    return streams


def e3_transition(
    profile: HardwareProfile = TESTBED_1991,
    granularity: int = 4,
    blocks: int = 400,
) -> E3Result:
    """Admit request n+1 with a naive k jump vs the staged Eq.-(18) walk.

    The workload runs n = n_max − 1 streams at their steady k, then admits
    one more.  The naive schedule jumps straight to the new k in the
    admission round; the staged schedule raises k by one per round.  The
    paper's claim: the naive jump can glitch already-playing streams, the
    staged walk cannot.
    """
    block = video_block_model(profile.video, granularity)

    def build(n_before: int):
        drive = build_drive()
        params = drive.parameters()
        descriptor = adm.RequestDescriptor(
            block=block, scattering_avg=params.seek_avg
        )
        service_before = adm.service_parameters(
            [descriptor] * n_before, params
        )
        service_after = adm.service_parameters(
            [descriptor] * (n_before + 1), params
        )
        k_old = adm.k_transition(service_before)
        k_new = adm.k_transition(service_after)
        return drive, params, k_old, k_new

    probe_drive = build_drive()
    probe_params = probe_drive.parameters()
    descriptor = adm.RequestDescriptor(
        block=block, scattering_avg=probe_params.seek_avg
    )
    capacity_bound = adm.n_max(
        adm.service_parameters([descriptor], probe_params)
    )
    n_before = max(1, capacity_bound - 1)
    admission_round = 3

    def run(staged: bool) -> Tuple[int, int, int]:
        drive, params, k_old, k_new = build(n_before)
        gap = params.seek_avg
        streams = _equal_streams(
            drive, n_before, blocks, gap, block,
            capacity=2 * max(k_new, k_old),
        )
        newcomer = _equal_streams(
            drive, 1, blocks, gap, block, capacity=2 * max(k_new, k_old)
        )[0]
        newcomer.request_id = "newcomer"
        if staged:
            steps = [
                (admission_round + i, k)
                for i, k in enumerate(range(k_old + 1, k_new + 1))
            ]
            schedule = staged_k_schedule(k_old, steps)
            join_round = admission_round + max(0, k_new - k_old)
        else:
            schedule = staged_k_schedule(k_old, [(admission_round, k_new)])
            join_round = admission_round
        service = RoundRobinService(drive, schedule)
        metrics = service.run(
            streams,
            [Admission(round_number=join_round, stream=newcomer)],
        )
        existing = sum(
            m.misses for rid, m in metrics.items() if rid != "newcomer"
        )
        return existing, k_old, k_new

    naive_misses, k_old, k_new = run(staged=False)
    staged_misses, _, _ = run(staged=True)
    table = Table(
        title="E3: transition continuity — naive k jump vs staged Eq.-(18) walk",
        columns=["strategy", "k_old", "k_new", "existing-stream misses"],
    )
    table.add_row("naive jump", k_old, k_new, naive_misses)
    table.add_row("staged (+1/round)", k_old, k_new, staged_misses)
    return E3Result(
        table=table, naive_misses=naive_misses, staged_misses=staged_misses
    )


# ---------------------------------------------------------------------------
# E4 — §3: allocation-discipline comparison
# ---------------------------------------------------------------------------

@dataclass
class E4Result:
    """Allocation-policy comparison rows."""

    table: Table
    read_ahead_needed: Dict[str, int]
    max_gaps: Dict[str, float]


def e4_allocation(
    profile: HardwareProfile = TESTBED_1991,
    blocks: int = 300,
    seed: int = 11,
) -> E4Result:
    """Constrained vs random vs contiguous allocation at equal load.

    For each discipline: place one strand, replay it pipelined, report
    the measured gap spread, misses with zero read-ahead, and the minimum
    anti-jitter read-ahead that makes playback continuous (§3's argument
    that unconstrained placement buys continuity only with buffering).

    The stream runs at 45 fps with granularity 1, leaving the drive
    little slack per block: the *average* random gap then exceeds the
    continuity budget, so unconstrained placement misses persistently
    while constrained placement (whose every gap honours the bound)
    plays clean — the sharpest form of the paper's argument.
    """
    from repro.core.symbols import VideoStream

    stream = VideoStream(frame_rate=45.0, frame_size=profile.video.frame_size)
    block = video_block_model(stream, 1)
    table = Table(
        title="E4: allocation disciplines (constrained vs random vs contiguous)",
        columns=[
            "allocator", "max gap (ms)", "mean gap (ms)",
            "misses (no read-ahead)", "min read-ahead for continuity",
        ],
    )
    read_ahead_needed: Dict[str, int] = {}
    max_gaps: Dict[str, float] = {}

    def minimum_read_ahead(make) -> Tuple[int, int, float, float]:
        """(misses@0, min read-ahead, max gap, mean gap)."""
        drive, fetches, placement = make()
        metrics0, _ = simulate_pipelined(fetches, drive, read_ahead=0)
        misses0 = metrics0.misses
        needed = 0
        if misses0:
            low, high = 1, len(fetches) - 1
            while low < high:
                mid = (low + high) // 2
                drive, fetches, _ = make()
                metrics, _ = simulate_pipelined(
                    fetches, drive, read_ahead=mid
                )
                if metrics.continuous:
                    high = mid
                else:
                    low = mid + 1
            needed = low
        return misses0, needed, placement.max_gap, placement.mean_gap

    def build(name: str):
        def make():
            drive = build_drive()
            freemap = FreeMap(drive.slots)
            params = drive.parameters()
            upper = continuity.max_scattering(
                Architecture.PIPELINED, block, params, profile.video_device
            )
            if name == "constrained":
                allocator = ConstrainedScatterAllocator(
                    drive, freemap, ScatterBounds(0.0, upper)
                )
            elif name == "random":
                allocator = RandomAllocator(
                    drive, freemap, random.Random(seed)
                )
            else:
                allocator = ContiguousAllocator(drive, freemap)
            placement = StrandPlacer(drive, allocator).place(blocks)
            fetches = [
                BlockFetch(
                    slot=slot, bits=block.block_bits,
                    duration=block.playback_duration,
                )
                for slot in placement.slots
            ]
            drive.park(0)
            return drive, fetches, placement
        return make

    for name in ("constrained", "random", "contiguous"):
        misses0, needed, max_gap, mean_gap = minimum_read_ahead(build(name))
        table.add_row(name, max_gap * 1e3, mean_gap * 1e3, misses0, needed)
        read_ahead_needed[name] = needed
        max_gaps[name] = max_gap
    return E4Result(
        table=table, read_ahead_needed=read_ahead_needed, max_gaps=max_gaps
    )


# ---------------------------------------------------------------------------
# E5 — §3.3.2: buffering and read-ahead requirements
# ---------------------------------------------------------------------------

@dataclass
class E5Result:
    """Buffer-requirement table plus slow-motion accumulation check."""

    table: Table
    accumulation_rate: float
    switch_read_ahead: int


def e5_buffering(
    profile: HardwareProfile = TESTBED_1991,
    granularity: int = 4,
    concurrency: int = 4,
) -> E5Result:
    """Regenerate the §3.3.2 buffering table and the h bound."""
    drive = build_drive()
    params = drive.parameters()
    block = video_block_model(profile.video, granularity)
    table = Table(
        title="E5: buffer and read-ahead requirements (§3.3.2)",
        columns=["architecture", "k", "read-ahead", "buffers"],
    )
    for k in (1, 2, 4, 8):
        for name, architecture, p in (
            ("sequential", Architecture.SEQUENTIAL, 1),
            ("pipelined", Architecture.PIPELINED, 1),
            (f"concurrent(p={concurrency})", Architecture.CONCURRENT,
             concurrency),
        ):
            table.add_row(
                name, k,
                buffering.read_ahead_required(architecture, k, p),
                buffering.buffers_for_average_continuity(architecture, k, p),
            )
    h = buffering.task_switch_read_ahead(block, params)
    accumulation = buffering.slow_motion_accumulation_rate(
        block, params, scattering=params.seek_avg, slowdown=2.0
    )
    return E5Result(
        table=table, accumulation_rate=accumulation, switch_read_ahead=h
    )


# ---------------------------------------------------------------------------
# E6 — §3.3.3 / Eqs. (4)-(6): homogeneous vs heterogeneous blocks
# ---------------------------------------------------------------------------

@dataclass
class E6Result:
    """Mixed-media storage comparison."""

    table: Table
    homogeneous_bound: float
    heterogeneous_bound: float


def e6_mixed_media(
    profile: HardwareProfile = TESTBED_1991,
) -> E6Result:
    """Compare the two §3.3.3 schemes for storing audio + video."""
    drive = build_drive()
    params = drive.parameters()
    msm = default_msm(profile, drive)
    video_block = video_block_model(
        profile.video, msm.policies.video.granularity
    )
    audio_block = BlockModel(
        unit_rate=profile.audio.sample_rate,
        unit_size=profile.audio.sample_size,
        granularity=msm.policies.audio.granularity,
    )
    homogeneous = continuity.max_scattering_mixed(
        video_block, audio_block, params, heterogeneous=False
    )
    heterogeneous = continuity.max_scattering_mixed(
        video_block, audio_block, params, heterogeneous=True
    )
    table = Table(
        title="E6: mixed audio+video storage (§3.3.3, Eqs. 4-6)",
        columns=["scheme", "l_ds max (ms)", "implicit sync", "per-medium optimization"],
    )
    table.add_row("homogeneous blocks", homogeneous * 1e3, False, True)
    table.add_row("heterogeneous blocks", heterogeneous * 1e3, True, False)
    return E6Result(
        table=table,
        homogeneous_bound=homogeneous,
        heterogeneous_bound=heterogeneous,
    )


# ---------------------------------------------------------------------------
# E7 — §3's HDTV worked example
# ---------------------------------------------------------------------------

@dataclass
class E7Result:
    """The HDTV infeasibility numbers."""

    table: Table
    array_throughput: float
    hdtv_demand: float

    @property
    def shortfall(self) -> float:
        """How many times short the array falls."""
        return self.hdtv_demand / self.array_throughput


def e7_hdtv() -> E7Result:
    """Regenerate: 4 KB blocks, 100 heads, ~10 ms seek ⇒ ~0.32 Gbit/s.

    "This is inadequate for the retrieval of even one HDTV-quality video
    strand which may require data transfer rates of up to 2.5 Gigabit/s."
    """
    profile = HDTV_2_5_GBIT
    block_bits = kilobytes(4)
    throughput = continuity.effective_throughput(
        block_bits, profile.disk, profile.disk.seek_max
    )
    demand = gigabits_per_second(2.5)
    table = Table(
        title="E7: HDTV vs projected disk array (§3 worked example)",
        columns=["quantity", "value (Gbit/s)"],
    )
    table.add_row("array throughput, unconstrained blocks", throughput / 1e9)
    table.add_row("paper's figure", 0.32)
    table.add_row("HDTV demand", demand / 1e9)
    table.add_row("shortfall factor", demand / throughput)
    # And the fix the paper proposes: constrained allocation removes the
    # per-block seek, leaving pure streaming.
    streaming = profile.disk.heads * profile.disk.transfer_rate
    table.add_row("same array, zero-gap streaming", streaming / 1e9)
    return E7Result(
        table=table, array_throughput=throughput, hdtv_demand=demand
    )


# ---------------------------------------------------------------------------
# E8 — §4.2 / Eqs. (19)-(20): editing copy bounds
# ---------------------------------------------------------------------------

@dataclass
class E8Result:
    """Seam repair measurements against the paper bounds."""

    table: Table
    copies: Dict[str, int]
    bounds: Dict[str, Tuple[int, int]]


def e8_edit_copy(
    profile: HardwareProfile = TESTBED_1991,
    clip_seconds: float = 8.0,
    dense_target: float = 0.80,
) -> E8Result:
    """Measure seam-repair copying on sparse and dense disks.

    Two clips are stored at opposite ends of the disk (placement hints at
    the first and last slots) and CONCATEd, so the seam spans nearly the
    full stroke and exceeds the scattering bound.  The video device is
    narrowed to a 2-frame buffer (granularity 1), putting the continuity
    bound below the drive's full-stroke access time — otherwise the seam
    could never violate.  The repairer's measured copy count must respect
    Eqs. (19)/(20), and the repaired rope's seams must all be continuous.
    """
    from repro.core.symbols import DisplayDeviceParameters

    results: Dict[str, int] = {}
    bounds: Dict[str, Tuple[int, int]] = {}
    table = Table(
        title="E8: scattering maintenance while editing (§4.2, Eqs. 19-20)",
        columns=[
            "disk state", "occupancy", "seam gap before (ms)",
            "seam bound (ms)", "blocks copied", "sparse bound",
            "dense bound", "seams continuous after",
        ],
    )
    narrow_device = DisplayDeviceParameters(
        display_rate=profile.video_device.display_rate, buffer_frames=2
    )
    for label, densify in (("sparse", False), ("dense", True)):
        drive = build_drive()
        msm = MultimediaStorageManager(
            drive, profile.video, profile.audio, narrow_device,
            profile.audio_device,
        )
        mrs = MultimediaRopeServer(msm, auto_repair=False)
        frames_a = frames_for_duration(
            profile.video, clip_seconds, source="early"
        )
        frames_b = frames_for_duration(
            profile.video, clip_seconds, source="late"
        )
        strand_a = msm.store_video_strand(frames_a, hint=0)
        if densify:
            # Age the disk to the dense regime with *distributed* leftover
            # holes (every fifth slot), the realistic shape of a full disk
            # after allocate/release churn.
            deficit = int(
                msm.freemap.slots * dense_target
            ) - msm.freemap.used_count
            for slot in range(msm.freemap.slots):
                if deficit <= 0:
                    break
                if slot % 5 == 2 or not msm.freemap.is_free(slot):
                    continue
                msm.freemap.allocate(slot)
                deficit -= 1
        strand_b = msm.store_video_strand(
            frames_b, hint=drive.slots - 1
        )
        rope_a = mrs.adopt_strands("editor", video_strand_id=strand_a.strand_id)
        rope_b = mrs.adopt_strands("editor", video_strand_id=strand_b.strand_id)
        merged = mrs.concate("editor", rope_a, rope_b)
        repairer = mrs.repairer
        checks = repairer.check_segments(merged.segments)
        gap_before = max((c.gap for c in checks), default=0.0)
        segments, report = repairer.repair_segments(merged.segments)
        after = repairer.check_segments(segments)
        continuous = all(not c.violates for c in after)
        lower = msm.policies.video.scattering_lower
        sparse_bound = copy_bound_sparse(msm.disk_params.seek_max, lower)
        dense_bound = copy_bound_dense(msm.disk_params.seek_max, lower)
        table.add_row(
            label, msm.occupancy, gap_before * 1e3,
            msm.policies.video.scattering_upper * 1e3,
            report.blocks_copied, sparse_bound, dense_bound, continuous,
        )
        results[label] = report.blocks_copied
        bounds[label] = (sparse_bound, dense_bound)
    return E8Result(table=table, copies=results, bounds=bounds)


# ---------------------------------------------------------------------------
# E9 — §4.1: rope-operation cost and sharing/GC behaviour
# ---------------------------------------------------------------------------

@dataclass
class E9Result:
    """Editing-cost and GC rows."""

    table: Table
    media_blocks_copied: Dict[str, int]
    gc_behaviour: Table


def e9_rope_ops(
    profile: HardwareProfile = TESTBED_1991,
    clip_seconds: float = 30.0,
) -> E9Result:
    """Show that editing is pointer manipulation: zero media copies.

    Each §4.1 operation runs on a freshly recorded pair of ropes (repair
    disabled so pure operation cost is visible); the table reports the
    interval counts and the number of media blocks copied (always 0).
    The GC table demonstrates interval sharing keeping strands alive.
    """
    table = Table(
        title="E9: rope operation cost (§4.1) — pointer manipulation only",
        columns=[
            "operation", "intervals before", "intervals after",
            "media blocks copied", "duration after (s)",
        ],
    )
    copied: Dict[str, int] = {}

    def fresh():
        drive = build_drive()
        msm = default_msm(profile, drive)
        mrs = MultimediaRopeServer(msm, auto_repair=False)
        rng = random.Random(5)
        q1, r1 = mrs.record(
            "u",
            frames=frames_for_duration(
                profile.video, clip_seconds, source="a"
            ),
            chunks=generate_talk_spurts(
                profile.audio, clip_seconds, 0.3, rng
            ),
        )
        mrs.stop(q1)
        q2, r2 = mrs.record(
            "u",
            frames=frames_for_duration(
                profile.video, clip_seconds / 2, source="b"
            ),
            chunks=generate_talk_spurts(
                profile.audio, clip_seconds / 2, 0.3, rng
            ),
        )
        mrs.stop(q2)
        return msm, mrs, r1, r2

    def blocks_stored(msm) -> int:
        return sum(
            msm.get_strand(s).stored_block_count for s in msm.strand_ids()
        )

    operations = [
        ("INSERT", lambda mrs, r1, r2: mrs.insert(
            "u", r1, clip_seconds / 3, Media.AUDIO_VISUAL, r2, 0.0,
            clip_seconds / 2,
        )),
        ("REPLACE", lambda mrs, r1, r2: mrs.replace(
            "u", r1, Media.AUDIO_VISUAL, 5.0, clip_seconds / 2, r2, 0.0,
            clip_seconds / 2,
        )),
        ("SUBSTRING", lambda mrs, r1, r2: mrs.substring(
            "u", r1, Media.AUDIO_VISUAL, 5.0, 10.0
        )),
        ("CONCATE", lambda mrs, r1, r2: mrs.concate("u", r1, r2)),
        ("DELETE", lambda mrs, r1, r2: mrs.delete(
            "u", r1, Media.AUDIO_VISUAL, 5.0, 10.0
        )),
    ]
    for name, operation in operations:
        msm, mrs, r1, r2 = fresh()
        before_blocks = blocks_stored(msm)
        before_intervals = mrs.get_rope(r1).interval_count()
        result = operation(mrs, r1, r2)
        after_blocks = blocks_stored(msm)
        copied[name] = after_blocks - before_blocks
        table.add_row(
            name, before_intervals, result.interval_count(),
            after_blocks - before_blocks, result.duration,
        )

    # Sharing & GC: a video-only SUBSTRING shares just the video strand;
    # deleting the base rope reclaims the unshared audio strand while the
    # shared video strand survives until the substring goes too.
    msm, mrs, r1, r2 = fresh()
    mrs.delete_rope("u", r2)
    sub = mrs.substring("u", r1, Media.VIDEO, 0.0, 10.0)
    gc_table = Table(
        title="E9b: interval sharing and garbage collection",
        columns=["step", "strands alive", "collected"],
    )
    gc_table.add_row("after video-only substring", len(msm.strand_ids()), 0)
    reclaimed = mrs.delete_rope("u", r1)
    gc_table.add_row(
        "base rope deleted (substring alive)",
        len(msm.strand_ids()), len(reclaimed),
    )
    reclaimed = mrs.delete_rope("u", sub.rope_id)
    gc_table.add_row(
        "substring deleted", len(msm.strand_ids()), len(reclaimed)
    )
    return E9Result(
        table=table, media_blocks_copied=copied, gc_behaviour=gc_table
    )


# ---------------------------------------------------------------------------
# E10 — §4: silence elimination
# ---------------------------------------------------------------------------

@dataclass
class E10Result:
    """Silence-elimination sweep."""

    table: Table
    series: SweepSeries


def e10_silence(
    profile: HardwareProfile = TESTBED_1991,
    duration: float = 60.0,
    seed: int = 23,
) -> E10Result:
    """Sweep target silence ratios; storage shrinks, duration does not."""
    table = Table(
        title="E10: silence elimination (§4) — storage vs silence ratio",
        columns=[
            "target silence", "blocks stored", "blocks silent",
            "space saved", "duration preserved",
        ],
    )
    series = SweepSeries(
        "silence saving", "target silence ratio", "fraction of bits saved"
    )
    for ratio in (0.0, 0.2, 0.4, 0.6, 0.8):
        drive = build_drive()
        msm = default_msm(profile, drive)
        rng = random.Random(seed)
        chunks = generate_talk_spurts(profile.audio, duration, ratio, rng)
        strand = msm.store_audio_strand(chunks, SilenceDetector())
        baseline_bits = chunks[-1].end_sample * profile.audio.sample_size
        saved = 1.0 - strand.stored_bits / baseline_bits
        preserved = abs(strand.duration - duration) < 1.0
        table.add_row(
            ratio, strand.stored_block_count,
            strand.block_count - strand.stored_block_count,
            saved, preserved,
        )
        series.add(ratio, saved)
    return E10Result(table=table, series=series)


# ---------------------------------------------------------------------------
# E11 — Table 1 / §2: the symbol model across profiles
# ---------------------------------------------------------------------------

@dataclass
class E11Result:
    """Derived Table-1 quantities per hardware profile."""

    table: Table


def e11_symbols(granularity: int = 4) -> E11Result:
    """Regenerate a Table-1-style parameter table for each profile."""
    from repro.config import PROFILES
    table = Table(
        title="E11: Table-1 symbol model across hardware profiles",
        columns=[
            "profile", "video rate (fps)", "frame (Kbit)",
            "block playback (ms)", "block read @avg seek (ms)",
            "block display (ms)", "pipelined feasible",
        ],
    )
    for name in sorted(PROFILES):
        profile = PROFILES[name]
        block = video_block_model(profile.video, granularity)
        read = block.read_time(profile.disk, profile.disk.seek_avg)
        display = block.display_time(profile.video_device)
        feasible = continuity.is_continuous(
            Architecture.PIPELINED, block, profile.disk,
            profile.video_device, profile.disk.seek_avg,
        )
        table.add_row(
            name, profile.video.frame_rate,
            profile.video.frame_size / 1e3,
            block.playback_duration * 1e3, read * 1e3, display * 1e3,
            feasible,
        )
    return E11Result(table=table)


# ---------------------------------------------------------------------------
# E12 — §5: end-to-end prototype session
# ---------------------------------------------------------------------------

@dataclass
class E12Result:
    """End-to-end session outcome."""

    table: Table
    all_continuous: bool
    rejected_at: int
    startup_series: SweepSeries


def e12_prototype(
    profile: HardwareProfile = TESTBED_1991,
    clip_seconds: float = 12.0,
) -> E12Result:
    """Record, edit, and play back concurrently at the admission limit.

    Mirrors the §5 prototype's use: several clips are recorded, one rope
    is edited (INSERT), then playback requests are admitted until the
    controller refuses; the admitted set is serviced in rounds and must
    play continuously.  Startup latency is reported per admitted request
    ("larger the value of k, larger is the startup time").
    """
    drive = build_drive()
    msm = default_msm(profile, drive)
    mrs = MultimediaRopeServer(msm)
    rng = random.Random(17)
    rope_ids = []
    for i in range(3):
        request_id, rope_id = mrs.record(
            "user",
            frames=frames_for_duration(
                profile.video, clip_seconds, source=f"clip{i}"
            ),
        )
        mrs.stop(request_id)
        rope_ids.append(rope_id)
    mrs.insert(
        "user", rope_ids[0], clip_seconds / 2, Media.AUDIO_VISUAL,
        rope_ids[1], 0.0, clip_seconds / 2,
    )
    admitted: List[str] = []
    rejected_at = 0
    for attempt in range(16):
        try:
            request_id = mrs.play(
                "user", rope_ids[attempt % len(rope_ids)],
                media=Media.VIDEO,
            )
        except AdmissionRejected:
            rejected_at = len(admitted) + 1
            break
        admitted.append(request_id)
    session = PlaybackSession(mrs)
    result = session.run(admitted)
    table = Table(
        title="E12: end-to-end prototype session (§5)",
        columns=["request", "blocks", "misses", "startup latency (s)"],
    )
    startup = SweepSeries(
        "startup latency", "request #", "startup latency (s)"
    )
    for number, request_id in enumerate(admitted, start=1):
        metrics = result.metrics[request_id]
        table.add_row(
            request_id, metrics.blocks_delivered, metrics.misses,
            metrics.startup_latency,
        )
        startup.add(number, metrics.startup_latency)
    return E12Result(
        table=table,
        all_continuous=result.all_continuous,
        rejected_at=rejected_at,
        startup_series=startup,
    )
