"""Experiment drivers beyond the paper's published evaluation.

The §6.2 future-work directions and several claims the paper makes in
prose but never measures, each implemented and driven end to end:

* **E13** — variable-rate compression bounds
  (:mod:`repro.core.variable_rate`);
* **E14** — seek-minimizing request ordering vs the pessimistic
  round-robin capacity estimate (:mod:`repro.service.scan_order`);
* **E15** — storage reorganization on a densely utilized disk
  (:mod:`repro.fs.reorganize`);
* **E16** — variable-speed playback with disk task switching
  (:mod:`repro.service.variable_speed`);
* **E17** — Fig. 3 realized through striped storage on multi-head
  arrays (:mod:`repro.fs.striped`);
* **E18** — §3.3.1 strict-vs-average continuity under randomized
  rotational latency (anti-jitter read-ahead);
* **E19** — the §3 unified media+text server
  (:mod:`repro.service.besteffort`);
* **E20** — the general Eq.-(11) per-request-k admission
  (:func:`repro.core.admission.solve_heterogeneous_k`);
* **E21** — concurrent storage + retrieval in one round loop
  (:mod:`repro.service.mixed_rounds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.experiments import fetches_with_gap
from repro.analysis.report import Table
from repro.config import TESTBED_1991, HardwareProfile
from repro.core import admission as adm
from repro.core.symbols import video_block_model
from repro.core.variable_rate import group_read_ahead, vbr_gain
from repro.disk import ScatterBounds, build_drive
from repro.fs import MultimediaStorageManager
from repro.fs.reorganize import Reorganizer
from repro.media import frames_for_duration
from repro.media.codec import DifferencingCodec
from repro.service.rounds import RoundRobinService, StreamState
from repro.service.scan_order import (
    ScanOrderService,
    measured_capacity,
    probe_round_times,
)
from repro.service.variable_speed import simulate_variable_speed

__all__ = [
    "e13_variable_rate",
    "e14_scan_ordering",
    "e15_reorganization",
    "e16_variable_speed",
    "e17_striping",
    "e18_antijitter",
    "e19_unified_server",
    "e20_heterogeneous_k",
    "e21_record_and_play",
]


# ---------------------------------------------------------------------------
# E13 — §6.2: variable-rate compression bounds
# ---------------------------------------------------------------------------

@dataclass
class E13Result:
    """CBR vs VBR scattering bounds per granularity."""

    table: Table
    gains: Dict[int, float]


def e13_variable_rate(
    profile: HardwareProfile = TESTBED_1991,
) -> E13Result:
    """Quantify §6.2: differencing compression widens the bounds."""
    drive = build_drive()
    params = drive.parameters()
    codec = DifferencingCodec(key_ratio=2.0, diff_ratio=20.0, group_size=10)
    table = Table(
        title="E13: variable-rate compression bounds (§6.2 extension)",
        columns=[
            "granularity", "CBR bound (ms)", "VBR strict (ms)",
            "VBR averaged (ms)", "gain", "read-ahead (blocks)",
        ],
    )
    gains: Dict[int, float] = {}
    for granularity in (1, 2, 4):
        comparison = vbr_gain(profile.video, codec, granularity, params)
        table.add_row(
            granularity,
            comparison.cbr_bound * 1e3,
            comparison.vbr_strict_bound * 1e3,
            comparison.vbr_average_bound * 1e3,
            comparison.gain,
            group_read_ahead(comparison.profile),
        )
        gains[granularity] = comparison.gain
    return E13Result(table=table, gains=gains)


# ---------------------------------------------------------------------------
# E14 — §6.2: seek-minimizing service order
# ---------------------------------------------------------------------------

@dataclass
class E14Result:
    """Round-time and capacity comparison: round-robin vs SCAN order."""

    table: Table
    rr_mean_round: float
    scan_mean_round: float
    analytic_n_max: int
    measured_n_max: int


def e14_scan_ordering(
    profile: HardwareProfile = TESTBED_1991,
    n: int = 3,
    k: int = 12,
    blocks: int = 120,
) -> E14Result:
    """Service n regional streams under both orderings (§6.2).

    Streams live in different disk regions (as real strands do), and the
    round-robin arrival order is adversarial (low, high, mid, ...), so
    FIFO rotation pays long seeks every switch while SCAN sweeps once per
    round.  The measured per-stream cost then supports a capacity
    estimate above Eq. (17)'s pessimistic one.
    """
    block = video_block_model(profile.video, 1)

    def regional_streams(drive) -> List[StreamState]:
        regions = list(range(n))
        # Adversarial arrival order: alternate far ends.
        order = sorted(regions, key=lambda r: (r % 2, r))
        order = [order[i // 2] if i % 2 == 0 else order[-(i // 2 + 1)]
                 for i in range(len(order))]
        from repro.rope.server import BlockFetch

        streams = []
        for i, region in enumerate(order[:n]):
            base_slot = region * drive.slots // n
            # Consecutive slots: the compact placement a constrained
            # allocator produces inside one strand's region.
            fetches = [
                BlockFetch(
                    slot=min(base_slot + j, drive.slots - 1),
                    bits=block.block_bits,
                    duration=block.playback_duration,
                )
                for j in range(blocks)
            ]
            streams.append(
                StreamState(
                    request_id=f"s{i}", fetches=fetches,
                    buffer_capacity=2 * k,
                )
            )
        return streams

    drive_rr = build_drive()
    rr_probe = probe_round_times(
        RoundRobinService(drive_rr, lambda r, m: k),
        regional_streams(drive_rr),
    )
    drive_scan = build_drive()
    scan_probe = probe_round_times(
        ScanOrderService(drive_scan, lambda r, m: k),
        regional_streams(drive_scan),
    )
    params = drive_rr.parameters()
    descriptor = adm.RequestDescriptor(
        block=block, scattering_avg=params.seek_avg
    )
    analytic = adm.n_max(adm.service_parameters([descriptor], params))
    measured = measured_capacity(
        block.playback_duration, k, scan_probe.worst, n
    )
    table = Table(
        title="E14: request-service ordering (§6.2 extension)",
        columns=[
            "discipline", "mean round (ms)", "worst round (ms)",
            "capacity estimate",
        ],
    )
    table.add_row(
        "round-robin (paper)", rr_probe.mean * 1e3, rr_probe.worst * 1e3,
        analytic,
    )
    table.add_row(
        "SCAN-ordered", scan_probe.mean * 1e3, scan_probe.worst * 1e3,
        measured,
    )
    return E14Result(
        table=table,
        rr_mean_round=rr_probe.mean,
        scan_mean_round=scan_probe.mean,
        analytic_n_max=analytic,
        measured_n_max=measured,
    )


# ---------------------------------------------------------------------------
# E15 — §6.2: storage reorganization
# ---------------------------------------------------------------------------

@dataclass
class E15Result:
    """Reorganization outcome on a fragmented, dense disk."""

    table: Table
    feasible_before: bool
    feasible_after: bool
    blocks_moved: int


def e15_reorganization(
    profile: HardwareProfile = TESTBED_1991,
) -> E15Result:
    """Fill and fragment the disk until placement fails, then reorganize.

    Strands are placed with a *minimum* spacing (a real §4.2 copy budget)
    and interleaved deletions fragment the free space so that a new
    strand's scattering window cannot be satisfied; reorganization
    migrates the survivors compactly and the placement succeeds.
    """
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive, profile.video, profile.audio, profile.video_device,
        profile.audio_device,
    )
    # Fill most of the disk with short strands (each packs ~60 adjacent
    # slots under the default policy)...
    strands = []
    clip = frames_for_duration(profile.video, 8.0, source="filler")
    while msm.occupancy < 0.72:
        strands.append(msm.store_video_strand(clip))
    # ... then delete every second one: free space is plentiful (~40 %)
    # but shredded into ~60-slot runs separated by live strands.
    for victim in strands[::2]:
        msm.delete_strand(victim.strand_id)
    # The demanding placement: a long strand with a *tight* scattering
    # upper bound (hops of at most ~3 cylinders).  No fragmented free run
    # is long enough, so placement fails until the survivors are
    # migrated into one compact region.
    rotation = drive.rotation.average_latency
    tight = ScatterBounds(
        0.0, rotation + drive.seek_model.seek_time(3) + 1e-6
    )
    reorganizer = Reorganizer(msm)
    target_blocks = 160
    feasible_before = reorganizer.placement_feasible(target_blocks, tight)
    report = reorganizer.make_room(target_blocks, tight)
    feasible_after = report.success
    table = Table(
        title="E15: storage reorganization on a dense disk (§6.2 extension)",
        columns=["quantity", "value"],
    )
    table.add_row("occupancy", msm.occupancy)
    table.add_row("placement feasible before", feasible_before)
    table.add_row("strands migrated", report.strands_migrated)
    table.add_row("blocks moved", report.blocks_moved)
    table.add_row("placement feasible after", feasible_after)
    return E15Result(
        table=table,
        feasible_before=feasible_before,
        feasible_after=feasible_after,
        blocks_moved=report.blocks_moved,
    )


# ---------------------------------------------------------------------------
# E16 — §3.3.2: variable-speed playback behaviours
# ---------------------------------------------------------------------------

@dataclass
class E16Result:
    """Fast-forward / slow-motion behaviour table."""

    table: Table
    rows: Dict[str, object]


def e16_variable_speed(
    profile: HardwareProfile = TESTBED_1991,
    blocks: int = 120,
) -> E16Result:
    """Drive the §3.3.2 variable-speed claims end to end."""
    block = video_block_model(profile.video, 4)
    table = Table(
        title="E16: variable-speed playback (§3.3.2)",
        columns=[
            "mode", "blocks fetched", "misses", "buffer high-water",
            "task switches", "disk idle (s)",
        ],
    )
    rows: Dict[str, object] = {}

    def run(label: str, speed: float, skipping: bool, capacity: int):
        drive = build_drive()
        fetches = fetches_with_gap(
            drive, blocks, drive.parameters().seek_avg,
            block.block_bits, block.playback_duration,
        )
        result = simulate_variable_speed(
            fetches, drive, speed=speed, skipping=skipping,
            buffer_capacity=capacity,
        )
        table.add_row(
            label, result.metrics.blocks_delivered, result.metrics.misses,
            result.buffer_high_water, result.task_switches,
            result.switch_idle_time,
        )
        rows[label] = result
        return result

    run("normal (1x)", 1.0, False, 8)
    run("fast-forward 2x, skipping", 2.0, True, 8)
    run("fast-forward 2x, no skip", 2.0, False, 16)
    run("slow motion 0.5x", 0.5, False, 8)
    return E16Result(table=table, rows=rows)


# ---------------------------------------------------------------------------
# E17 — Fig. 3 end to end: striped storage on a multi-head array
# ---------------------------------------------------------------------------

@dataclass
class E17Result:
    """Striped-storage outcome per head count."""

    table: Table
    misses_by_heads: Dict[int, int]
    bounds_by_heads: Dict[int, float]


def e17_striping(
    profile: HardwareProfile = TESTBED_1991,
    frame_rate: float = 45.0,
    seconds: float = 5.0,
) -> E17Result:
    """Store and play a demanding stream at increasing stripe widths.

    The stream (45 fps, granularity 1) leaves a single testbed drive no
    slack — its pipelined placement works but an unconstrained one does
    not, and higher rates would be outright infeasible.  Striping over p
    heads multiplies the per-head budget by (p−1); the experiment stores
    the same stream through :class:`StripedStorageManager` at p = 2, 4, 8
    and plays it back concurrently, reporting the per-member scattering
    bound and the measured misses (all zero — Fig. 3 realized through the
    storage manager, not synthetic placements).
    """
    from repro.core.symbols import VideoStream
    from repro.fs.striped import StripedStorageManager
    from repro.service import simulate_concurrent

    stream = VideoStream(
        frame_rate=frame_rate, frame_size=profile.video.frame_size
    )
    frames = frames_for_duration(stream, seconds, source="stripe")
    table = Table(
        title="E17: striped storage on multi-head arrays (Fig. 3 end to end)",
        columns=[
            "heads p", "per-member l_ds bound (ms)", "blocks",
            "misses", "continuous",
        ],
    )
    misses: Dict[int, int] = {}
    bounds: Dict[int, float] = {}
    from repro.disk import build_array

    for heads in (2, 4, 8):
        array = build_array(heads=heads)
        manager = StripedStorageManager(
            array, stream, profile.video_device, granularity=1
        )
        strand = manager.store_video_strand(frames)
        metrics, _ = simulate_concurrent(
            manager.playback_fetches(strand), array
        )
        table.add_row(
            heads, manager.scattering_upper * 1e3, strand.block_count,
            metrics.misses, metrics.continuous,
        )
        misses[heads] = metrics.misses
        bounds[heads] = manager.scattering_upper
    return E17Result(
        table=table, misses_by_heads=misses, bounds_by_heads=bounds
    )


# ---------------------------------------------------------------------------
# E18 — §3.3.1: strict vs average continuity under timing jitter
# ---------------------------------------------------------------------------

@dataclass
class E18Result:
    """Anti-jitter read-ahead outcome under randomized rotation."""

    table: Table
    misses_by_readahead: Dict[int, int]


def e18_antijitter(
    profile: HardwareProfile = TESTBED_1991,
    blocks: int = 300,
    seed: int = 31,
) -> E18Result:
    """Demonstrate §3.3.1: jitter breaks strict continuity; read-ahead
    restores average continuity.

    The placement sits exactly at the pipelined continuity bound — safe
    under *deterministic* (expected) rotational latency, but "difficult
    to achieve in the presence of scheduling and seek time variations":
    with randomized rotation, blocks landing past the expectation miss.
    "By introducing anti-jitter delay at the beginning of each request,
    we can relax the continuity requirements so as to satisfy it on an
    average" — a k-block read-ahead absorbs the variation entirely.
    """
    import random as _random

    from repro.disk import build_drive as _build
    from repro.service import simulate_pipelined

    block = video_block_model(profile.video, 1)
    table = Table(
        title="E18: anti-jitter read-ahead under randomized rotation "
              "(§3.3.1)",
        columns=[
            "read-ahead (blocks)", "misses", "miss ratio",
            "startup latency (ms)",
        ],
    )
    misses: Dict[int, int] = {}

    def run(read_ahead: int):
        rng = _random.Random(seed)
        drive = _build(randomized_rotation=True, rng=rng)
        params = drive.parameters()
        from repro.core import continuity as _continuity

        bound = _continuity.max_scattering(
            _continuity.Architecture.PIPELINED, block, params,
            profile.video_device,
        )
        fetches = fetches_with_gap(
            drive, blocks, bound, block.block_bits,
            block.playback_duration,
        )
        metrics, _ = simulate_pipelined(
            fetches, drive, read_ahead=read_ahead
        )
        table.add_row(
            read_ahead, metrics.misses, metrics.miss_ratio,
            metrics.startup_latency * 1e3,
        )
        misses[read_ahead] = metrics.misses

    for read_ahead in (0, 1, 2, 4, 8):
        run(read_ahead)
    return E18Result(table=table, misses_by_readahead=misses)


# ---------------------------------------------------------------------------
# E19 — §3: the unified media + text file server
# ---------------------------------------------------------------------------

@dataclass
class E19Result:
    """Unified-server outcome: media guarantee + text throughput."""

    table: Table
    media_misses_by_load: Dict[int, int]
    text_served_by_load: Dict[int, int]


def e19_unified_server(
    profile: HardwareProfile = TESTBED_1991,
    media_blocks: int = 80,
    text_blocks: int = 200,
    k: int = 4,
) -> E19Result:
    """Serve text files from the media server's slack (§3).

    "A common file server can ... integrate the functions of both a
    conventional text file server and a multimedia file server."  Text
    blocks are stored in the scatter gaps and served inside each round's
    leftover Eq.-(11) budget, so the real-time guarantee is preserved by
    construction; text throughput falls as the media load grows.
    """
    from repro.service.besteffort import TextRequest, UnifiedService
    from repro.service.rounds import StreamState

    block = video_block_model(profile.video, 4)
    table = Table(
        title="E19: unified media + text service (§3)",
        columns=[
            "media streams", "media misses", "text blocks in slack",
            "text share of round budget",
        ],
    )
    media_misses: Dict[int, int] = {}
    text_served: Dict[int, int] = {}
    for n in (0, 1, 2):
        drive = build_drive()
        streams = []
        for i in range(n):
            fetches = fetches_with_gap(
                drive, media_blocks, drive.parameters().seek_avg,
                block.block_bits, block.playback_duration,
            )
            streams.append(
                StreamState(
                    request_id=f"m{i}", fetches=fetches,
                    buffer_capacity=2 * k,
                )
            )
        text = TextRequest(
            "text", list(range(drive.slots // 2, drive.slots // 2 + text_blocks))
        )
        service = UnifiedService(
            drive, lambda r, m: k, text_requests=[text]
        )
        if streams:
            metrics = service.run(streams)
            misses = sum(m.misses for m in metrics.values())
            budget = service.rounds_run * k * block.playback_duration
            share = service.text_time_used / budget if budget else 0.0
        else:
            # No media load: the entire disk belongs to text.
            service.drain_text(0.0)
            misses = 0
            share = 1.0
        table.add_row(n, misses, service.text_blocks_served, share)
        media_misses[n] = misses
        text_served[n] = service.text_blocks_served
    return E19Result(
        table=table,
        media_misses_by_load=media_misses,
        text_served_by_load=text_served,
    )


# ---------------------------------------------------------------------------
# E20 — Eq. (11) in full generality: per-request k for mixed workloads
# ---------------------------------------------------------------------------

@dataclass
class E20Result:
    """Uniform-average vs heterogeneous-k admission on mixed workloads."""

    table: Table
    uniform_admitted: Dict[str, bool]
    heterogeneous_admitted: Dict[str, bool]


def e20_heterogeneous_k(
    profile: HardwareProfile = TESTBED_1991,
) -> E20Result:
    """Solve Eq. (11) per request instead of averaging (§3.4's general
    formulation, which the paper leaves open).

    Audio requests drain ~4x slower than video on the testbed, so the
    averaged (α, β, γ) model — whose γ is the *fastest* drain — charges
    every audio stream as if it were video and rejects mixes the disk can
    easily serve.  The per-request solver admits them with small k_i for
    audio and larger k_i for video, verified against the exact Eq. (11).
    """
    from repro.core.admission import (
        RequestDescriptor,
        k_transition,
        round_feasible,
        service_parameters,
        solve_heterogeneous_k,
    )
    from repro.core.symbols import BlockModel

    drive = build_drive()
    params_disk = drive.parameters()
    video_block = video_block_model(profile.video, 4)
    audio_block = BlockModel(
        unit_rate=profile.audio.sample_rate,
        unit_size=profile.audio.sample_size,
        granularity=4096,
    )
    video_req = RequestDescriptor(
        block=video_block, scattering_avg=params_disk.seek_avg
    )
    audio_req = RequestDescriptor(
        block=audio_block, scattering_avg=params_disk.seek_avg
    )
    mixes = {
        "3 video": [video_req] * 3,
        "2 video + 4 audio": [video_req] * 2 + [audio_req] * 4,
        "1 video + 10 audio": [video_req] + [audio_req] * 10,
        "16 audio": [audio_req] * 16,
    }
    table = Table(
        title="E20: uniform-average vs per-request k (Eq. 11 in full)",
        columns=[
            "workload", "uniform model admits", "per-request k admits",
            "k values", "Eq. 11 verified",
        ],
    )
    uniform: Dict[str, bool] = {}
    heterogeneous: Dict[str, bool] = {}
    for name, mix in mixes.items():
        try:
            k_transition(service_parameters(mix, params_disk))
            uniform_ok = True
        except Exception:
            uniform_ok = False
        ks = solve_heterogeneous_k(mix, params_disk)
        hetero_ok = ks is not None
        verified = (
            round_feasible(mix, params_disk, ks) if hetero_ok else False
        )
        k_display = (
            "-" if ks is None else ",".join(str(k) for k in sorted(set(ks)))
        )
        table.add_row(name, uniform_ok, hetero_ok, k_display, verified)
        uniform[name] = uniform_ok
        heterogeneous[name] = hetero_ok
    return E20Result(
        table=table,
        uniform_admitted=uniform,
        heterogeneous_admitted=heterogeneous,
    )


# ---------------------------------------------------------------------------
# E21 — §3/§3.4: concurrent storage + retrieval
# ---------------------------------------------------------------------------

@dataclass
class E21Result:
    """Concurrent record+play outcomes across load levels."""

    table: Table
    misses_by_load: Dict[str, int]


def e21_record_and_play(
    profile: HardwareProfile = TESTBED_1991,
    blocks: int = 40,
    k: int = 4,
) -> E21Result:
    """Serve RECORD and PLAY requests in the same rounds (§3.4).

    The admission analysis covers "storage/retrieval requests" uniformly
    (writes cost what reads cost, per the §3 assumptions); the experiment
    runs mixed populations and verifies that both directions stay
    continuous at sane load and that an overloaded mix fails on the
    recording side first (capture cannot be paused, so staging overruns
    are where overload surfaces).
    """
    from repro.disk import (
        ConstrainedScatterAllocator,
        FreeMap,
        ScatterBounds,
        StrandPlacer,
    )
    from repro.service.mixed_rounds import MixedRoundService, RecordStream
    from repro.service.rounds import StreamState

    block = video_block_model(profile.video, 4)
    table = Table(
        title="E21: concurrent storage + retrieval (§3.4)",
        columns=[
            "workload", "play misses", "record misses",
            "all continuous",
        ],
    )
    misses: Dict[str, int] = {}

    def run(label: str, players: int, recorders: int, capacity: int):
        drive = build_drive()
        freemap = FreeMap(drive.slots)
        bounds = ScatterBounds(0.0, drive.rotation.average_latency + 0.01)
        placer = StrandPlacer(
            drive, ConstrainedScatterAllocator(drive, freemap, bounds)
        )
        records = []
        for i in range(recorders):
            placement = placer.place(blocks)
            records.append(
                RecordStream(
                    request_id=f"rec{i}",
                    slots=placement.slots,
                    block_period=block.playback_duration,
                    staging_capacity=capacity,
                )
            )
        plays = []
        for i in range(players):
            fetches = fetches_with_gap(
                drive, blocks, drive.parameters().seek_avg,
                block.block_bits, block.playback_duration,
            )
            plays.append(
                StreamState(
                    request_id=f"play{i}", fetches=fetches,
                    buffer_capacity=2 * k,
                )
            )
        drive.park(0)
        service = MixedRoundService(
            drive, lambda r, n: k, record_streams=records
        )
        metrics = service.run(plays)
        play_misses = sum(
            m.misses for rid, m in metrics.items() if rid.startswith("play")
        )
        record_misses = sum(
            m.misses for rid, m in metrics.items() if rid.startswith("rec")
        )
        table.add_row(
            label, play_misses, record_misses,
            play_misses + record_misses == 0,
        )
        misses[label] = play_misses + record_misses

    run("1 record + 1 play", players=1, recorders=1, capacity=4)
    run("1 record + 2 play", players=2, recorders=1, capacity=4)
    run("2 record + 1 play", players=1, recorders=2, capacity=4)
    run("overload: 1-block staging, 3 play", players=3, recorders=1,
        capacity=1)
    return E21Result(table=table, misses_by_load=misses)
