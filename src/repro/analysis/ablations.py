"""Ablation studies over the design parameters DESIGN.md calls out.

The paper fixes several design choices (granularity from device buffers,
a copy budget for the scattering lower bound, a block size); these
ablations sweep each choice to show *why* the derived value is the right
operating point:

* :func:`ablate_granularity` — η trades scattering tolerance and server
  capacity against device buffer footprint and per-block latency;
* :func:`ablate_copy_budget` — the §4.2 copy budget trades editing cost
  against the placement window left for the allocator;
* :func:`ablate_block_size` — the disk block-slot size trades seek
  amortization against internal fragmentation for audio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import Table
from repro.config import TESTBED_1991, HardwareProfile
from repro.core import admission as adm
from repro.core import continuity
from repro.core.continuity import Architecture
from repro.core.granularity import scattering_lower_bound
from repro.core.symbols import DisplayDeviceParameters, video_block_model
from repro.disk import TESTBED_DRIVE, build_drive

__all__ = [
    "ablate_granularity",
    "ablate_copy_budget",
    "ablate_block_size",
]


@dataclass
class AblationResult:
    """One ablation's table plus the swept values for assertions."""

    table: Table
    series: Dict[object, object]


def ablate_granularity(
    profile: HardwareProfile = TESTBED_1991,
) -> AblationResult:
    """Sweep η: scattering bound, capacity, startup cost, buffer bits."""
    drive = build_drive()
    params = drive.parameters()
    table = Table(
        title="Ablation: storage granularity η (frames/block)",
        columns=[
            "η", "l_ds bound (ms)", "n_max", "k @ n_max",
            "device buffer (Kbit, pipelined)",
        ],
    )
    series: Dict[int, Dict[str, float]] = {}
    for eta in (1, 2, 4, 8):
        block = video_block_model(profile.video, eta)
        device = DisplayDeviceParameters(
            display_rate=profile.video_device.display_rate,
            buffer_frames=2 * eta,
        )
        bound = continuity.max_scattering(
            Architecture.PIPELINED, block, params, device
        )
        descriptor = adm.RequestDescriptor(
            block=block, scattering_avg=params.seek_avg
        )
        service = adm.service_parameters([descriptor], params)
        capacity = adm.n_max(service)
        at_capacity = adm.service_parameters(
            [descriptor] * max(1, capacity), params
        )
        try:
            k_at_capacity = adm.k_transition(at_capacity)
        except Exception:
            k_at_capacity = None
        buffer_bits = 2 * eta * profile.video.frame_size / 1e3
        table.add_row(
            eta, bound * 1e3, capacity, k_at_capacity, buffer_bits
        )
        series[eta] = {
            "bound": bound, "n_max": capacity,
        }
    return AblationResult(table=table, series=series)


def ablate_copy_budget(
    profile: HardwareProfile = TESTBED_1991,
) -> AblationResult:
    """Sweep the §4.2 copy budget: lower bound vs placement window."""
    drive = build_drive()
    params = drive.parameters()
    block = video_block_model(profile.video, 4)
    upper = continuity.max_scattering(
        Architecture.PIPELINED, block, params, profile.video_device
    )
    table = Table(
        title="Ablation: editing copy budget C_b (blocks per seam repair)",
        columns=[
            "copy budget", "l_ds lower (ms)", "l_ds upper (ms)",
            "window (ms)", "window feasible",
        ],
    )
    series: Dict[int, float] = {}
    for budget in (1, 2, 4, 8, 16, 0):
        lower = scattering_lower_bound(params, budget)
        window = upper - lower
        table.add_row(
            budget if budget else "unbounded",
            lower * 1e3, upper * 1e3, window * 1e3, window > 0,
        )
        series[budget] = window
    return AblationResult(table=table, series=series)


def ablate_block_size(
    profile: HardwareProfile = TESTBED_1991,
) -> AblationResult:
    """Sweep the disk block-slot size (sectors/block).

    Bigger slots amortize positioning over more payload (higher effective
    throughput at fixed gaps) but waste space on small audio blocks —
    the classic internal-fragmentation trade.
    """
    table = Table(
        title="Ablation: disk block size (sectors/slot)",
        columns=[
            "sectors/slot", "slot (Kbit)", "slots",
            "throughput @avg gap (Mbit/s)",
            "audio waste (fraction of slot)",
        ],
    )
    series: Dict[int, float] = {}
    audio_block_bits = 2048 * profile.audio.sample_size
    for sectors in (16, 32, 64, 128):
        drive = build_drive(TESTBED_DRIVE, sectors_per_block=sectors)
        params = drive.parameters()
        throughput = continuity.effective_throughput(
            drive.block_bits, params, params.seek_avg
        )
        waste = max(0.0, 1.0 - audio_block_bits / drive.block_bits)
        table.add_row(
            sectors, drive.block_bits / 1e3, drive.slots,
            throughput / 1e6, waste,
        )
        series[sectors] = throughput
    return AblationResult(table=table, series=series)
