"""Buffering and read-ahead requirements (§3.3.2).

Two continuity regimes appear in the paper:

* **Strict continuity** — every block individually meets its deadline.
  Buffer needs are 1 (sequential), 2 (pipelined), p (concurrent).
* **Average continuity over k blocks** — scheduling and seek-time jitter is
  absorbed by an *anti-jitter delay* (read-ahead) at the start of each
  request.  Guaranteeing that the next group of k blocks arrives within
  the playback time of the previous group requires a read-ahead of k
  blocks (sequential, pipelined) or p·k blocks (concurrent, k per head);
  buffer counts are k, 2k, and p·k respectively (pipelined doubles because
  one set of k is displayed while the other set of k is filled).

§3.3.2 also covers the variable-rate playback functions:

* **Fast-forward without skipping** multiplies the consumption rate by the
  speedup, inflating both the continuity requirement and buffering.
* **Fast-forward with skipping** raises only the continuity requirement.
* **Slow motion** over-satisfies continuity; blocks accumulate in buffers,
  so the disk hands the surplus bandwidth to other tasks once buffers
  fill.  Before switching away, it must read ahead ``h`` extra blocks to
  cover the worst-case ``l_seek_max`` re-positioning delay when it
  resumes:  ``h = ⌈l_seek_max · R_blk⌉`` where ``R_blk`` is the block
  playback rate (formula reconstructed; see DESIGN.md §1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.continuity import Architecture
from repro.core.symbols import BlockModel, DiskParameters
from repro.errors import ParameterError

__all__ = [
    "BufferPlan",
    "read_ahead_required",
    "buffers_for_average_continuity",
    "task_switch_read_ahead",
    "plan",
    "fast_forward_block",
    "slow_motion_accumulation_rate",
]


@dataclass(frozen=True)
class BufferPlan:
    """Complete §3.3.2 buffering answer for one request.

    Attributes
    ----------
    architecture:
        Retrieval architecture the plan is for.
    k:
        Averaging window (blocks); k = 1 is strict continuity.
    read_ahead:
        Blocks to prefetch as anti-jitter delay before playback starts.
    buffers:
        Device/server buffers that must be reserved for the request.
    switch_read_ahead:
        Additional blocks (h) to prefetch before the disk may switch to
        another task during over-satisfied (slow-motion) playback.
    """

    architecture: Architecture
    k: int
    read_ahead: int
    buffers: int
    switch_read_ahead: int

    @property
    def total_reserved(self) -> int:
        """Buffers including the task-switch reserve."""
        return self.buffers + self.switch_read_ahead


def _validate(k: int, p: int) -> None:
    if k < 1:
        raise ParameterError(f"averaging window k must be >= 1, got {k}")
    if p < 1:
        raise ParameterError(f"concurrency p must be >= 1, got {p}")


def read_ahead_required(architecture: Architecture, k: int, p: int = 1) -> int:
    """Anti-jitter read-ahead for average continuity over k blocks.

    Sequential and pipelined architectures need k blocks; the concurrent
    architecture needs k per head, p·k in total.
    """
    _validate(k, p)
    if architecture is Architecture.CONCURRENT:
        return p * k
    if architecture in (Architecture.SEQUENTIAL, Architecture.PIPELINED):
        return k
    raise ParameterError(f"unknown architecture: {architecture!r}")


def buffers_for_average_continuity(
    architecture: Architecture, k: int, p: int = 1
) -> int:
    """Buffer count for average continuity over k blocks (§3.3.2).

    Sequential: k.  Concurrent: p·k.  Pipelined: 2k — "one set of k buffers
    to hold the blocks being displayed, and another set of k buffers to
    hold the blocks being transferred from the disk, both of which occur
    simultaneously."
    """
    _validate(k, p)
    if architecture is Architecture.SEQUENTIAL:
        return k
    if architecture is Architecture.PIPELINED:
        return 2 * k
    if architecture is Architecture.CONCURRENT:
        return p * k
    raise ParameterError(f"unknown architecture: {architecture!r}")


def task_switch_read_ahead(block: BlockModel, disk: DiskParameters) -> int:
    """Blocks (h) to prefetch before the disk switches to another task.

    After the switch "the disk head may have moved to a random location,
    and hence may have to incur maximum seek (and latency) time" before
    resuming; the display must not starve during that window, so
    ``h = ⌈l_seek_max · R_blk⌉`` blocks are read ahead, where ``R_blk`` is
    the block playback rate.
    """
    return math.ceil(disk.seek_max * block.blocks_per_second)


def plan(
    architecture: Architecture,
    block: BlockModel,
    disk: DiskParameters,
    k: int = 1,
    p: int = 1,
    allow_task_switch: bool = False,
) -> BufferPlan:
    """Assemble the complete buffering plan for one request."""
    _validate(k, p)
    switch = task_switch_read_ahead(block, disk) if allow_task_switch else 0
    return BufferPlan(
        architecture=architecture,
        k=k,
        read_ahead=read_ahead_required(architecture, k, p),
        buffers=buffers_for_average_continuity(architecture, k, p),
        switch_read_ahead=switch,
    )


def fast_forward_block(
    block: BlockModel, speedup: float, skipping: bool
) -> BlockModel:
    """Effective block model during fast-forward playback (§3.3.2).

    Fast-forwarding at *speedup* × normal rate shrinks the playback budget
    per block by that factor, which we model by scaling the unit rate.

    * Without skipping, every block is still fetched, so both continuity
      and buffering demands grow — the returned model's higher rate feeds
      straight into the continuity equations and buffer plans.
    * With skipping, only one block in ⌈speedup⌉ is fetched, so the
      *fetched* blocks still arrive at (approximately) the normal block
      rate; the continuity requirement tightens only through the scheduling
      of which blocks to fetch.  We model this by scaling the rate up and
      the effective fetch count down, which cancels at the block level —
      the returned model keeps the original rate but callers should treat
      skipped playback as consuming 1/⌈speedup⌉ of the blocks.

    Returns a new :class:`BlockModel`; the original is unchanged.
    """
    if speedup <= 0:
        raise ParameterError(f"speedup must be positive, got {speedup}")
    if skipping:
        stride = max(1, math.ceil(speedup))
        effective_rate = block.unit_rate * speedup / stride
    else:
        effective_rate = block.unit_rate * speedup
    return BlockModel(effective_rate, block.unit_size, block.granularity)


def slow_motion_accumulation_rate(
    block: BlockModel,
    disk: DiskParameters,
    scattering: float,
    slowdown: float,
) -> float:
    """Net buffer fill rate (blocks/s) during slow-motion playback.

    At 1/slowdown × normal speed the display consumes
    ``R_blk / slowdown`` blocks/s while the disk can still deliver
    ``1 / read_time`` blocks/s; the difference accumulates in buffers
    (§3.3.2: "retrieval of media blocks proceeds faster than their
    display, leading to accumulation").  A non-positive result means no
    accumulation (the disk was the bottleneck already).
    """
    if slowdown < 1.0:
        raise ParameterError(
            f"slowdown must be >= 1 (use fast_forward_block for speedups), "
            f"got {slowdown}"
        )
    delivery = 1.0 / block.read_time(disk, scattering)
    consumption = block.blocks_per_second / slowdown
    return delivery - consumption
