"""Admission control for multiple concurrent requests (§3.4).

To service n active storage/retrieval requests the file system proceeds in
**rounds**, transferring ``k_i`` consecutive blocks for request i before
switching to the next.  Switching between requests may cost up to the
maximum seek time (strands of different requests have no positional
relationship), so the time spent on request i in a round is::

    θ_i = θ_i^s + θ_i^t
    θ_i^s = l_seek_max + η_i·s_i/R_dr            (Eq. 7: switch + 1st block)
    θ_i^t = (k_i−1)·(l_ds_avg + η_i·s_i/R_dr)    (Eq. 8: remaining blocks)

Continuity holds iff the whole round fits inside the playback duration of
the *fastest-draining* request (Eq. 11)::

    Σ_i θ_i  ≤  min_i (k_i · η_i / R_i)

Under the paper's simplifying assumptions (all k_i equal; per-request
granularities/frame sizes/scatterings replaced by their averages), with

    α = l_seek_max + η̄·s̄/R_dr     (Eq. 12 — maximum scattering per block)
    β = l_ds_avg  + η̄·s̄/R_dr     (Eq. 13 — average scattering per block)
    γ = min_i (η_i / R_i)          (Eq. 14 — fastest block drain)

Eq. (11) reduces to Eq. (15), ``n·α + n·(k−1)·β ≤ k·γ``, giving
(Eq. 16) ``k ≥ n(α−β)/(γ−nβ)`` — meaningful iff γ > nβ — and the
capacity bound (Eq. 17) ``n_max = ⌈γ/β⌉ − 1``.

**Transitions.**  Admitting request n+1 usually raises k.  During the
changeover round, k_new blocks are transferred while only k_old blocks'
worth of data sits in display buffers, so Eq. (15) alone does not protect
the transition.  The paper's fix: compute k from the stricter Eq. (18),
``n·α + n·k·β ≤ k·γ`` ⇒ ``k ≥ nα/(γ−nβ)``, and grow k *in steps of 1* —
each step's extra transfer time is then covered by the previous step's
buffered playback, "an admission control algorithm that guarantees both
transient and steady state continuity."  :class:`AdmissionController`
implements exactly this algorithm.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.symbols import BlockModel, DiskParameters
from repro.errors import AdmissionRejected, ParameterError
from repro.obs.audit import AdmissionAuditLog

__all__ = [
    "RequestDescriptor",
    "ServiceParameters",
    "service_parameters",
    "k_steady",
    "k_transition",
    "n_max",
    "round_time",
    "round_feasible",
    "solve_heterogeneous_k",
    "TransitionPlan",
    "AdmissionDecision",
    "AdmissionController",
]


@dataclass(frozen=True)
class RequestDescriptor:
    """The admission-relevant face of one PLAY/RECORD request.

    Attributes
    ----------
    block:
        Block model of the strand being streamed (granularity η_i, unit
        size s_i, unit rate R_i).
    scattering_avg:
        Average separation between successive blocks of this request's
        strand on disk, seconds (``l_ds_avg`` for this strand).
    """

    block: BlockModel
    scattering_avg: float

    def __post_init__(self) -> None:
        if self.scattering_avg < 0:
            raise ParameterError(
                f"scattering_avg must be >= 0, got {self.scattering_avg}"
            )

    @property
    def block_playback(self) -> float:
        """Playback duration of one block, ``η_i / R_i`` seconds."""
        return self.block.playback_duration

    def switch_time(self, disk: DiskParameters) -> float:
        """θ_i^s (Eq. 7): maximum seek plus first-block transfer."""
        return disk.seek_max + disk.transfer_time(self.block.block_bits)

    def continue_time(self, disk: DiskParameters, k: int) -> float:
        """θ_i^t (Eq. 8): transfer of the remaining (k−1) blocks."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        per_block = self.scattering_avg + disk.transfer_time(self.block.block_bits)
        return (k - 1) * per_block

    def service_time(self, disk: DiskParameters, k: int) -> float:
        """θ_i (Eq. 9): total time spent on this request per round."""
        return self.switch_time(disk) + self.continue_time(disk, k)


@dataclass(frozen=True)
class ServiceParameters:
    """The (α, β, γ) triple of Eqs. (12)–(14) for a request set."""

    alpha: float
    beta: float
    gamma: float
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ParameterError(f"n must be >= 0, got {self.n}")
        if self.alpha < self.beta:
            raise ParameterError(
                f"alpha ({self.alpha}) < beta ({self.beta}): requires "
                "l_seek_max >= average scattering, which the disk model "
                "guarantees — check the request scattering values"
            )


def service_parameters(
    requests: Sequence[RequestDescriptor], disk: DiskParameters
) -> ServiceParameters:
    """Compute (α, β, γ) from the active request set (Eqs. 12–14).

    Per the paper, per-request block sizes and scatterings are replaced by
    their averages across the request set; γ is the minimum per-block
    playback duration (the fastest-draining request governs the round).
    """
    n = len(requests)
    if n == 0:
        raise ParameterError("service_parameters requires at least one request")
    mean_block_bits = sum(r.block.block_bits for r in requests) / n
    mean_scattering = sum(r.scattering_avg for r in requests) / n
    transfer = disk.transfer_time(mean_block_bits)
    alpha = disk.seek_max + transfer
    beta = min(mean_scattering, disk.seek_max) + transfer
    gamma = min(r.block_playback for r in requests)
    return ServiceParameters(alpha=alpha, beta=beta, gamma=gamma, n=n)


#: Relative tolerance for the γ − nβ feasibility boundary: a headroom
#: smaller than γ·ε is floating-point noise, not real capacity.
_HEADROOM_EPSILON = 1e-9


def _headroom(params: ServiceParameters) -> float:
    """γ − n·β; positive iff Eq. (16)/(18) have a meaningful solution.

    Values within floating-point noise of zero are clamped to zero so
    the capacity boundary is decided consistently with Eq. (17).
    """
    head = params.gamma - params.n * params.beta
    if head <= params.gamma * _HEADROOM_EPSILON:
        return 0.0
    return head


def k_steady(params: ServiceParameters) -> int:
    """Steady-state blocks-per-round k from Eq. (16).

    ``k = ⌈ n(α−β) / (γ − nβ) ⌉``, clamped to at least 1 (a round must
    move at least one block per request).

    Raises
    ------
    AdmissionRejected
        If γ ≤ n·β, i.e. n exceeds the Eq.-(17) capacity.
    """
    head = _headroom(params)
    if head <= 0:
        raise AdmissionRejected(
            f"no feasible k: n={params.n} exceeds capacity "
            f"(gamma={params.gamma:.6f} <= n*beta={params.n * params.beta:.6f})",
            active=params.n,
            n_max=n_max(params),
        )
    k = math.ceil(params.n * (params.alpha - params.beta) / head)
    return max(1, k)


def k_transition(params: ServiceParameters) -> int:
    """Transition-safe blocks-per-round k from Eq. (18).

    ``k = ⌈ nα / (γ − nβ) ⌉`` — strictly ≥ the Eq. (16) value, and safe to
    approach in steps of 1 while requests are already streaming.
    """
    head = _headroom(params)
    if head <= 0:
        raise AdmissionRejected(
            f"no feasible transition k: n={params.n} exceeds capacity",
            active=params.n,
            n_max=n_max(params),
        )
    k = math.ceil(params.n * params.alpha / head)
    return max(1, k)


def n_max(params: ServiceParameters) -> int:
    """Maximum simultaneous requests, Eq. (17): ``⌈γ/β⌉ − 1``."""
    return math.ceil(params.gamma / params.beta) - 1


def round_time(
    requests: Sequence[RequestDescriptor],
    disk: DiskParameters,
    k_values: Sequence[int],
) -> float:
    """Exact duration of one service round (Eq. 10): ``Σ_i θ_i``."""
    if len(requests) != len(k_values):
        raise ParameterError(
            f"{len(requests)} requests but {len(k_values)} k values"
        )
    return sum(
        request.service_time(disk, k)
        for request, k in zip(requests, k_values)
    )


def round_feasible(
    requests: Sequence[RequestDescriptor],
    disk: DiskParameters,
    k_values: Sequence[int],
) -> bool:
    """The general continuity test of Eq. (11) with per-request k_i.

    ``Σ_i θ_i ≤ min_i (k_i · η_i / R_i)`` — the round must finish before
    the request with the least buffered playback time drains.
    """
    if not requests:
        return True
    duration = round_time(requests, disk, k_values)
    budget = min(
        k * request.block_playback
        for request, k in zip(requests, k_values)
    )
    return duration <= budget


def solve_heterogeneous_k(
    requests: Sequence[RequestDescriptor],
    disk: DiskParameters,
    budget_limit: float = 300.0,
) -> Optional[List[int]]:
    """Per-request k_i satisfying the general Eq. (11), or None.

    The paper stops at uniform k over averaged parameters
    ("Determination of k1, k2, ..., kn in this most general formulation
    is beyond the scope of this paper"); this solver handles the general
    case for mixed workloads, where uniform-k averaging wastes capacity
    on slow-draining (e.g. audio) requests.

    Method: parametrize by the round budget B.  Setting
    ``k_i = ⌈B / T_i⌉`` (T_i the request's block playback duration)
    guarantees ``min_i k_i·T_i ≥ B``, and the round duration
    ``Σ_i θ_i(k_i)`` is non-decreasing in B, so Eq. (11) holds iff
    ``round(B) ≤ B`` — a one-dimensional feasibility problem solved by
    bisection on the smallest feasible B (smallest k_i ⇒ smallest
    startup latency, the §3.4 preference).

    Returns the k_i list, or None when no budget up to *budget_limit*
    seconds works (the mix exceeds capacity).
    """
    if not requests:
        return []

    def k_for(budget: float) -> List[int]:
        return [
            max(1, math.ceil(budget / request.block_playback))
            for request in requests
        ]

    def feasible(budget: float) -> bool:
        ks = k_for(budget)
        return round_time(requests, disk, ks) <= min(
            k * request.block_playback
            for k, request in zip(ks, requests)
        )

    low = min(request.block_playback for request in requests)
    high = low
    while not feasible(high):
        high *= 2.0
        if high > budget_limit:
            return None
    # Bisect to the smallest feasible budget (k values are step
    # functions of B; 40 iterations pin B far below one block period).
    for _ in range(40):
        mid = (low + high) / 2.0
        if feasible(mid):
            high = mid
        else:
            low = mid
    return k_for(high)


@dataclass(frozen=True)
class TransitionPlan:
    """How to move the service loop from k_old to k_new safely.

    Attributes
    ----------
    k_old:
        Blocks per round before the change.
    k_new:
        Target blocks per round (Eq. 18 value for the new request set).
    steps:
        The intermediate k values to run, one round each, in order.
        Empty when k_new ≤ k_old (shrinking k is immediately safe: a
        smaller round always finishes within the old round's budget).
    """

    k_old: int
    k_new: int
    steps: Tuple[int, ...]

    @property
    def rounds_required(self) -> int:
        """Rounds spent in transition before steady state resumes."""
        return len(self.steps)


def _plan_transition(k_old: int, k_new: int) -> TransitionPlan:
    if k_new > k_old:
        steps = tuple(range(k_old + 1, k_new + 1))
    else:
        steps = ()
    return TransitionPlan(k_old=k_old, k_new=k_new, steps=steps)


@dataclass(frozen=True)
class AdmissionDecision:
    """Result of a successful admission."""

    request_id: int
    params: ServiceParameters
    k: int
    transition: TransitionPlan


@dataclass
class AdmissionController:
    """Stateful §3.4 admission controller for a file server.

    Tracks the active request set, the current blocks-per-round value, and
    produces step-of-1 transition plans on every admission.  All k values
    come from the transition-safe Eq. (18), which the paper adopts for the
    final algorithm ("using Equation (18) to determine k, and increasing
    it in steps of 1, yields an admission control algorithm that
    guarantees both transient and steady state continuity").

    Parameters
    ----------
    disk:
        The disk the server schedules.
    max_k:
        Upper bound on blocks-per-round the server will operate at.
        Near capacity, Eq. (18)'s k diverges (γ − nβ → 0⁺), and with it
        the startup latency and buffering; a request whose admission
        would push k beyond this bound is rejected as effectively at
        capacity ("it is desirable to use the minimum possible value of
        k", §3.4).
    audit:
        Optional :class:`~repro.obs.audit.AdmissionAuditLog`; when set,
        every admit/reject is recorded with the exact inequality and
        operand values the verdict turned on.
    """

    disk: DiskParameters
    max_k: int = 10_000
    audit: Optional[AdmissionAuditLog] = None
    _active: Dict[int, RequestDescriptor] = field(default_factory=dict)
    _k: int = 0
    _ids: "itertools.count[int]" = field(default_factory=itertools.count)

    @property
    def active_count(self) -> int:
        """Number of requests currently admitted."""
        return len(self._active)

    @property
    def current_k(self) -> int:
        """Blocks per round the service loop should currently use."""
        return self._k

    @property
    def active_requests(self) -> Dict[int, RequestDescriptor]:
        """Snapshot of the admitted request set keyed by request ID."""
        return dict(self._active)

    def parameters(
        self, extra: Optional[RequestDescriptor] = None
    ) -> ServiceParameters:
        """(α, β, γ) for the active set, optionally plus a candidate."""
        requests: List[RequestDescriptor] = list(self._active.values())
        if extra is not None:
            requests.append(extra)
        return service_parameters(requests, self.disk)

    def capacity(self, candidate: RequestDescriptor) -> int:
        """n_max if the workload looked like *candidate* plus the active set."""
        return n_max(self.parameters(extra=candidate))

    def can_admit(self, candidate: RequestDescriptor) -> bool:
        """Non-mutating admission test for *candidate*."""
        params = self.parameters(extra=candidate)
        return _headroom(params) > 0

    def admit(self, candidate: RequestDescriptor) -> AdmissionDecision:
        """Admit *candidate* or raise :class:`AdmissionRejected`.

        On success the controller's request set and current k are updated;
        the returned decision carries the transition plan the service loop
        must execute (grow k by 1 per round) before the new request's
        transfers begin.
        """
        params = self.parameters(extra=candidate)
        if _headroom(params) <= 0:
            self._audit_headroom(params, satisfied=False)
            raise AdmissionRejected(
                f"request rejected: admitting it would make n={params.n} "
                f"exceed n_max={n_max(params)}",
                active=self.active_count,
                n_max=n_max(params),
            )
        new_k = k_transition(params)
        if new_k > self.max_k:
            if self.audit is not None:
                self.audit.record(
                    "reject",
                    f"candidate(n={params.n})",
                    "k <= max_k",
                    {
                        "k": new_k,
                        "max_k": self.max_k,
                        "n": params.n,
                        "n_max": n_max(params),
                    },
                    satisfied=False,
                    detail="Eq.-18 k diverging near capacity",
                )
            raise AdmissionRejected(
                f"request rejected: k={new_k} would exceed the server's "
                f"operating bound {self.max_k} (effectively at capacity)",
                active=self.active_count,
                n_max=n_max(params),
            )
        plan = _plan_transition(self._k, new_k)
        request_id = next(self._ids)
        self._active[request_id] = candidate
        self._k = max(new_k, 1)
        self._audit_headroom(
            params, satisfied=True,
            subject=f"request-{request_id}",
            detail=f"k={self._k} transition_steps={len(plan.steps)}",
        )
        return AdmissionDecision(
            request_id=request_id, params=params, k=self._k, transition=plan
        )

    def _audit_headroom(
        self,
        params: ServiceParameters,
        satisfied: bool,
        subject: Optional[str] = None,
        detail: str = "",
    ) -> None:
        """Log the Eq.-(15) headroom verdict with its exact operands.

        The logged constraint mirrors :func:`_headroom`'s clamped test
        bit-for-bit, so re-evaluating it from the operands reproduces
        the decision.
        """
        if self.audit is None:
            return
        self.audit.record(
            "admit" if satisfied else "reject",
            subject or f"candidate(n={params.n})",
            "gamma - n * beta > gamma * epsilon",
            {
                "alpha": params.alpha,
                "beta": params.beta,
                "gamma": params.gamma,
                "n": params.n,
                "epsilon": _HEADROOM_EPSILON,
                "n_max": n_max(params),
            },
            satisfied=satisfied,
            detail=detail or f"n_max={n_max(params)}",
        )

    def release(self, request_id: int) -> TransitionPlan:
        """Remove a completed/stopped request and shrink k immediately.

        Shrinking k is transition-safe without staging: the next (smaller)
        round necessarily finishes within the playback time the previous
        (larger) round buffered.
        """
        try:
            del self._active[request_id]
        except KeyError:
            raise ParameterError(
                f"unknown request id {request_id!r}"
            ) from None
        old_k = self._k
        if self._active:
            self._k = k_transition(self.parameters())
        else:
            self._k = 0
        return _plan_transition(old_k, self._k)
