"""A stateful admission controller for the general Eq.-(11) form.

:class:`repro.core.admission.AdmissionController` implements the paper's
published algorithm — uniform k over averaged parameters — which is
correct but pessimistic for *mixed* workloads (§3.4 leaves the general
formulation open).  :class:`GeneralAdmissionController` closes that gap:
every admission re-solves Eq. (11) with per-request k_i via
:func:`repro.core.admission.solve_heterogeneous_k`, and staged transitions
grow each request's k_i by at most one per round, generalizing the
paper's step-of-1 argument (each step's extra transfer time per request
is covered by the playback the previous step buffered for that request).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.admission import (
    RequestDescriptor,
    round_feasible,
    round_time,
    solve_heterogeneous_k,
)
from repro.core.symbols import DiskParameters
from repro.errors import AdmissionRejected, ParameterError
from repro.obs.audit import AdmissionAuditLog

__all__ = ["GeneralAdmissionDecision", "GeneralAdmissionController"]


@dataclass(frozen=True)
class GeneralAdmissionDecision:
    """Result of a successful general admission."""

    request_id: int
    #: k_i per active request id, after this admission.
    k_values: Dict[int, int]
    #: Rounds of staged growth before the newcomer's transfers begin:
    #: max over requests of (k_new − k_old).
    transition_rounds: int


@dataclass
class GeneralAdmissionController:
    """Eq.-(11) admission with per-request k for heterogeneous mixes."""

    disk: DiskParameters
    budget_limit: float = 300.0
    audit: Optional[AdmissionAuditLog] = None
    _active: Dict[int, RequestDescriptor] = field(default_factory=dict)
    _k_values: Dict[int, int] = field(default_factory=dict)
    _ids: "itertools.count[int]" = field(default_factory=itertools.count)

    @property
    def active_count(self) -> int:
        """Requests currently admitted."""
        return len(self._active)

    @property
    def current_k(self) -> int:
        """Largest per-request k in force (the round loop's global k).

        Streams carry their own k_i via ``StreamState.k_override``; the
        global value only caps the loop for streams without one.
        """
        return max(self._k_values.values(), default=0)

    def k_for(self, request_id: int) -> int:
        """The k_i currently assigned to a request."""
        try:
            return self._k_values[request_id]
        except KeyError:
            raise ParameterError(
                f"unknown request id {request_id!r}"
            ) from None

    def k_values(self) -> Dict[int, int]:
        """Snapshot of every active request's k_i."""
        return dict(self._k_values)

    def can_admit(self, candidate: RequestDescriptor) -> bool:
        """Non-mutating admission test."""
        mix = list(self._active.values()) + [candidate]
        return solve_heterogeneous_k(
            mix, self.disk, self.budget_limit
        ) is not None

    def admit(
        self, candidate: RequestDescriptor
    ) -> GeneralAdmissionDecision:
        """Admit *candidate* with a fresh Eq.-(11) solution, or raise."""
        ids = list(self._active.keys())
        mix = [self._active[i] for i in ids] + [candidate]
        solution = solve_heterogeneous_k(mix, self.disk, self.budget_limit)
        if solution is None:
            self._audit_feasibility(mix, None)
            raise AdmissionRejected(
                "request rejected: no per-request k satisfies Eq. (11) "
                f"for the {len(mix)}-request mix",
                active=self.active_count,
                n_max=self.active_count,
            )
        assert round_feasible(mix, self.disk, solution)
        self._audit_feasibility(mix, solution)
        request_id = next(self._ids)
        ids.append(request_id)
        self._active[request_id] = candidate
        transition = 0
        for identifier, k_new in zip(ids, solution):
            k_old = self._k_values.get(identifier, 0)
            transition = max(transition, max(0, k_new - k_old))
            self._k_values[identifier] = k_new
        return GeneralAdmissionDecision(
            request_id=request_id,
            k_values=self.k_values(),
            transition_rounds=transition,
        )

    def _audit_feasibility(self, mix, solution) -> None:
        """Log the Eq.-(11) verdict with its recomputable operands.

        On a reject the per-request k_i are re-derived at the solver's
        budget limit — feasibility is monotone in the budget, so the
        logged inequality is false there iff no budget worked.
        """
        if self.audit is None:
            return
        import math

        def k_for(budget_value):
            return [
                max(1, math.ceil(budget_value / r.block_playback))
                for r in mix
            ]

        if solution is None:
            # Replay the solver's doubling sequence and log the last
            # infeasible point it tested, so the recorded inequality is
            # false by construction.
            b = min(r.block_playback for r in mix)
            ks = k_for(b)
            while True:
                probe = k_for(b)
                if round_time(mix, self.disk, probe) > min(
                    k * r.block_playback for k, r in zip(probe, mix)
                ):
                    ks = probe
                b *= 2.0
                if b > self.budget_limit:
                    break
        else:
            ks = list(solution)
        duration = round_time(mix, self.disk, ks)
        budget = min(
            k * r.block_playback for k, r in zip(ks, mix)
        )
        self.audit.record(
            "admit" if solution is not None else "reject",
            f"mix(n={len(mix)})",
            "round_seconds <= playback_budget_seconds",
            {
                "round_seconds": duration,
                "playback_budget_seconds": budget,
                "n": len(mix),
            },
            satisfied=solution is not None,
            detail=f"k_values={ks}",
        )

    def release(self, request_id: int) -> None:
        """Remove a request and re-solve (smaller k_i, immediately safe)."""
        if request_id not in self._active:
            raise ParameterError(f"unknown request id {request_id!r}")
        del self._active[request_id]
        del self._k_values[request_id]
        if not self._active:
            return
        ids = list(self._active.keys())
        solution = solve_heterogeneous_k(
            [self._active[i] for i in ids], self.disk, self.budget_limit
        )
        # Removing a request can only relax Eq. (11); the remaining set
        # was feasible before, so it stays solvable.
        assert solution is not None
        for identifier, k_new in zip(ids, solution):
            self._k_values[identifier] = k_new
