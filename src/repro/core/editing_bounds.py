"""Bounds on copying needed to maintain scattering while editing (§4.2).

Edits (INSERT, DELETE, ...) leave a rope pointing at a *sequence of
intervals* of immutable strands.  Inside each interval the scattering
parameter is bounded by construction, but at a seam — the jump from the
last block of one interval to the first block of the next — the two blocks
can be anywhere on the disk, up to ``l_seek_max`` apart.  Continuity can
therefore break exactly at interval boundaries.

The paper's repair: copy a small prefix of the second interval (or suffix
of the first) into the gap region, redistributing the copied blocks so
every consecutive pair again satisfies the scattering bounds
``[l_ds_lower, l_ds_upper]``.  With strand S_b's scattering bounded below
by ``l_ds_lower``, the number of blocks that must be copied is bounded by::

    C_b = ⌈ l_seek_max / (2·l_ds_lower) ⌉     (Eq. 19, sparsely occupied disk)
    C_b = ⌈ l_seek_max /  l_ds_lower    ⌉     (Eq. 20, densely occupied disk)

because m = l_seek_max / l_ds_lower copied blocks, spread at at-least-
l_ds_lower spacing, absorb the worst-case seam gap — and on a sparse disk
only the first m/2 need moving (free space lets the redistribution meet the
existing block b_{j+m/2} halfway).  Copying the *suffix* of S_a instead
gives the symmetric bound C_a; the planner picks the cheaper side.

Copied blocks form a **new strand** (strands are immutable, and a separate
strand keeps garbage collection simple), which the edited rope references
in place of the original prefix/suffix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.symbols import DiskParameters
from repro.errors import ParameterError

__all__ = [
    "copy_bound_sparse",
    "copy_bound_dense",
    "copy_bound",
    "SeamRepairBound",
    "seam_repair_bound",
    "DENSE_OCCUPANCY_THRESHOLD",
]

#: Disk-occupancy fraction above which the dense-disk bound (Eq. 20)
#: applies.  The paper distinguishes only "sparsely occupied" from
#: "densely occupied (i.e., nearly full)"; we draw the line at 80 %.
DENSE_OCCUPANCY_THRESHOLD = 0.80


def _validate(seek_max: float, scattering_lower: float) -> None:
    if seek_max < 0:
        raise ParameterError(f"seek_max must be >= 0, got {seek_max}")
    if scattering_lower <= 0:
        raise ParameterError(
            "scattering_lower must be positive for a finite copy bound "
            f"(got {scattering_lower}); strands placed without a lower "
            "scattering bound admit unbounded seam-repair copying"
        )


def copy_bound_sparse(seek_max: float, scattering_lower: float) -> int:
    """Eq. (19): max blocks copied on a sparsely occupied disk."""
    _validate(seek_max, scattering_lower)
    return math.ceil(seek_max / (2.0 * scattering_lower))


def copy_bound_dense(seek_max: float, scattering_lower: float) -> int:
    """Eq. (20): max blocks copied on a densely occupied (nearly full) disk."""
    _validate(seek_max, scattering_lower)
    return math.ceil(seek_max / scattering_lower)


def copy_bound(
    seek_max: float, scattering_lower: float, occupancy: float
) -> int:
    """Copy bound for the regime implied by current disk *occupancy*.

    Parameters
    ----------
    occupancy:
        Fraction of the disk in use, in [0, 1].
    """
    if not 0.0 <= occupancy <= 1.0:
        raise ParameterError(f"occupancy must be in [0, 1], got {occupancy}")
    if occupancy >= DENSE_OCCUPANCY_THRESHOLD:
        return copy_bound_dense(seek_max, scattering_lower)
    return copy_bound_sparse(seek_max, scattering_lower)


@dataclass(frozen=True)
class SeamRepairBound:
    """Both-sided copy bounds for one interval seam.

    The §4.2 algorithm may repair a seam by copying the leading blocks of
    the *following* interval (cost ≤ ``from_successor``) or the trailing
    blocks of the *preceding* interval (cost ≤ ``from_predecessor``);
    "the actual number of blocks that needs to be copied is the minimum
    of C_a and C_b."
    """

    from_predecessor: int
    from_successor: int
    dense: bool

    @property
    def copies(self) -> int:
        """The binding bound: min(C_a, C_b)."""
        return min(self.from_predecessor, self.from_successor)


def seam_repair_bound(
    disk: DiskParameters,
    predecessor_scattering_lower: float,
    successor_scattering_lower: float,
    occupancy: float,
) -> SeamRepairBound:
    """Worst-case copies to repair one seam between two strand intervals.

    Parameters
    ----------
    predecessor_scattering_lower / successor_scattering_lower:
        The lower scattering bounds (``l_ds_lower``) the two strands were
        placed with.  Each side's bound uses its own strand's spacing.
    occupancy:
        Current disk-occupancy fraction, selecting Eq. (19) vs Eq. (20).
    """
    dense = occupancy >= DENSE_OCCUPANCY_THRESHOLD
    if dense:
        c_a = copy_bound_dense(disk.seek_max, predecessor_scattering_lower)
        c_b = copy_bound_dense(disk.seek_max, successor_scattering_lower)
    else:
        c_a = copy_bound_sparse(disk.seek_max, predecessor_scattering_lower)
        c_b = copy_bound_sparse(disk.seek_max, successor_scattering_lower)
    return SeamRepairBound(
        from_predecessor=c_a, from_successor=c_b, dense=dense
    )
