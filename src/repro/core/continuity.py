"""Continuity requirements for the three retrieval architectures (§3.1).

For continuous retrieval, "media information [must] be available at the
display device at or before the time of its playback".  The paper derives
one inequality per architecture:

* **Sequential** (Fig. 1, Eq. 1): read and display strictly alternate, so
  read time plus display time must fit within one block's playback
  duration::

      l_ds + η_vs·s_vf/R_dr + η_vs·s_vf/R_vd  ≤  η_vs/R_vr

* **Pipelined** (Fig. 2, Eq. 2): with two device buffers, reads overlap
  display, so only the read must fit::

      l_ds + η_vs·s_vf/R_dr  ≤  η_vs/R_vr

* **Concurrent** (Fig. 3, Eq. 3): with p parallel disk accesses and p
  device buffers, a read may take as long as the playback of (p−1)
  blocks::

      l_ds + η_vs·s_vf/R_dr  ≤  (p−1)·η_vs/R_vr

§3.3.3 extends the analysis to one audio + one video stream (Eqs. 4–6):
with homogeneous blocks and audio blocks lasting n video-block durations,
an audio block is retrieved once per n video blocks; with heterogeneous
blocks (or zero audio↔video gap) the two transfers merge.  The OCR of
Eqs. (4)–(6) is garbled in our source; the forms implemented here are
reconstructed from the prose limits the paper states (see DESIGN.md §1).

Every function below returns *slack* — budget minus demand, in seconds per
block period — so callers can rank configurations by margin; feasibility is
``slack >= 0``.  The inverse problems (largest feasible scattering, smallest
feasible concurrency) are solved in closed form.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.symbols import BlockModel, DiskParameters, DisplayDeviceParameters
from repro.errors import InfeasibleError, ParameterError

__all__ = [
    "Architecture",
    "ContinuityVerdict",
    "sequential_slack",
    "pipelined_slack",
    "concurrent_slack",
    "slack",
    "is_continuous",
    "check",
    "max_scattering",
    "min_concurrency",
    "min_granularity",
    "mixed_homogeneous_slack",
    "mixed_heterogeneous_slack",
    "max_scattering_mixed",
    "effective_throughput",
    "buffers_required",
]


class Architecture(enum.Enum):
    """Disk-to-display transfer architecture (§3.1, Figs. 1–3)."""

    SEQUENTIAL = "sequential"
    PIPELINED = "pipelined"
    CONCURRENT = "concurrent"


@dataclass(frozen=True)
class ContinuityVerdict:
    """Outcome of a continuity check, with its arithmetic shown.

    Attributes
    ----------
    feasible:
        True when the continuity inequality holds.
    slack:
        Budget − demand, seconds per block period (negative ⇒ infeasible,
        and |slack| is the per-block lateness that will accumulate).
    budget:
        Right-hand side of the inequality (playback allowance), seconds.
    demand:
        Left-hand side (effective access time per block), seconds.
    """

    feasible: bool
    slack: float
    budget: float
    demand: float


def _validate_concurrency(p: int) -> None:
    if p < 1:
        raise ParameterError(f"concurrency p must be >= 1, got {p}")


# ---------------------------------------------------------------------------
# Eqs. (1)–(3): single-medium slack per architecture
# ---------------------------------------------------------------------------

def sequential_slack(
    block: BlockModel,
    disk: DiskParameters,
    device: DisplayDeviceParameters,
    scattering: float,
) -> float:
    """Eq. (1) slack: ``η/R − (l_ds + η·s/R_dr + η·s/R_vd)``."""
    demand = block.read_time(disk, scattering) + block.display_time(device)
    return block.playback_duration - demand


def pipelined_slack(
    block: BlockModel,
    disk: DiskParameters,
    scattering: float,
) -> float:
    """Eq. (2) slack: ``η/R − (l_ds + η·s/R_dr)``."""
    return block.playback_duration - block.read_time(disk, scattering)


def concurrent_slack(
    block: BlockModel,
    disk: DiskParameters,
    scattering: float,
    p: int,
) -> float:
    """Eq. (3) slack: ``(p−1)·η/R − (l_ds + η·s/R_dr)``.

    With p = 1 the architecture degenerates: a single head with "concurrent"
    buffering has no playback overlap at all, so the budget is zero and the
    configuration is never feasible for positive access times — callers
    should use the pipelined or sequential model instead.
    """
    _validate_concurrency(p)
    budget = (p - 1) * block.playback_duration
    return budget - block.read_time(disk, scattering)


def slack(
    architecture: Architecture,
    block: BlockModel,
    disk: DiskParameters,
    device: DisplayDeviceParameters,
    scattering: float,
    p: int = 1,
) -> float:
    """Dispatch to the architecture's continuity slack (Eqs. 1–3)."""
    if architecture is Architecture.SEQUENTIAL:
        return sequential_slack(block, disk, device, scattering)
    if architecture is Architecture.PIPELINED:
        return pipelined_slack(block, disk, scattering)
    if architecture is Architecture.CONCURRENT:
        return concurrent_slack(block, disk, scattering, p)
    raise ParameterError(f"unknown architecture: {architecture!r}")


def is_continuous(
    architecture: Architecture,
    block: BlockModel,
    disk: DiskParameters,
    device: DisplayDeviceParameters,
    scattering: float,
    p: int = 1,
) -> bool:
    """True when the continuity requirement holds for this configuration."""
    return slack(architecture, block, disk, device, scattering, p) >= 0.0


def check(
    architecture: Architecture,
    block: BlockModel,
    disk: DiskParameters,
    device: DisplayDeviceParameters,
    scattering: float,
    p: int = 1,
) -> ContinuityVerdict:
    """Full verdict with budget/demand decomposition for reporting."""
    if architecture is Architecture.CONCURRENT:
        _validate_concurrency(p)
        budget = (p - 1) * block.playback_duration
    else:
        budget = block.playback_duration
    if architecture is Architecture.SEQUENTIAL:
        demand = block.read_time(disk, scattering) + block.display_time(device)
    else:
        demand = block.read_time(disk, scattering)
    margin = budget - demand
    return ContinuityVerdict(
        feasible=margin >= 0.0, slack=margin, budget=budget, demand=demand
    )


# ---------------------------------------------------------------------------
# Inverse problems (§3.3.4): solve each equation for one unknown
# ---------------------------------------------------------------------------

def max_scattering(
    architecture: Architecture,
    block: BlockModel,
    disk: DiskParameters,
    device: DisplayDeviceParameters,
    p: int = 1,
) -> float:
    """Upper bound on the scattering parameter ``l_ds`` (§3.3.4).

    Obtained "by direct substitution in the continuity equations" — setting
    slack to zero and solving for ``l_ds``.

    Raises
    ------
    InfeasibleError
        If even contiguous placement (``l_ds = 0``) cannot satisfy the
        continuity requirement, i.e. the disk/device simply cannot keep up
        with the recording rate at this granularity and architecture.
    """
    bound = slack(architecture, block, disk, device, 0.0, p)
    if bound < 0.0:
        raise InfeasibleError(
            f"{architecture.value} retrieval infeasible even at l_ds=0: "
            f"deficit {-bound:.6f} s per block "
            f"(block={block.block_bits:.0f} bits, "
            f"playback={block.playback_duration:.6f} s)"
        )
    return bound


def min_concurrency(
    block: BlockModel,
    disk: DiskParameters,
    scattering: float,
) -> int:
    """Smallest p for which the concurrent architecture (Eq. 3) is feasible.

    Solving ``l_ds + η·s/R_dr ≤ (p−1)·η/R`` for p gives
    ``p ≥ 1 + read_time/playback_duration``.
    """
    read = block.read_time(disk, scattering)
    return 1 + math.ceil(read / block.playback_duration)


def min_granularity(
    architecture: Architecture,
    block: BlockModel,
    disk: DiskParameters,
    device: DisplayDeviceParameters,
    scattering: float,
    p: int = 1,
    granularity_limit: int = 1 << 20,
) -> int:
    """Smallest granularity η for which continuity holds at *scattering*.

    Growing a block amortizes the fixed per-block gap ``l_ds`` over more
    playback time.  All three inequalities are linear in η, e.g. pipelined::

        l_ds + η·s/R_dr ≤ η/R   ⇔   η ≥ l_ds / (1/R − s/R_dr)

    Raises
    ------
    InfeasibleError
        If the per-unit budget (``1/R`` minus per-unit transfer and display
        time) is non-positive, so no granularity helps.
    """
    per_unit_budget = block.playback_duration / block.granularity
    if architecture is Architecture.CONCURRENT:
        _validate_concurrency(p)
        per_unit_budget *= (p - 1)
    per_unit_cost = block.unit_size / disk.transfer_rate
    if architecture is Architecture.SEQUENTIAL:
        per_unit_cost += block.unit_size / device.display_rate
    headroom = per_unit_budget - per_unit_cost
    if headroom <= 0.0:
        raise InfeasibleError(
            f"{architecture.value} retrieval infeasible at any granularity: "
            f"per-unit budget {per_unit_budget:.9f} s <= "
            f"per-unit cost {per_unit_cost:.9f} s"
        )
    eta = max(1, math.ceil(scattering / headroom))
    if eta > granularity_limit:
        raise InfeasibleError(
            f"granularity {eta} exceeds limit {granularity_limit}"
        )
    return eta


# ---------------------------------------------------------------------------
# §3.3.3: mixed audio + video continuity (Eqs. 4–6, reconstructed)
# ---------------------------------------------------------------------------

def mixed_homogeneous_slack(
    video: BlockModel,
    audio: BlockModel,
    disk: DiskParameters,
    scattering: float,
) -> float:
    """Eqs. (4)/(5) slack: homogeneous blocks, pipelined retrieval.

    Let the audio block's playback duration be n video-block durations;
    "an audio block is retrieved from disk for every n video blocks", so
    over one audio period the disk performs n video reads and 1 audio read::

        n·(l_ds + η_vs·s_vf/R_dr) + l_ds + η_as·s_as/R_dr ≤ n·η_vs/R_vr

    n is derived from the two block models and need not be an integer; the
    inequality is evaluated over one audio-block period either way.  With
    n = 1 this reduces to the paper's Eq. (5)::

        2·l_ds + (η_vs·s_vf + η_as·s_as)/R_dr ≤ η_vs/R_vr
    """
    n = audio.playback_duration / video.playback_duration
    demand = (
        n * video.read_time(disk, scattering)
        + audio.read_time(disk, scattering)
    )
    budget = n * video.playback_duration
    return budget - demand


def mixed_heterogeneous_slack(
    video: BlockModel,
    audio: BlockModel,
    disk: DiskParameters,
    scattering: float,
) -> float:
    """Eq. (6) slack: heterogeneous blocks (or zero audio↔video gap).

    Audio and video data for the same period share one block (or are laid
    out with zero gap), so there is a single positioning delay per period::

        l_ds + (η_vs·s_vf + η_as·s_as)/R_dr ≤ η_vs/R_vr

    Evaluated over one video-block period, with the audio payload scaled to
    the amount that plays back in that period.
    """
    audio_bits_per_video_block = audio.unit_rate * audio.unit_size * (
        video.playback_duration
    )
    combined_bits = video.block_bits + audio_bits_per_video_block
    demand = disk.access_time(combined_bits, scattering)
    return video.playback_duration - demand


def max_scattering_mixed(
    video: BlockModel,
    audio: BlockModel,
    disk: DiskParameters,
    heterogeneous: bool,
) -> float:
    """Largest ``l_ds`` satisfying the mixed-media continuity requirement.

    For homogeneous blocks the gap is paid (n+1) times per audio period, so
    the zero-scattering slack is divided across those gaps; for
    heterogeneous blocks it is paid once per video block.
    """
    if heterogeneous:
        bound = mixed_heterogeneous_slack(video, audio, disk, 0.0)
        gaps = 1.0
    else:
        bound = mixed_homogeneous_slack(video, audio, disk, 0.0)
        gaps = audio.playback_duration / video.playback_duration + 1.0
    if bound < 0.0:
        kind = "heterogeneous" if heterogeneous else "homogeneous"
        raise InfeasibleError(
            f"mixed-media ({kind} blocks) retrieval infeasible even at "
            f"l_ds=0: deficit {-bound:.6f} s"
        )
    return bound / gaps


# ---------------------------------------------------------------------------
# Aggregate throughput and buffer counts
# ---------------------------------------------------------------------------

def effective_throughput(
    block_bits: float,
    disk: DiskParameters,
    gap: float,
) -> float:
    """Aggregate sustained transfer rate with per-block positioning gaps.

    This is the arithmetic behind the paper's HDTV example: each of the
    disk's p heads delivers ``block_bits`` every ``gap + block/R_dr``
    seconds, so a 100-head array with ~10 ms access and 4 KByte blocks
    sustains ≈0.32 Gbit/s regardless of its streaming rate.
    """
    per_head = block_bits / disk.access_time(block_bits, gap)
    return disk.heads * per_head


def buffers_required(architecture: Architecture, p: int = 1) -> int:
    """Device buffers needed under strict continuity (§3.3.2).

    "the sequential, pipelined, and concurrent architectures require 1, 2,
    and p buffers, respectively."
    """
    if architecture is Architecture.SEQUENTIAL:
        return 1
    if architecture is Architecture.PIPELINED:
        return 2
    if architecture is Architecture.CONCURRENT:
        _validate_concurrency(p)
        return p
    raise ParameterError(f"unknown architecture: {architecture!r}")
