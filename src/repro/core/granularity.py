"""Determining storage granularity and scattering (§3.3.4).

Granularity (η, units per block) is chosen from the *display device's*
internal buffer capacity, because with direct disk→device transfer the
device buffer is where a block lands:

* buffer holds one frame  → η = 1;
* pipelined retrieval with an f-frame buffer → the buffer is split in two
  halves, η ∈ [1, f/2];
* concurrent retrieval with p accesses and an f-frame buffer → η ∈ [1, f/p].

Once η is fixed, the *upper* bound on the scattering parameter l_ds follows
by direct substitution into the continuity equations (§3.1), and the
*lower* bound follows from the editing-copy analysis of §4.2: the number of
blocks copied to repair a seam is ``⌈l_seek_max / (2·l_lower)⌉``, so a
target copy budget implies a minimum l_lower.  §6.1 summarizes: "the
separation between consecutive blocks of a strand must be chosen within
these bounds."

The result is a :class:`PlacementPolicy` — the contract handed to the disk
allocator: put η units in each block, and place consecutive blocks so their
positioning delay lies in ``[scattering_lower, scattering_upper]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import continuity
from repro.core.continuity import Architecture
from repro.core.symbols import (
    BlockModel,
    DiskParameters,
    DisplayDeviceParameters,
)
from repro.errors import InfeasibleError, ParameterError

__all__ = [
    "PlacementPolicy",
    "granularity_range",
    "max_granularity",
    "scattering_lower_bound",
    "derive_policy",
]


@dataclass(frozen=True)
class PlacementPolicy:
    """A derived storage contract for one medium on one device pair.

    Attributes
    ----------
    granularity:
        η — media units stored per disk block.
    block_bits:
        Size of each block in bits (η · unit size).
    scattering_lower:
        Minimum inter-block positioning delay the allocator may produce,
        seconds (from the §4.2 editing-copy budget; 0 when unconstrained).
    scattering_upper:
        Maximum inter-block positioning delay, seconds (from continuity).
    architecture:
        The retrieval architecture the bounds were derived for.
    concurrency:
        p used for the concurrent architecture (1 otherwise).
    """

    granularity: int
    block_bits: float
    scattering_lower: float
    scattering_upper: float
    architecture: Architecture
    concurrency: int = 1

    def __post_init__(self) -> None:
        if self.granularity < 1:
            raise ParameterError(
                f"granularity must be >= 1, got {self.granularity}"
            )
        if self.scattering_lower < 0:
            raise ParameterError(
                f"scattering_lower must be >= 0, got {self.scattering_lower}"
            )
        if self.scattering_upper < self.scattering_lower:
            raise InfeasibleError(
                f"empty scattering window: lower {self.scattering_lower:.6f} s"
                f" > upper {self.scattering_upper:.6f} s — the editing-copy "
                "budget and the continuity requirement are incompatible"
            )

    @property
    def scattering_window(self) -> float:
        """Width of the allowed scattering interval, seconds."""
        return self.scattering_upper - self.scattering_lower

    def admits(self, gap: float) -> bool:
        """True when an inter-block gap satisfies this policy."""
        return self.scattering_lower <= gap <= self.scattering_upper


def granularity_range(
    architecture: Architecture,
    device: DisplayDeviceParameters,
    p: int = 1,
) -> range:
    """Feasible granularities given the device's internal buffer (§3.3.4).

    Returns a ``range`` over valid η values (always starting at 1).
    """
    f = device.buffer_frames
    if architecture is Architecture.SEQUENTIAL:
        upper = f
    elif architecture is Architecture.PIPELINED:
        upper = f // 2
    elif architecture is Architecture.CONCURRENT:
        if p < 1:
            raise ParameterError(f"concurrency p must be >= 1, got {p}")
        upper = f // p
    else:
        raise ParameterError(f"unknown architecture: {architecture!r}")
    if upper < 1:
        raise InfeasibleError(
            f"device buffer of {f} frames cannot support "
            f"{architecture.value} retrieval"
            + (f" with p={p}" if architecture is Architecture.CONCURRENT else "")
        )
    return range(1, upper + 1)


def max_granularity(
    architecture: Architecture,
    device: DisplayDeviceParameters,
    p: int = 1,
) -> int:
    """Largest feasible η for the device buffer (top of §3.3.4's range).

    Larger blocks amortize seeks over more playback time, so the top of the
    range maximizes the scattering tolerance; policy derivation defaults
    to it.
    """
    feasible = granularity_range(architecture, device, p)
    return feasible[-1]


def scattering_lower_bound(disk: DiskParameters, copy_budget: int) -> float:
    """Minimum l_ds so that seam repair copies at most *copy_budget* blocks.

    Inverts the sparse-disk copy bound of Eq. (19),
    ``C_b = l_seek_max / (2·l_lower)``, giving
    ``l_lower = l_seek_max / (2·C_b)``.

    A ``copy_budget`` of 0 disables the constraint (returns 0.0): the
    caller accepts unbounded copying, so blocks may be packed contiguously.
    """
    if copy_budget < 0:
        raise ParameterError(f"copy_budget must be >= 0, got {copy_budget}")
    if copy_budget == 0:
        return 0.0
    return disk.seek_max / (2.0 * copy_budget)


def derive_policy(
    block: BlockModel,
    disk: DiskParameters,
    device: DisplayDeviceParameters,
    architecture: Architecture = Architecture.PIPELINED,
    p: int = 1,
    copy_budget: int = 0,
    granularity: int = None,
) -> PlacementPolicy:
    """Derive the full placement policy for one medium (§3.3.4 + §4.2).

    Parameters
    ----------
    block:
        A block model carrying the medium's unit rate and size; its
        granularity field is ignored unless *granularity* is None and the
        device-derived choice is wanted instead.
    copy_budget:
        Maximum blocks the §4.2 seam-repair algorithm may copy per edit on
        a sparsely occupied disk; sets the scattering lower bound
        (0 ⇒ no lower bound).
    granularity:
        Explicit η override; by default the largest value the device
        buffer admits.

    Raises
    ------
    InfeasibleError
        If no granularity in the device's range satisfies continuity, or
        if the copy budget forces a lower bound above the continuity upper
        bound.
    """
    if granularity is None:
        eta = max_granularity(architecture, device, p)
    else:
        feasible = granularity_range(architecture, device, p)
        if granularity not in feasible:
            raise ParameterError(
                f"granularity {granularity} outside device-feasible range "
                f"[1, {feasible[-1]}] for {architecture.value} retrieval"
            )
        eta = granularity
    sized = block.with_granularity(eta)
    upper = continuity.max_scattering(architecture, sized, disk, device, p)
    lower = scattering_lower_bound(disk, copy_budget)
    return PlacementPolicy(
        granularity=eta,
        block_bits=sized.block_bits,
        scattering_lower=lower,
        scattering_upper=upper,
        architecture=architecture,
        concurrency=p if architecture is Architecture.CONCURRENT else 1,
    )
