"""Variable-rate compression extension (§6.2 future work).

"variable rate compression of video (analogous to silence elimination in
audio), such as differencing between frames, can result in varying but
smaller sizes of video frames, thereby yielding better bounds for
granularity and scattering.  We are extending the continuity equations to
incorporate such effects of compression algorithms."

This module carries out that extension for the pipelined architecture.
With per-frame sizes varying (key frames large, difference frames small),
a block of η frames has a size anywhere in
``[min_block_bits, max_block_bits]``.  Two regimes follow:

* **Strict continuity** — every block individually meets its deadline, so
  the bound must budget for the *largest possible block*::

      l_ds ≤ η/R − max_block_bits/R_dr

* **Average continuity over one size group** — with a read-ahead of one
  group (the §3.3.2 anti-jitter mechanism), only the *group's mean* block
  size must stream in real time::

      l_ds ≤ η/R − mean_block_bits/R_dr

The §6.2 claim is quantified by :func:`vbr_gain`: the averaged
variable-rate bound strictly dominates the constant-rate bound whenever
the codec's mean frame is smaller than its nominal (key-frame) size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.symbols import DiskParameters, VideoStream
from repro.errors import InfeasibleError, ParameterError
from repro.media.codec import Codec

__all__ = [
    "BlockSizeProfile",
    "block_size_profile",
    "strict_scattering_bound",
    "average_scattering_bound",
    "VbrComparison",
    "vbr_gain",
    "group_read_ahead",
]


@dataclass(frozen=True)
class BlockSizeProfile:
    """Block-size statistics of a variable-rate stream at granularity η.

    Attributes
    ----------
    granularity:
        Frames per block.
    min_bits / mean_bits / max_bits:
        Smallest, long-run average, and largest possible block size over
        the codec's size group.
    group_blocks:
        Blocks per codec size group (the periodicity of the size
        pattern) — the averaging window for the relaxed bound.
    """

    granularity: int
    min_bits: float
    mean_bits: float
    max_bits: float
    group_blocks: int

    def __post_init__(self) -> None:
        if not self.min_bits <= self.mean_bits <= self.max_bits:
            raise ParameterError(
                f"inconsistent size profile: min {self.min_bits}, "
                f"mean {self.mean_bits}, max {self.max_bits}"
            )
        if self.granularity < 1 or self.group_blocks < 1:
            raise ParameterError("granularity and group_blocks must be >= 1")

    @property
    def variability(self) -> float:
        """max/mean ratio — 1.0 for constant-rate streams."""
        return self.max_bits / self.mean_bits


def block_size_profile(
    stream: VideoStream, codec: Codec, granularity: int
) -> BlockSizeProfile:
    """Measure a codec's block-size statistics at granularity η.

    The codec is sampled over one full size group (compression patterns
    are periodic in the frame index), packed into η-frame blocks exactly
    as the storage manager packs them.
    """
    if granularity < 1:
        raise ParameterError(f"granularity must be >= 1, got {granularity}")
    raw = stream.frame_size * codec.nominal_ratio
    group_frames = getattr(codec, "group_size", 1)
    # Cover a whole number of blocks AND a whole number of size groups.
    span = _lcm(granularity, group_frames)
    frame_bits = [
        codec.compressed_bits(raw, index) for index in range(span)
    ]
    block_bits: List[float] = [
        sum(frame_bits[start:start + granularity])
        for start in range(0, span, granularity)
    ]
    return BlockSizeProfile(
        granularity=granularity,
        min_bits=min(block_bits),
        mean_bits=sum(block_bits) / len(block_bits),
        max_bits=max(block_bits),
        group_blocks=len(block_bits),
    )


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)


def _bound(
    stream: VideoStream,
    granularity: int,
    block_bits: float,
    disk: DiskParameters,
    label: str,
) -> float:
    playback = granularity / stream.frame_rate
    bound = playback - block_bits / disk.transfer_rate
    if bound < 0:
        raise InfeasibleError(
            f"{label} bound infeasible: block of {block_bits:.0f} bits "
            f"cannot stream within {playback:.6f} s"
        )
    return bound


def strict_scattering_bound(
    stream: VideoStream,
    profile: BlockSizeProfile,
    disk: DiskParameters,
) -> float:
    """Pipelined scattering bound under strict per-block continuity.

    Budgets every block as if it were the largest the codec can emit.
    """
    return _bound(
        stream, profile.granularity, profile.max_bits, disk, "strict VBR"
    )


def average_scattering_bound(
    stream: VideoStream,
    profile: BlockSizeProfile,
    disk: DiskParameters,
) -> float:
    """Pipelined scattering bound under group-averaged continuity.

    Valid when the display read-ahead covers one size group
    (:func:`group_read_ahead`): bursts of large (key-frame) blocks are
    absorbed by the buffered small blocks around them, so only the mean
    must stream in real time.
    """
    return _bound(
        stream, profile.granularity, profile.mean_bits, disk, "average VBR"
    )


def group_read_ahead(profile: BlockSizeProfile) -> int:
    """Read-ahead (blocks) that makes the averaged bound valid.

    One full size group: after buffering it, every subsequent window of
    ``group_blocks`` blocks has exactly the mean aggregate size.
    """
    return profile.group_blocks


@dataclass(frozen=True)
class VbrComparison:
    """The §6.2 comparison: constant-rate vs variable-rate bounds."""

    cbr_bound: float
    vbr_strict_bound: float
    vbr_average_bound: float
    profile: BlockSizeProfile

    @property
    def gain(self) -> float:
        """Averaged-VBR bound relative to the CBR bound (>1 = better)."""
        if self.cbr_bound <= 0:
            return float("inf")
        return self.vbr_average_bound / self.cbr_bound


def vbr_gain(
    stream: VideoStream,
    codec: Codec,
    granularity: int,
    disk: DiskParameters,
) -> VbrComparison:
    """Quantify §6.2: how much scattering tolerance VBR compression buys.

    The CBR baseline stores every frame at the stream's nominal
    (key-frame-sized) ``frame_size``; the VBR stream stores the codec's
    actual sizes.  Pipelined architecture throughout.
    """
    profile = block_size_profile(stream, codec, granularity)
    cbr_bits = granularity * stream.frame_size
    cbr = _bound(stream, granularity, cbr_bits, disk, "CBR")
    return VbrComparison(
        cbr_bound=cbr,
        vbr_strict_bound=strict_scattering_bound(stream, profile, disk),
        vbr_average_bound=average_scattering_bound(stream, profile, disk),
        profile=profile,
    )
