"""The paper's analytical core: continuity, granularity, admission, editing.

This package contains the equations of §§2–4 of Rangan & Vin (SOSP 1991):

* :mod:`repro.core.symbols` — the Table-1 parameter model;
* :mod:`repro.core.continuity` — Eqs. (1)–(6), the continuity requirements
  of the sequential / pipelined / concurrent retrieval architectures and
  the mixed audio+video cases;
* :mod:`repro.core.granularity` — §3.3.4, deriving storage granularity and
  the scattering window from device buffers and the copy budget;
* :mod:`repro.core.buffering` — §3.3.2, buffer and read-ahead requirements;
* :mod:`repro.core.admission` — §3.4, the (α, β, γ) model, Eqs. (15)–(18),
  n_max, and the transition-safe admission controller;
* :mod:`repro.core.editing_bounds` — §4.2, Eqs. (19)/(20) seam-repair
  copy bounds.
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    RequestDescriptor,
    ServiceParameters,
    TransitionPlan,
    k_steady,
    k_transition,
    n_max,
    round_feasible,
    round_time,
    service_parameters,
    solve_heterogeneous_k,
)
from repro.core.buffering import (
    BufferPlan,
    buffers_for_average_continuity,
    fast_forward_block,
    read_ahead_required,
    slow_motion_accumulation_rate,
    task_switch_read_ahead,
)
from repro.core.continuity import (
    Architecture,
    ContinuityVerdict,
    buffers_required,
    check,
    concurrent_slack,
    effective_throughput,
    is_continuous,
    max_scattering,
    max_scattering_mixed,
    min_concurrency,
    min_granularity,
    mixed_heterogeneous_slack,
    mixed_homogeneous_slack,
    pipelined_slack,
    sequential_slack,
    slack,
)
from repro.core.editing_bounds import (
    SeamRepairBound,
    copy_bound,
    copy_bound_dense,
    copy_bound_sparse,
    seam_repair_bound,
)
from repro.core.general_admission import (
    GeneralAdmissionController,
    GeneralAdmissionDecision,
)
from repro.core.granularity import (
    PlacementPolicy,
    derive_policy,
    granularity_range,
    max_granularity,
    scattering_lower_bound,
)
from repro.core.symbols import (
    AudioStream,
    BlockModel,
    DiskParameters,
    DisplayDeviceParameters,
    VideoStream,
    audio_block_model,
    video_block_model,
)
from repro.core.variable_rate import (
    BlockSizeProfile,
    VbrComparison,
    average_scattering_bound,
    block_size_profile,
    group_read_ahead,
    strict_scattering_bound,
    vbr_gain,
)

__all__ = [
    # symbols
    "AudioStream",
    "BlockModel",
    "DiskParameters",
    "DisplayDeviceParameters",
    "VideoStream",
    "audio_block_model",
    "video_block_model",
    # continuity
    "Architecture",
    "ContinuityVerdict",
    "buffers_required",
    "check",
    "concurrent_slack",
    "effective_throughput",
    "is_continuous",
    "max_scattering",
    "max_scattering_mixed",
    "min_concurrency",
    "min_granularity",
    "mixed_heterogeneous_slack",
    "mixed_homogeneous_slack",
    "pipelined_slack",
    "sequential_slack",
    "slack",
    # granularity
    "PlacementPolicy",
    "derive_policy",
    "granularity_range",
    "max_granularity",
    "scattering_lower_bound",
    # buffering
    "BufferPlan",
    "buffers_for_average_continuity",
    "fast_forward_block",
    "read_ahead_required",
    "slow_motion_accumulation_rate",
    "task_switch_read_ahead",
    # admission
    "AdmissionController",
    "AdmissionDecision",
    "GeneralAdmissionController",
    "GeneralAdmissionDecision",
    "RequestDescriptor",
    "ServiceParameters",
    "TransitionPlan",
    "k_steady",
    "k_transition",
    "n_max",
    "round_feasible",
    "round_time",
    "service_parameters",
    "solve_heterogeneous_k",
    # editing bounds
    "SeamRepairBound",
    "copy_bound",
    "copy_bound_dense",
    "copy_bound_sparse",
    "seam_repair_bound",
    # variable rate (§6.2 extension)
    "BlockSizeProfile",
    "VbrComparison",
    "average_scattering_bound",
    "block_size_profile",
    "group_read_ahead",
    "strict_scattering_bound",
    "vbr_gain",
]
