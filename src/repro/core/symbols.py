"""Table-1 symbol model: typed parameter sets for media, disk, and devices.

The paper's analysis (§2, Table 1) is carried out over a small vocabulary of
symbols.  This module gives each symbol a home in a frozen dataclass and
derives the three compound quantities §2 defines from them:

* *duration of playback* of a video block: ``η_vs / R_vr``,
* *total delay to read* a video block: ``l_ds + η_vs·s_vf / R_dr``,
* *time to display* a video block: ``η_vs·s_vf / R_vd``.

The same arithmetic applies to audio blocks with (``η_as``, ``s_as``,
``R_va``), so the block-level model is expressed once, generically, as
:class:`BlockModel` and instantiated for either medium.

Symbol correspondence (paper → code):

====================  ==========================================
``R_va``              ``AudioStream.sample_rate`` (samples/s)
``R_vr``              ``VideoStream.frame_rate`` (frames/s)
``R_dr``              ``DiskParameters.transfer_rate`` (bits/s)
``R_vd``              ``DisplayDeviceParameters.display_rate`` (bits/s)
``η_vs``              ``BlockModel.granularity`` (frames/block)
``η_as``              ``BlockModel.granularity`` (samples/block)
``s_vf``              ``VideoStream.frame_size`` (bits/frame)
``s_as``              ``AudioStream.sample_size`` (bits/sample)
``l_ds``              scattering parameter (seconds) — an argument,
                      not a stored field, because deriving it is the
                      whole point of §3
====================  ==========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = [
    "VideoStream",
    "AudioStream",
    "DiskParameters",
    "DisplayDeviceParameters",
    "BlockModel",
    "video_block_model",
    "audio_block_model",
]


def _require_positive(name: str, value: float) -> None:
    """Reject non-positive physical quantities with a uniform message."""
    if not value > 0:
        raise ParameterError(f"{name} must be positive, got {value!r}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ParameterError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class VideoStream:
    """A video recording's rate and per-frame size.

    Parameters
    ----------
    frame_rate:
        ``R_vr`` — recording (and therefore playback) rate in frames/second.
    frame_size:
        ``s_vf`` — size of one (compressed) video frame in bits.
    """

    frame_rate: float
    frame_size: float

    def __post_init__(self) -> None:
        _require_positive("frame_rate", self.frame_rate)
        _require_positive("frame_size", self.frame_size)

    @property
    def bit_rate(self) -> float:
        """Sustained data rate of the stream in bits/second."""
        return self.frame_rate * self.frame_size

    @property
    def unit_duration(self) -> float:
        """Duration of one frame in seconds (1/R_vr)."""
        return 1.0 / self.frame_rate


@dataclass(frozen=True)
class AudioStream:
    """An audio recording's sample rate and per-sample size.

    Parameters
    ----------
    sample_rate:
        ``R_va`` — samples per second.
    sample_size:
        ``s_as`` — size of one sample in bits.
    """

    sample_rate: float
    sample_size: float

    def __post_init__(self) -> None:
        _require_positive("sample_rate", self.sample_rate)
        _require_positive("sample_size", self.sample_size)

    @property
    def bit_rate(self) -> float:
        """Sustained data rate of the stream in bits/second."""
        return self.sample_rate * self.sample_size

    @property
    def unit_duration(self) -> float:
        """Duration of one sample in seconds (1/R_va)."""
        return 1.0 / self.sample_rate


@dataclass(frozen=True)
class DiskParameters:
    """Disk characteristics the continuity analysis depends on.

    The paper folds rotational latency into its seek figures ("access and
    latency times"); we follow suit — ``seek_max`` and ``seek_avg`` are
    *access* times inclusive of rotational latency.

    Parameters
    ----------
    transfer_rate:
        ``R_dr`` — bits/second moved once the head is positioned.
    seek_max:
        ``l_seek_max`` — worst-case access time between any two blocks
        (full-stroke seek + rotational latency), seconds.
    seek_avg:
        Average access time used when the paper substitutes averages
        (``l_ds_avg`` in Eqs. 12–14), seconds.
    seek_track:
        ``l_min_seek`` — access time between adjacent cylinders, seconds.
        Used in the §3 buffering bound for unconstrained allocation.
    cylinders:
        ``n_cyl`` — total cylinder count.
    heads:
        ``p`` — number of independently positionable heads (degree of disk
        concurrency).  1 for a plain drive, >1 for a RAID-like array.
    """

    transfer_rate: float
    seek_max: float
    seek_avg: float
    seek_track: float
    cylinders: int = 1000
    heads: int = 1

    def __post_init__(self) -> None:
        _require_positive("transfer_rate", self.transfer_rate)
        _require_non_negative("seek_max", self.seek_max)
        _require_non_negative("seek_avg", self.seek_avg)
        _require_non_negative("seek_track", self.seek_track)
        if self.seek_avg > self.seek_max:
            raise ParameterError(
                f"seek_avg ({self.seek_avg}) cannot exceed "
                f"seek_max ({self.seek_max})"
            )
        if self.seek_track > self.seek_avg:
            raise ParameterError(
                f"seek_track ({self.seek_track}) cannot exceed "
                f"seek_avg ({self.seek_avg})"
            )
        if self.cylinders < 1:
            raise ParameterError(f"cylinders must be >= 1, got {self.cylinders}")
        if self.heads < 1:
            raise ParameterError(f"heads must be >= 1, got {self.heads}")

    def transfer_time(self, size_bits: float) -> float:
        """Time to transfer *size_bits* once positioned, in seconds."""
        _require_non_negative("size_bits", size_bits)
        return size_bits / self.transfer_rate

    def access_time(self, size_bits: float, gap: float) -> float:
        """Total delay to read a block: positioning gap + transfer.

        This is the left-hand side building block of every continuity
        equation: ``gap + size/R_dr``.
        """
        _require_non_negative("gap", gap)
        return gap + self.transfer_time(size_bits)

    def unconstrained_buffer_bound(self, seek_target: float) -> int:
        """§3 bound on out-of-order buffering under *random* allocation.

        With unconstrained placement, achieving an average seek of
        *seek_target* by sweeping the cylinders requires buffering up to
        ``l_seek_track · n_cyl / seek_target`` blocks.
        """
        _require_positive("seek_target", seek_target)
        return math.ceil(self.seek_track * self.cylinders / seek_target)


@dataclass(frozen=True)
class DisplayDeviceParameters:
    """Display-side device characteristics (§3.3.4).

    Parameters
    ----------
    display_rate:
        ``R_vd`` — bits/second the device consumes while decompressing and
        converting a block for display.
    buffer_frames:
        ``f`` — capacity of the device's internal buffer, in frames (or
        samples, for an audio device).  Determines the feasible granularity
        range per §3.3.4.
    """

    display_rate: float
    buffer_frames: int = 2

    def __post_init__(self) -> None:
        _require_positive("display_rate", self.display_rate)
        if self.buffer_frames < 1:
            raise ParameterError(
                f"buffer_frames must be >= 1, got {self.buffer_frames}"
            )


@dataclass(frozen=True)
class BlockModel:
    """A media block: *granularity* units of a stream, stored contiguously.

    Works identically for video (units = frames) and audio (units =
    samples); use :func:`video_block_model` / :func:`audio_block_model`
    to construct one from a stream descriptor.

    Parameters
    ----------
    unit_rate:
        Units (frames or samples) recorded per second — ``R_vr`` or ``R_va``.
    unit_size:
        Bits per unit — ``s_vf`` or ``s_as``.
    granularity:
        Units per block — ``η_vs`` or ``η_as``.
    """

    unit_rate: float
    unit_size: float
    granularity: int

    def __post_init__(self) -> None:
        _require_positive("unit_rate", self.unit_rate)
        _require_positive("unit_size", self.unit_size)
        if self.granularity < 1:
            raise ParameterError(
                f"granularity must be >= 1 unit/block, got {self.granularity}"
            )

    @property
    def block_bits(self) -> float:
        """Size of one block in bits: ``η · s``."""
        return self.granularity * self.unit_size

    @property
    def playback_duration(self) -> float:
        """Duration of playback (== recording) of one block: ``η / R``."""
        return self.granularity / self.unit_rate

    @property
    def blocks_per_second(self) -> float:
        """Block consumption rate during normal-speed playback."""
        return self.unit_rate / self.granularity

    def read_time(self, disk: DiskParameters, scattering: float) -> float:
        """Total delay to read one block: ``l_ds + η·s / R_dr`` (§2)."""
        return disk.access_time(self.block_bits, scattering)

    def display_time(self, device: DisplayDeviceParameters) -> float:
        """Time to display one block: ``η·s / R_vd`` (§2)."""
        return self.block_bits / device.display_rate

    def with_granularity(self, granularity: int) -> "BlockModel":
        """Return a copy of this model at a different granularity."""
        return BlockModel(self.unit_rate, self.unit_size, granularity)


def video_block_model(stream: VideoStream, granularity: int) -> BlockModel:
    """Build the block model for *granularity* frames/block of *stream*."""
    return BlockModel(stream.frame_rate, stream.frame_size, granularity)


def audio_block_model(stream: AudioStream, granularity: int) -> BlockModel:
    """Build the block model for *granularity* samples/block of *stream*."""
    return BlockModel(stream.sample_rate, stream.sample_size, granularity)
