"""The public request/response surface of the media server.

Everything a client says to the reproduction's file server — and
everything the server says back — is one of the typed messages in this
module.  The scattered entry points the repo grew up with
(``MultimediaStorageManager`` + ``MultimediaRopeServer`` +
``PlaybackSession`` hand-wired per caller) remain available for library
use, but the supported public surface is:

* :class:`OpenSessionRequest` / :class:`OpenSessionResponse` — ask for a
  playback session over a rope interval; the response carries either a
  session ID or a typed :class:`RejectReason` (never a bare exception
  for overload);
* :class:`PlayRequest`, :class:`PauseRequest`, :class:`ResumeRequest`,
  :class:`StopRequest` — the §4.1 lifecycle verbs, addressed by session;
* :class:`SessionStatus` — one session's lifecycle state and continuity
  outcome (cluster deployments also stamp the serving node and handoff
  count);
* :class:`ServeResult` — the outcome of one served request queue.

The same surface covers cluster deployments
(:class:`repro.cluster.MediaCluster`) through the cluster-addressed
messages:

* :class:`NodeStatus` — identity and health of one cluster node;
* :class:`HandoffRecord` — one inter-node session handoff decision;
* :class:`NodeServeResult` — one node's per-chunk :class:`ServeResult`
  sequence;
* :class:`ClusterServeResult` — the cluster-level aggregate: statuses,
  typed rejects, the placement map, the admission order, and every
  handoff, all byte-deterministic under a fixed seed.

:class:`repro.server.MediaServer` consumes and produces these types;
:class:`repro.service.session.PlaybackSession` accepts
:class:`PlayRequest` wherever it accepts raw request IDs; and
:func:`repro.service.rpc.stub_for` estimates marshalled sizes for all of
them (they are plain dataclasses).  ``repro.__init__`` re-exports this
module as the package facade.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.rope.structures import Media

__all__ = [
    "Media",
    "SessionState",
    "RejectReason",
    "OpenSessionRequest",
    "OpenSessionResponse",
    "PlayRequest",
    "PauseRequest",
    "ResumeRequest",
    "StopRequest",
    "SessionStatus",
    "ServeResult",
    "NodeStatus",
    "HandoffRecord",
    "NodeServeResult",
    "ClusterServeResult",
]


class SessionState(enum.Enum):
    """Lifecycle of one client session at the media-server front end."""

    PENDING = "pending"        # queued, admission not yet decided
    OPEN = "open"              # admitted, playback not requested yet
    PLAYING = "playing"        # scheduled into the service loop
    PAUSED = "paused"          # PAUSE'd before/while being serviced
    STOPPED = "stopped"        # STOP'd by the client
    COMPLETED = "completed"    # played to the end of its interval
    REJECTED = "rejected"      # refused with a RejectReason


class RejectReason(enum.Enum):
    """Why the server refused a session (graceful overload, §3.4).

    Every refusal is a typed value on the response — overload never
    surfaces to the client as an exception.
    """

    CAPACITY = "capacity"            # γ ≤ n·β: no admission headroom
    K_BOUND = "k_bound"              # Eq.-18 k beyond the operating bound
    QUEUE_FULL = "queue_full"        # re-queue budget exhausted
    UNKNOWN_ROPE = "unknown_rope"    # no such rope
    ACCESS_DENIED = "access_denied"  # caller lacks Play access
    EMPTY_INTERVAL = "empty_interval"  # requested interval has no media
    NO_REPLICA = "no_replica"        # cluster: no live replica has slack


@dataclass(frozen=True)
class OpenSessionRequest:
    """Ask for a playback session over a rope interval.

    Attributes
    ----------
    client_id:
        The requesting user (checked against the rope's Play access).
    rope_id:
        The rope to play.
    arrival:
        Simulated arrival time, seconds.  Requests arriving within the
        server's batching window for the same ``(rope_id, start,
        length, media)`` key are admitted as one batch with shared
        reads.
    start / length:
        Interval within the rope, seconds (``length=None`` plays to the
        end).
    media:
        Which media components to deliver.
    auto_play:
        When True (the default) an admitted session is scheduled for
        playback immediately; when False the client must follow up with
        a :class:`PlayRequest`.
    """

    client_id: str
    rope_id: str
    arrival: float = 0.0
    start: float = 0.0
    length: Optional[float] = None
    media: Media = Media.VIDEO
    auto_play: bool = True


@dataclass(frozen=True)
class OpenSessionResponse:
    """The server's answer to one :class:`OpenSessionRequest`.

    Attributes
    ----------
    session_id:
        Assigned session ID, or None when rejected.
    accepted:
        Whether the session was admitted.
    reject:
        The typed refusal reason (None when accepted).
    batch_leader:
        For a batched admission, the session whose disk reads this
        session shares (the leader's own response points at itself).
    cache_admitted:
        True when the session was admitted against cache residency
        (its blocks are pinned in the block cache and consume no
        disk-round budget).
    requeues:
        How many times the request was re-queued before this verdict.
    detail:
        Human-readable context for logs.
    """

    session_id: Optional[str]
    accepted: bool
    reject: Optional[RejectReason] = None
    batch_leader: Optional[str] = None
    cache_admitted: bool = False
    requeues: int = 0
    detail: str = ""


@dataclass(frozen=True)
class PlayRequest:
    """Schedule an OPEN session into the service loop."""

    session_id: str
    arrival: float = 0.0


@dataclass(frozen=True)
class PauseRequest:
    """PAUSE a session; destructive pauses release its resources."""

    session_id: str
    arrival: float = 0.0
    destructive: bool = False


@dataclass(frozen=True)
class ResumeRequest:
    """RESUME a paused session (destructive pauses re-run admission)."""

    session_id: str
    arrival: float = 0.0


@dataclass(frozen=True)
class StopRequest:
    """STOP a session and release its resources."""

    session_id: str
    arrival: float = 0.0


@dataclass(frozen=True)
class SessionStatus:
    """One session's lifecycle state and continuity outcome.

    ``node_id`` and ``handoffs`` are the cluster-addressing fields: a
    single :class:`~repro.server.MediaServer` leaves them at their
    defaults, while :class:`repro.cluster.MediaCluster` stamps the node
    that finished serving the session and how many inter-node handoffs
    it survived.
    """

    session_id: str
    client_id: str
    rope_id: str
    state: SessionState
    blocks_delivered: int = 0
    misses: int = 0
    skips: int = 0
    startup_latency: float = 0.0
    batch_leader: Optional[str] = None
    cache_admitted: bool = False
    request_id: Optional[str] = None
    node_id: Optional[str] = None
    handoffs: int = 0

    @property
    def continuous(self) -> bool:
        """True when the session played without a single glitch."""
        return self.misses == 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (stable key set)."""
        return {
            "session_id": self.session_id,
            "client_id": self.client_id,
            "rope_id": self.rope_id,
            "request_id": self.request_id,
            "state": self.state.value,
            "blocks_delivered": self.blocks_delivered,
            "misses": self.misses,
            "skips": self.skips,
            "startup_latency": self.startup_latency,
            "batch_leader": self.batch_leader,
            "cache_admitted": self.cache_admitted,
            "continuous": self.continuous,
            "node_id": self.node_id,
            "handoffs": self.handoffs,
        }


@dataclass(frozen=True)
class ServeResult:
    """The outcome of one :meth:`repro.server.MediaServer.serve` call.

    Attributes
    ----------
    statuses:
        Final status of every session touched this epoch, in session-ID
        order.
    rejects:
        Responses for requests that ended rejected, in arrival order.
    rounds:
        Service rounds the epoch ran.
    k_used:
        Blocks-per-round the service loop operated at.
    batches:
        Admission batches formed (a solo request is a batch of one).
    cache_stats:
        Block-cache counters for the epoch (empty when the cache is
        disabled).
    block_sequences:
        Per-session ordered disk-slot sequences actually fetched
        (silence holders are None).  The cache-equivalence property
        tests assert these are byte-identical with the cache on or off.
    """

    statuses: Tuple[SessionStatus, ...]
    rejects: Tuple[OpenSessionResponse, ...] = ()
    rounds: int = 0
    k_used: int = 0
    batches: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    block_sequences: Dict[str, Tuple[Optional[int], ...]] = field(
        default_factory=dict
    )

    @property
    def admitted(self) -> int:
        """Sessions that made it past admission."""
        return sum(
            1 for s in self.statuses if s.state is not SessionState.REJECTED
        )

    @property
    def continuous_sessions(self) -> int:
        """Sessions that completed playback without a glitch."""
        return sum(
            1
            for s in self.statuses
            if s.state is SessionState.COMPLETED and s.continuous
        )

    @property
    def total_misses(self) -> int:
        """Deadline misses summed over every session."""
        return sum(s.misses for s in self.statuses)

    def status_of(self, session_id: str) -> SessionStatus:
        """Look up one session's status (raises KeyError if absent)."""
        for status in self.statuses:
            if status.session_id == session_id:
                return status
        raise KeyError(session_id)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the ``repro serve --json`` shape)."""
        return {
            "sessions": [s.to_dict() for s in self.statuses],
            "rejects": [
                {
                    "session_id": r.session_id,
                    "reject": r.reject.value if r.reject else None,
                    "requeues": r.requeues,
                    "detail": r.detail,
                }
                for r in self.rejects
            ],
            "rounds": self.rounds,
            "k_used": self.k_used,
            "batches": self.batches,
            "admitted": self.admitted,
            "continuous_sessions": self.continuous_sessions,
            "total_misses": self.total_misses,
            "cache_stats": dict(sorted(self.cache_stats.items())),
        }


@dataclass(frozen=True)
class NodeStatus:
    """Identity and health of one cluster node (replica addressing).

    Attributes
    ----------
    node_id:
        The node's stable cluster-wide name (e.g. ``node-03``).
    alive:
        False once the node's mechanism has died (a scheduled
        HEAD_FAILURE or an operator kill); dead nodes accept nothing.
    degraded:
        True while the node is drained of new admissions but still
        finishing its current chunks.
    sessions:
        Sessions the node was serving when the status was taken.
    titles:
        Catalog titles the placement map replicated onto this node.
    """

    node_id: str
    alive: bool = True
    degraded: bool = False
    sessions: int = 0
    titles: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (stable key set)."""
        return {
            "node_id": self.node_id,
            "alive": self.alive,
            "degraded": self.degraded,
            "sessions": self.sessions,
            "titles": list(self.titles),
        }


@dataclass(frozen=True)
class HandoffRecord:
    """One inter-node session handoff decision.

    Attributes
    ----------
    session_id:
        The cluster session that was moved.
    rope_id:
        The catalog title it was playing.
    from_node / to_node:
        Where it was and where it landed; ``to_node`` is None when no
        live replica had admission slack (the session then ends with a
        :attr:`RejectReason.NO_REPLICA` refusal).
    at_chunk:
        The chunk boundary index the handoff happened at.
    blocks_before:
        Blocks already delivered when the source node died.
    clean:
        True when the session resumed on the target and finished every
        remaining chunk without a single miss or skip — no continuity
        break observable by the viewer.
    detail:
        Human-readable context for logs.
    """

    session_id: str
    rope_id: str
    from_node: str
    to_node: Optional[str]
    at_chunk: int
    blocks_before: int = 0
    clean: bool = False
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (stable key set)."""
        return {
            "session_id": self.session_id,
            "rope_id": self.rope_id,
            "from_node": self.from_node,
            "to_node": self.to_node,
            "at_chunk": self.at_chunk,
            "blocks_before": self.blocks_before,
            "clean": self.clean,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class NodeServeResult:
    """One node's contribution to a cluster epoch: its chunk results."""

    node_id: str
    results: Tuple[ServeResult, ...] = ()

    @property
    def blocks_delivered(self) -> int:
        """Blocks this node delivered across every chunk epoch."""
        return sum(
            s.blocks_delivered for r in self.results for s in r.statuses
        )

    @property
    def rounds(self) -> int:
        """Service rounds this node ran across every chunk epoch."""
        return sum(r.rounds for r in self.results)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (stable key set)."""
        return {
            "node_id": self.node_id,
            "blocks_delivered": self.blocks_delivered,
            "rounds": self.rounds,
            "results": [r.to_dict() for r in self.results],
        }


@dataclass(frozen=True)
class ClusterServeResult:
    """The outcome of one :meth:`repro.cluster.MediaCluster.serve` call.

    Aggregates the per-node :class:`ServeResult` epochs behind one
    cluster-level answer in the same shape :class:`ServeResult` uses,
    plus the routing evidence: the placement map the router consulted,
    the exact admission order, and every handoff decision.  All of it is
    a pure function of (requests, placement, fault plan, seed), so
    ``to_dict()`` is byte-deterministic — the router-determinism tests
    compare two runs' serialized results verbatim.
    """

    statuses: Tuple[SessionStatus, ...]
    rejects: Tuple[OpenSessionResponse, ...] = ()
    per_node: Tuple[NodeServeResult, ...] = ()
    nodes: Tuple[NodeStatus, ...] = ()
    handoffs: Tuple[HandoffRecord, ...] = ()
    placement: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    admission_order: Tuple[Tuple[str, str], ...] = ()
    chunks: int = 1

    @property
    def admitted(self) -> int:
        """Sessions the router admitted onto some replica."""
        return sum(
            1 for s in self.statuses if s.state is not SessionState.REJECTED
        )

    @property
    def continuous_sessions(self) -> int:
        """Sessions that completed every chunk without a glitch."""
        return sum(
            1
            for s in self.statuses
            if s.state is SessionState.COMPLETED
            and s.continuous
            and s.skips == 0
        )

    @property
    def total_misses(self) -> int:
        """Deadline misses summed over every session and chunk."""
        return sum(s.misses for s in self.statuses)

    @property
    def handoffs_clean(self) -> int:
        """Handoffs that resumed without a continuity break."""
        return sum(1 for h in self.handoffs if h.clean)

    @property
    def handoff_clean_ratio(self) -> Optional[float]:
        """Clean fraction of all handoffs (None when there were none)."""
        if not self.handoffs:
            return None
        return self.handoffs_clean / len(self.handoffs)

    def status_of(self, session_id: str) -> SessionStatus:
        """Look up one session's status (raises KeyError if absent)."""
        for status in self.statuses:
            if status.session_id == session_id:
                return status
        raise KeyError(session_id)

    def node_result(self, node_id: str) -> NodeServeResult:
        """One node's chunk results (raises KeyError if absent)."""
        for node in self.per_node:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the ``repro cluster --json`` shape)."""
        return {
            "sessions": [s.to_dict() for s in self.statuses],
            "rejects": [
                {
                    "session_id": r.session_id,
                    "reject": r.reject.value if r.reject else None,
                    "requeues": r.requeues,
                    "detail": r.detail,
                }
                for r in self.rejects
            ],
            "per_node": [n.to_dict() for n in self.per_node],
            "nodes": [n.to_dict() for n in self.nodes],
            "handoffs": [h.to_dict() for h in self.handoffs],
            "placement": {
                title: list(replicas)
                for title, replicas in self.placement
            },
            "admission_order": [
                [session_id, node_id]
                for session_id, node_id in self.admission_order
            ],
            "chunks": self.chunks,
            "admitted": self.admitted,
            "continuous_sessions": self.continuous_sessions,
            "total_misses": self.total_misses,
            "handoffs_clean": self.handoffs_clean,
        }
