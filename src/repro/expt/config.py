"""Declarative experiment-matrix configs: schema, validation, expansion.

An :class:`ExperimentConfig` describes a matrix of **workload preset ×
drive topology × cache size × batching on/off × seed** as plain data —
loadable from a dict or a JSON file under ``experiments/`` — and expands
deterministically into concrete :class:`MatrixCell` specs the runner
(:mod:`repro.expt.runner`) fans over the ProcessPool sweep.  The layout
mirrors muBench-style replication suites (SNIPPETS.md): topology and
scale live in declarative workmodel files, the runner maps each factor
combination onto an executable scenario.

Three workload kinds are understood:

``scale``
    The raw §3.4 service loop via :class:`repro.perf.ScaleScenario` —
    consumes the *drives* and *seeds* axes (cache/batching do not apply
    to the bare round loop).
``server-hot``
    The multi-tenant :func:`repro.server.run_server_hot_scenario`
    acceptance workload — consumes *cache_blocks*, *batching*, and
    *seeds* (the server front end always runs the testbed drive).
``obs-overhead``
    The tracing-overhead comparison
    (:func:`repro.perf.run_obs_overhead_scenario`) — consumes *seeds*
    only.
``cluster-scale``
    The sharded-VoD failover acceptance run
    (:func:`repro.cluster.run_cluster_failover_scenario`): N nodes, a
    replicated Zipf catalog, a deterministic mid-stream node kill, and
    chunked inter-node handoff — consumes *seeds* only (each node owns
    its private drive array and cache; the cluster axes live in the
    workload params).

Every config carries a canonical SHA-256 ``config_hash`` so a results
manifest names exactly the matrix that produced it; two dicts with the
same content hash identically regardless of key order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.perf.scenarios import ARRIVALS, DRIVE_CONFIGS

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "ExperimentConfigError",
    "ExperimentConfig",
    "MatrixCell",
    "WorkloadSpec",
    "canonical_json",
    "config_hash",
    "load_config",
    "smoke_config",
    "full_config",
]

#: Version stamped into configs and manifests; bump on shape changes.
CONFIG_SCHEMA_VERSION = 1

#: Workload kinds the expansion understands.
WORKLOAD_KINDS = ("scale", "server-hot", "obs-overhead", "cluster-scale")

#: Gate-tolerance comparison kinds (documented in repro.expt.gate).
TOLERANCE_KINDS = ("relative_drop", "max", "min", "exact")


class ExperimentConfigError(ParameterError):
    """An experiment config violates the matrix schema."""


def canonical_json(value: object) -> str:
    """The canonical encoding hashes and stable files are built from."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_hash(value: Mapping) -> str:
    """SHA-256 of the canonical JSON encoding, ``sha256:<hex>``."""
    digest = hashlib.sha256(canonical_json(value).encode("utf-8"))
    return f"sha256:{digest.hexdigest()}"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ExperimentConfigError(message)


def _int_list(raw: object, name: str, minimum: int = 0) -> Tuple[int, ...]:
    _require(
        isinstance(raw, (list, tuple)) and len(raw) > 0,
        f"{name} must be a non-empty list",
    )
    values = []
    for item in raw:
        _require(
            isinstance(item, int) and not isinstance(item, bool),
            f"{name} entries must be integers, got {item!r}",
        )
        _require(item >= minimum, f"{name} entries must be >= {minimum}")
        values.append(item)
    _require(
        len(set(values)) == len(values), f"{name} entries must be unique"
    )
    return tuple(values)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload preset of the matrix (a row of the workloads list).

    ``params`` holds the kind-specific sizing (streams, sessions, …) as
    an immutable sorted tuple of pairs so the spec stays hashable and
    pickles cleanly into worker processes.  ``golden`` marks the cell as
    an SLO-gated acceptance scenario: the gate refuses any SLO breach in
    a golden cell regardless of tolerance overrides.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    golden: bool = False

    def param_dict(self) -> Dict[str, object]:
        """The kind-specific parameters as a plain dict."""
        return dict(self.params)

    @staticmethod
    def from_dict(raw: Mapping, index: int) -> "WorkloadSpec":
        _require(
            isinstance(raw, Mapping),
            f"workloads[{index}] must be an object",
        )
        kind = raw.get("kind")
        _require(
            kind in WORKLOAD_KINDS,
            f"workloads[{index}].kind must be one of "
            f"{', '.join(WORKLOAD_KINDS)}; got {kind!r}",
        )
        golden = raw.get("golden", False)
        _require(
            isinstance(golden, bool),
            f"workloads[{index}].golden must be a boolean",
        )
        params = {
            key: value
            for key, value in raw.items()
            if key not in ("kind", "golden")
        }
        allowed = _WORKLOAD_PARAMS[kind]
        unknown = sorted(set(params) - set(allowed))
        _require(
            not unknown,
            f"workloads[{index}] ({kind}) has unknown parameter(s): "
            f"{', '.join(unknown)}; allowed: {', '.join(sorted(allowed))}",
        )
        for key, value in params.items():
            expected = allowed[key]
            _require(
                isinstance(value, expected)
                and not isinstance(value, bool),
                f"workloads[{index}].{key} must be "
                f"{'/'.join(t.__name__ for t in expected)}, got {value!r}",
            )
            if isinstance(value, (int, float)):
                _require(
                    value > 0,
                    f"workloads[{index}].{key} must be positive",
                )
        if kind == "scale" and "arrivals" in params:
            _require(
                params["arrivals"] in ARRIVALS,
                f"workloads[{index}].arrivals must be one of "
                f"{', '.join(ARRIVALS)}",
            )
        return WorkloadSpec(
            kind=kind,
            params=tuple(sorted(params.items())),
            golden=golden,
        )


#: Allowed kind-specific parameters and their types.
_WORKLOAD_PARAMS: Dict[str, Dict[str, tuple]] = {
    "scale": {
        "streams": (int,),
        "blocks_per_stream": (int,),
        "k": (int,),
        "buffer_capacity": (int,),
        "arrivals": (str,),
    },
    "server-hot": {
        "sessions": (int,),
        "strands": (int,),
        "seconds": (int, float),
        "batch_window": (int, float),
    },
    "obs-overhead": {
        "streams": (int,),
        "blocks_per_stream": (int,),
        "repeats": (int,),
    },
    "cluster-scale": {
        "nodes": (int,),
        "sessions": (int,),
        "titles": (int,),
        "seconds": (int, float),
        "per_node_streams": (int,),
        "min_replicas": (int,),
        "chunks": (int,),
        "kill_node": (int,),
        "kill_chunk": (int,),
    },
}


@dataclass(frozen=True)
class MatrixCell:
    """One fully-resolved point of the expanded matrix.

    The runner executes cells; the manifest and the per-cell result
    files carry the same ``spec`` dict verbatim, so a cell id is
    traceable back to the exact factor combination that produced it.
    """

    cell_id: str
    kind: str
    golden: bool
    spec: Tuple[Tuple[str, object], ...]

    def spec_dict(self) -> Dict[str, object]:
        """The resolved factor values as a plain dict."""
        return dict(self.spec)


@dataclass(frozen=True)
class ExperimentConfig:
    """A validated experiment matrix (see the module docstring).

    Instances are frozen value objects; :meth:`expand` is pure and
    deterministic — the same config always yields the same cell list in
    the same order, which is what makes manifests comparable across
    runs, machines, and PRs.
    """

    name: str
    description: str
    workloads: Tuple[WorkloadSpec, ...]
    drives: Tuple[str, ...] = ("testbed",)
    cache_blocks: Tuple[int, ...] = (256,)
    batching: Tuple[bool, ...] = (True,)
    seeds: Tuple[int, ...] = (0,)
    tolerances: Tuple[Tuple[str, Tuple[str, float]], ...] = ()
    schema_version: int = CONFIG_SCHEMA_VERSION
    source: Dict = field(default_factory=dict, compare=False)

    @staticmethod
    def from_dict(raw: Mapping) -> "ExperimentConfig":
        """Validate a plain mapping against the matrix schema."""
        _require(isinstance(raw, Mapping), "config must be an object")
        allowed_keys = {
            "schema_version", "name", "description", "axes",
            "workloads", "tolerances",
        }
        unknown = sorted(set(raw) - allowed_keys)
        _require(
            not unknown,
            f"unknown config key(s): {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(allowed_keys))}",
        )
        version = raw.get("schema_version")
        _require(
            version == CONFIG_SCHEMA_VERSION,
            f"schema_version must be {CONFIG_SCHEMA_VERSION}, "
            f"got {version!r}",
        )
        name = raw.get("name")
        _require(
            isinstance(name, str) and name.strip() != "",
            "name must be a non-empty string",
        )
        _require(
            all(c.isalnum() or c in "-_" for c in name),
            f"name must be alphanumeric/dash/underscore, got {name!r}",
        )
        description = raw.get("description", "")
        _require(
            isinstance(description, str), "description must be a string"
        )

        axes = raw.get("axes", {})
        _require(isinstance(axes, Mapping), "axes must be an object")
        unknown_axes = sorted(
            set(axes) - {"drives", "cache_blocks", "batching", "seeds"}
        )
        _require(
            not unknown_axes,
            f"unknown axes: {', '.join(unknown_axes)}; allowed: "
            "drives, cache_blocks, batching, seeds",
        )
        drives_raw = axes.get("drives", ["testbed"])
        _require(
            isinstance(drives_raw, (list, tuple)) and len(drives_raw) > 0,
            "axes.drives must be a non-empty list",
        )
        for drive in drives_raw:
            _require(
                drive in DRIVE_CONFIGS,
                f"axes.drives entry {drive!r} is not a known drive "
                f"config; known: {', '.join(sorted(DRIVE_CONFIGS))}",
            )
        _require(
            len(set(drives_raw)) == len(drives_raw),
            "axes.drives entries must be unique",
        )
        cache_raw = _int_list(
            axes.get("cache_blocks", [256]), "axes.cache_blocks", 0
        )
        batching_raw = axes.get("batching", [True])
        _require(
            isinstance(batching_raw, (list, tuple))
            and len(batching_raw) > 0
            and all(isinstance(b, bool) for b in batching_raw)
            and len(set(batching_raw)) == len(batching_raw),
            "axes.batching must be a non-empty list of unique booleans",
        )
        seeds_raw = _int_list(axes.get("seeds", [0]), "axes.seeds", 0)

        workloads_raw = raw.get("workloads")
        _require(
            isinstance(workloads_raw, (list, tuple))
            and len(workloads_raw) > 0,
            "workloads must be a non-empty list",
        )
        workloads = tuple(
            WorkloadSpec.from_dict(w, i)
            for i, w in enumerate(workloads_raw)
        )

        tolerances_raw = raw.get("tolerances", {})
        _require(
            isinstance(tolerances_raw, Mapping),
            "tolerances must be an object of metric -> {kind, limit}",
        )
        tolerances = []
        for metric in sorted(tolerances_raw):
            entry = tolerances_raw[metric]
            _require(
                isinstance(entry, Mapping)
                and set(entry) == {"kind", "limit"},
                f"tolerances.{metric} must be an object with exactly "
                "the keys kind and limit",
            )
            _require(
                entry["kind"] in TOLERANCE_KINDS,
                f"tolerances.{metric}.kind must be one of "
                f"{', '.join(TOLERANCE_KINDS)}; got {entry['kind']!r}",
            )
            limit = entry["limit"]
            _require(
                isinstance(limit, (int, float))
                and not isinstance(limit, bool)
                and limit == limit,  # rejects NaN
                f"tolerances.{metric}.limit must be a finite number",
            )
            tolerances.append((metric, (entry["kind"], float(limit))))

        return ExperimentConfig(
            name=name,
            description=description,
            workloads=workloads,
            drives=tuple(drives_raw),
            cache_blocks=cache_raw,
            batching=tuple(batching_raw),
            seeds=seeds_raw,
            tolerances=tuple(tolerances),
            schema_version=version,
            source={key: raw[key] for key in sorted(raw)},
        )

    def to_dict(self) -> Dict[str, object]:
        """The config as canonical plain data (what gets hashed)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "axes": {
                "drives": list(self.drives),
                "cache_blocks": list(self.cache_blocks),
                "batching": list(self.batching),
                "seeds": list(self.seeds),
            },
            "workloads": [
                {
                    "kind": spec.kind,
                    "golden": spec.golden,
                    **spec.param_dict(),
                }
                for spec in self.workloads
            ],
            "tolerances": {
                metric: {"kind": kind, "limit": limit}
                for metric, (kind, limit) in self.tolerances
            },
        }

    @property
    def hash(self) -> str:
        """Canonical content hash naming this exact matrix."""
        return config_hash(self.to_dict())

    def tolerance_overrides(self) -> Dict[str, Tuple[str, float]]:
        """Per-metric gate tolerances declared by this config."""
        return dict(self.tolerances)

    def expand(self) -> List[MatrixCell]:
        """Deterministically expand the matrix into concrete cells.

        Workloads expand in declaration order; each kind consumes only
        the axes that apply to it (module docstring), so the expansion
        never emits two cells that would run the identical scenario.
        Axis order within a workload is fixed: drive, cache, batching,
        seed.
        """
        cells: List[MatrixCell] = []
        for spec in self.workloads:
            params = spec.param_dict()
            if spec.kind == "scale":
                for drive in self.drives:
                    for seed in self.seeds:
                        merged = {
                            "streams": 10,
                            "blocks_per_stream": 100,
                            "k": 4,
                            "buffer_capacity": 8,
                            "arrivals": "uniform",
                            **params,
                            "drive": drive,
                            "seed": seed,
                        }
                        cell_id = (
                            f"scale-{drive}-{merged['arrivals']}"
                            f"-n{merged['streams']}"
                            f"-b{merged['blocks_per_stream']}"
                            f"-seed{seed}"
                        )
                        cells.append(MatrixCell(
                            cell_id=cell_id,
                            kind=spec.kind,
                            golden=spec.golden,
                            spec=tuple(sorted(merged.items())),
                        ))
            elif spec.kind == "server-hot":
                for cache in self.cache_blocks:
                    for batch in self.batching:
                        for seed in self.seeds:
                            merged = {
                                "sessions": 6,
                                "strands": 2,
                                "seconds": 1.0,
                                "batch_window": 0.25,
                                **params,
                                "cache_blocks": cache,
                                "batching": batch,
                                "seed": seed,
                            }
                            cell_id = (
                                f"server-hot-s{merged['sessions']}"
                                f"x{merged['strands']}-c{cache}"
                                f"-batch{'on' if batch else 'off'}"
                                f"-seed{seed}"
                            )
                            cells.append(MatrixCell(
                                cell_id=cell_id,
                                kind=spec.kind,
                                # The golden (SLO-refusing) mark binds
                                # to the acceptance configuration only:
                                # cache-off / batch-off variants are
                                # degraded baselines that reject by
                                # §3.4 design.
                                golden=(
                                    spec.golden
                                    and cache > 0
                                    and batch
                                ),
                                spec=tuple(sorted(merged.items())),
                            ))
            elif spec.kind == "obs-overhead":
                for seed in self.seeds:
                    merged = {
                        "streams": 8,
                        "blocks_per_stream": 50,
                        "repeats": 2,
                        **params,
                        "seed": seed,
                    }
                    cell_id = (
                        f"obs-overhead-n{merged['streams']}"
                        f"-b{merged['blocks_per_stream']}-seed{seed}"
                    )
                    cells.append(MatrixCell(
                        cell_id=cell_id,
                        kind=spec.kind,
                        golden=spec.golden,
                        spec=tuple(sorted(merged.items())),
                    ))
            else:  # cluster-scale
                for seed in self.seeds:
                    merged = {
                        "nodes": 4,
                        "sessions": 32,
                        "titles": 8,
                        "seconds": 2.0,
                        "per_node_streams": 24,
                        "min_replicas": 2,
                        "chunks": 4,
                        "kill_node": 1,
                        "kill_chunk": 2,
                        **params,
                        "seed": seed,
                    }
                    cell_id = (
                        f"cluster-n{merged['nodes']}"
                        f"-s{merged['sessions']}"
                        f"-t{merged['titles']}-seed{seed}"
                    )
                    cells.append(MatrixCell(
                        cell_id=cell_id,
                        kind=spec.kind,
                        golden=spec.golden,
                        spec=tuple(sorted(merged.items())),
                    ))
        seen: Dict[str, int] = {}
        for cell in cells:
            seen[cell.cell_id] = seen.get(cell.cell_id, 0) + 1
        duplicates = sorted(c for c, n in seen.items() if n > 1)
        _require(
            not duplicates,
            "matrix expansion produced duplicate cell id(s): "
            f"{', '.join(duplicates)} (two workloads resolve to the "
            "same scenario; drop one)",
        )
        return cells


def load_config(path_or_dict) -> ExperimentConfig:
    """Load and validate a config from a mapping or a JSON file path."""
    if isinstance(path_or_dict, Mapping):
        return ExperimentConfig.from_dict(path_or_dict)
    try:
        with open(path_or_dict, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except FileNotFoundError:
        raise ExperimentConfigError(
            f"experiment config not found: {path_or_dict}"
        ) from None
    except json.JSONDecodeError as error:
        raise ExperimentConfigError(
            f"experiment config {path_or_dict} is not valid JSON: {error}"
        ) from None
    return ExperimentConfig.from_dict(raw)


#: The committed smoke matrix — tiny, seconds-fast, still multi-kind.
#: ``experiments/smoke.json`` mirrors this dict byte for byte (a tooling
#: test pins the two together), so `repro expt run --smoke` works even
#: from an installed package without the experiments/ directory.
SMOKE_CONFIG_DICT: Dict = {
    "schema_version": CONFIG_SCHEMA_VERSION,
    "name": "smoke",
    "description": (
        "Tiny end-to-end matrix for CI gating: one scale cell per "
        "drive, server-hot with cache on/off, a small tracing "
        "overhead probe, and a three-node cluster failover cell."
    ),
    "axes": {
        "drives": ["testbed"],
        "cache_blocks": [0, 256],
        "batching": [True],
        "seeds": [0],
    },
    "workloads": [
        {
            "kind": "scale",
            "streams": 4,
            "blocks_per_stream": 16,
            "arrivals": "uniform",
        },
        {
            "kind": "server-hot",
            "sessions": 4,
            "strands": 2,
            "seconds": 1.0,
            "golden": True,
        },
        {
            "kind": "obs-overhead",
            "streams": 8,
            "blocks_per_stream": 100,
            "repeats": 3,
        },
        {
            "kind": "cluster-scale",
            "nodes": 3,
            "sessions": 12,
            "titles": 4,
            "seconds": 1.0,
            "per_node_streams": 8,
            "chunks": 3,
            "kill_node": 1,
            "kill_chunk": 1,
            "golden": True,
        },
    ],
    "tolerances": {
        # Wall-clock throughput varies across hosts; the smoke gate only
        # refuses catastrophic (10x) collapses.  The full matrix tightens
        # this to the ROADMAP's 10% budget.
        "blocks_per_second": {"kind": "relative_drop", "limit": 0.9},
        # Sub-millisecond smoke walls make the 1.15 tracing budget pure
        # noise; the full matrix enforces the real budget.
        "obs_overhead_ratio": {"kind": "max", "limit": 5.0},
    },
}

#: The full matrix the perf trajectory is tracked against (not run in
#: CI; `repro expt run --config experiments/full.json` on a quiet host).
FULL_CONFIG_DICT: Dict = {
    "schema_version": CONFIG_SCHEMA_VERSION,
    "name": "full",
    "description": (
        "The BENCH_PERF-scale matrix: 10/100/1000-stream service-loop "
        "cells across drive topologies and arrival mixes, the 50-session "
        "server acceptance workload with and without the cache, the "
        "tracing-overhead budget cell, and the four-node cluster "
        "failover acceptance cell."
    ),
    "axes": {
        "drives": ["testbed", "table"],
        "cache_blocks": [0, 512],
        "batching": [True, False],
        "seeds": [0, 1],
    },
    "workloads": [
        {"kind": "scale", "streams": 10, "blocks_per_stream": 1000},
        {"kind": "scale", "streams": 100, "blocks_per_stream": 1000},
        {"kind": "scale", "streams": 1000, "blocks_per_stream": 1000},
        {
            "kind": "scale",
            "streams": 100,
            "blocks_per_stream": 1000,
            "arrivals": "staggered",
        },
        {
            "kind": "server-hot",
            "sessions": 50,
            "strands": 5,
            "seconds": 2.0,
            "golden": True,
        },
        {
            "kind": "obs-overhead",
            "streams": 100,
            "blocks_per_stream": 1000,
            "repeats": 5,
        },
        {
            "kind": "cluster-scale",
            "nodes": 4,
            "sessions": 32,
            "titles": 8,
            "seconds": 2.0,
            "per_node_streams": 24,
            "chunks": 4,
            "kill_node": 1,
            "kill_chunk": 2,
            "golden": True,
        },
    ],
    "tolerances": {
        "blocks_per_second": {"kind": "relative_drop", "limit": 0.10},
        "obs_overhead_ratio": {"kind": "max", "limit": 1.15},
    },
}


def smoke_config() -> ExperimentConfig:
    """The validated builtin smoke matrix."""
    return ExperimentConfig.from_dict(SMOKE_CONFIG_DICT)


def full_config() -> ExperimentConfig:
    """The validated builtin full matrix."""
    return ExperimentConfig.from_dict(FULL_CONFIG_DICT)
