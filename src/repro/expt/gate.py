"""Regression gates: compare a results manifest against a baseline.

The gate is what turns the perf/SLO trajectory from a log into a test.
:func:`gate_manifest` walks the union of cells in a manifest and a
committed baseline (``tests/baselines/matrix_baseline.json``), applies a
per-metric :class:`Tolerance` to every recorded metric, and returns a
:class:`GateReport` of typed :class:`GateVerdict` rows — each naming the
cell, the metric, both values, and a human-readable reason — so a CI
failure reads as *"scale-testbed-uniform-n4-b16-seed0 blocks_per_second
dropped 23.1% (limit 10%)"* rather than a bare assert.

Tolerance kinds
---------------
``relative_drop``
    Fail when ``observed < baseline * (1 - limit)`` — the ROADMAP's
    "throughput drop > X%" gate.  A value exactly at the boundary
    passes.  Zero/NaN baselines cannot anchor a relative comparison and
    are reported as skipped-but-passing with an explanatory detail.
``max`` / ``min``
    Absolute ceiling/floor on the observed value (baseline ignored) —
    e.g. the 1.15 tracing-overhead budget.  Boundary values pass.
``exact``
    Byte-deterministic metrics (continuity, rejects, cache hits on the
    seeded simulator) must match the baseline exactly.

Cells present on only one side are failures in their own right:
a baseline cell missing from the manifest means lost coverage, a
manifest cell absent from the baseline means the baseline needs a
deliberate regeneration (``repro expt run --smoke --regen-baseline``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.report import Table
from repro.errors import ParameterError
from repro.expt.runner import validate_manifest

__all__ = [
    "DEFAULT_TOLERANCES",
    "Tolerance",
    "GateVerdict",
    "GateReport",
    "gate_manifest",
    "diff_manifests",
]

#: Default per-metric gates; configs override via their tolerances map.
DEFAULT_TOLERANCES: Dict[str, Tuple[str, float]] = {
    "blocks_per_second": ("relative_drop", 0.10),
    "blocks_delivered": ("exact", 0.0),
    "misses": ("exact", 0.0),
    "rounds": ("exact", 0.0),
    "continuity_ratio": ("exact", 0.0),
    "reject_rate": ("exact", 0.0),
    "cache_hit_ratio": ("exact", 0.0),
    # Non-golden cells may legitimately end breached (the cache-off
    # degraded baseline rejects by §3.4 design); they are tracked
    # exactly against the baseline.  Golden cells are forced to
    # ("max", 0.0) inside the gate regardless of this table.
    "slo_breaches": ("exact", 0.0),
    "slo_breach_events": ("exact", 0.0),
    "obs_overhead_ratio": ("max", 1.15),
    # Cluster failover cells: the handoff count is seed-deterministic,
    # and the ISSUE's acceptance floor (>90% of affected sessions handed
    # off cleanly) gates as an absolute minimum, baseline-free.
    "handoffs": ("exact", 0.0),
    "handoff_clean_ratio": ("min", 0.9),
}


@dataclass(frozen=True)
class Tolerance:
    """One metric's comparison rule (see the module docstring)."""

    metric: str
    kind: str
    limit: float

    def __post_init__(self) -> None:
        if self.kind not in ("relative_drop", "max", "min", "exact"):
            raise ParameterError(
                f"unknown tolerance kind {self.kind!r} for "
                f"{self.metric}"
            )
        if self.limit != self.limit:
            raise ParameterError(
                f"tolerance limit for {self.metric} is NaN"
            )


@dataclass(frozen=True)
class GateVerdict:
    """One typed pass/fail judgement for (cell, metric)."""

    cell: str
    metric: str
    kind: str
    passed: bool
    detail: str
    baseline: Optional[float] = None
    observed: Optional[float] = None
    limit: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the ``expt gate --json`` row shape)."""
        return {
            "cell": self.cell,
            "metric": self.metric,
            "kind": self.kind,
            "passed": self.passed,
            "detail": self.detail,
            "baseline": self.baseline,
            "observed": self.observed,
            "limit": self.limit,
        }


@dataclass(frozen=True)
class GateReport:
    """Every verdict of one gate evaluation, failures first available."""

    verdicts: Tuple[GateVerdict, ...]
    manifest_name: str
    baseline_name: str

    @property
    def passed(self) -> bool:
        """True when no verdict failed."""
        return all(v.passed for v in self.verdicts)

    @property
    def failures(self) -> Tuple[GateVerdict, ...]:
        """The failing verdicts, in evaluation order."""
        return tuple(v for v in self.verdicts if not v.passed)

    def render(self) -> str:
        """Human-readable report naming every failing cell and metric."""
        lines = [
            f"expt gate: manifest '{self.manifest_name}' vs baseline "
            f"'{self.baseline_name}' — "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({len(self.verdicts)} checks, "
            f"{len(self.failures)} failure(s))"
        ]
        for verdict in self.failures:
            lines.append(
                f"  FAIL {verdict.cell} :: {verdict.metric} "
                f"[{verdict.kind}] — {verdict.detail}"
            )
        return "\n".join(lines)

    def table(self) -> Table:
        """Aligned text table of every verdict."""
        table = Table(
            title=(
                f"expt gate ({'PASS' if self.passed else 'FAIL'}, "
                f"{len(self.failures)} failure(s))"
            ),
            columns=[
                "cell", "metric", "kind", "baseline", "observed",
                "limit", "verdict",
            ],
        )
        for v in self.verdicts:
            table.add_row(
                v.cell, v.metric, v.kind,
                "-" if v.baseline is None else f"{v.baseline:g}",
                "-" if v.observed is None else f"{v.observed:g}",
                "-" if v.limit is None else f"{v.limit:g}",
                "ok" if v.passed else "FAIL",
            )
        return table

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the ``expt gate --json`` shape)."""
        return {
            "manifest": self.manifest_name,
            "baseline": self.baseline_name,
            "passed": self.passed,
            "checks": len(self.verdicts),
            "failures": len(self.failures),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def _is_number(value: object) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and not math.isnan(value)
    )


def _resolve_tolerances(
    manifest: Mapping,
    overrides: Optional[Mapping[str, Tuple[str, float]]],
) -> Dict[str, Tolerance]:
    merged: Dict[str, Tuple[str, float]] = dict(DEFAULT_TOLERANCES)
    config_tolerances = manifest.get("config", {}).get("tolerances", {})
    for metric, entry in config_tolerances.items():
        merged[metric] = (entry["kind"], float(entry["limit"]))
    if overrides:
        for metric, (kind, limit) in overrides.items():
            merged[metric] = (kind, float(limit))
    return {
        metric: Tolerance(metric=metric, kind=kind, limit=limit)
        for metric, (kind, limit) in merged.items()
    }


def _judge(
    cell_id: str,
    tolerance: Tolerance,
    baseline: object,
    observed: object,
    golden: bool,
) -> GateVerdict:
    metric, kind, limit = tolerance.metric, tolerance.kind, tolerance.limit
    base = dict(
        cell=cell_id, metric=metric, kind=kind, limit=limit,
        baseline=baseline if _is_number(baseline) else None,
        observed=observed if _is_number(observed) else None,
    )
    # A golden cell refuses SLO breaches outright, whatever the config
    # says — that is what "golden" means.
    if golden and metric == "slo_breaches":
        kind, limit = "max", 0.0
        base.update(kind=kind, limit=limit)
    if baseline is None and observed is None:
        return GateVerdict(
            passed=True,
            detail="metric not recorded on either side",
            **base,
        )
    if observed is None:
        return GateVerdict(
            passed=False,
            detail=(
                "metric recorded in baseline but missing from the "
                "manifest"
            ),
            **base,
        )
    if not _is_number(observed):
        return GateVerdict(
            passed=False,
            detail=f"observed value is not a finite number: {observed!r}",
            **base,
        )
    if kind == "max":
        passed = observed <= limit
        return GateVerdict(
            passed=passed,
            detail=(
                f"observed {observed:g} vs ceiling {limit:g}"
                if passed else
                f"observed {observed:g} exceeds ceiling {limit:g}"
            ),
            **base,
        )
    if kind == "min":
        passed = observed >= limit
        return GateVerdict(
            passed=passed,
            detail=(
                f"observed {observed:g} vs floor {limit:g}"
                if passed else
                f"observed {observed:g} is below floor {limit:g}"
            ),
            **base,
        )
    # relative_drop and exact both need an anchoring baseline value.
    if baseline is None:
        return GateVerdict(
            passed=False,
            detail=(
                "metric recorded in the manifest but missing from the "
                "baseline; regenerate the baseline to accept it"
            ),
            **base,
        )
    if not _is_number(baseline):
        return GateVerdict(
            passed=True,
            detail=(
                f"baseline value {baseline!r} cannot anchor a "
                f"{kind} comparison; check skipped"
            ),
            **base,
        )
    if kind == "exact":
        passed = observed == baseline
        return GateVerdict(
            passed=passed,
            detail=(
                f"observed {observed:g} == baseline {baseline:g}"
                if passed else
                f"observed {observed:g} != baseline {baseline:g} "
                "(deterministic metric drifted)"
            ),
            **base,
        )
    # relative_drop: a zero baseline cannot express a percentage drop.
    if baseline <= 0:
        return GateVerdict(
            passed=True,
            detail=(
                f"baseline {baseline:g} <= 0 cannot anchor a relative "
                "drop; check skipped"
            ),
            **base,
        )
    floor = baseline * (1.0 - limit)
    passed = observed >= floor
    drop = (baseline - observed) / baseline
    return GateVerdict(
        passed=passed,
        detail=(
            f"observed {observed:g} vs baseline {baseline:g} "
            f"(drop {drop * 100:.1f}%, limit {limit * 100:.1f}%)"
            if passed else
            f"observed {observed:g} dropped {drop * 100:.1f}% from "
            f"baseline {baseline:g} (limit {limit * 100:.1f}%)"
        ),
        **base,
    )


def gate_manifest(
    manifest: Mapping,
    baseline: Mapping,
    tolerances: Optional[Mapping[str, Tuple[str, float]]] = None,
    allow_extra_cells: bool = False,
) -> GateReport:
    """Compare *manifest* against *baseline*, one verdict per check.

    *tolerances* overrides win over the manifest config's tolerances,
    which win over :data:`DEFAULT_TOLERANCES`.  With
    ``allow_extra_cells`` a manifest cell absent from the baseline is a
    passing "new cell" note instead of a failure.
    """
    validate_manifest(dict(manifest))
    validate_manifest(dict(baseline))
    resolved = _resolve_tolerances(manifest, tolerances)
    manifest_cells: Dict = dict(manifest["cells"])
    baseline_cells: Dict = dict(baseline["cells"])
    verdicts: List[GateVerdict] = []

    for cell_id in sorted(baseline_cells):
        if cell_id not in manifest_cells:
            verdicts.append(GateVerdict(
                cell=cell_id,
                metric="__cell__",
                kind="missing_cell",
                passed=False,
                detail=(
                    "cell present in baseline but missing from the "
                    "manifest (coverage regressed)"
                ),
            ))
    for cell_id in sorted(manifest_cells):
        record = manifest_cells[cell_id]
        if cell_id not in baseline_cells:
            verdicts.append(GateVerdict(
                cell=cell_id,
                metric="__cell__",
                kind="extra_cell",
                passed=allow_extra_cells,
                detail=(
                    "cell absent from the baseline; regenerate the "
                    "baseline to accept the new matrix"
                ),
            ))
            continue
        base_record = baseline_cells[cell_id]
        golden = bool(record.get("golden"))
        observed_values = {**record["metrics"], **record["perf"]}
        baseline_values = {
            **base_record["metrics"], **base_record["perf"],
        }
        for metric in sorted(resolved):
            if (
                metric not in observed_values
                and metric not in baseline_values
            ):
                continue
            verdicts.append(_judge(
                cell_id,
                resolved[metric],
                baseline_values.get(metric),
                observed_values.get(metric),
                golden,
            ))
    return GateReport(
        verdicts=tuple(verdicts),
        manifest_name=str(manifest.get("name", "?")),
        baseline_name=str(baseline.get("name", "?")),
    )


def diff_manifests(
    manifest: Mapping, baseline: Mapping
) -> Dict[str, object]:
    """Per-cell, per-metric deltas between two manifests.

    Purely descriptive (no tolerances applied) — the ``expt diff``
    command renders this when a gate failure needs investigating.
    """
    validate_manifest(dict(manifest))
    validate_manifest(dict(baseline))
    manifest_cells: Dict = dict(manifest["cells"])
    baseline_cells: Dict = dict(baseline["cells"])
    cells: Dict[str, object] = {}
    for cell_id in sorted(set(manifest_cells) | set(baseline_cells)):
        ours = manifest_cells.get(cell_id)
        theirs = baseline_cells.get(cell_id)
        if ours is None or theirs is None:
            cells[cell_id] = {
                "status": "extra" if theirs is None else "missing",
            }
            continue
        deltas: Dict[str, object] = {}
        ours_values = {**ours["metrics"], **ours["perf"]}
        theirs_values = {**theirs["metrics"], **theirs["perf"]}
        for metric in sorted(set(ours_values) | set(theirs_values)):
            a = theirs_values.get(metric)
            b = ours_values.get(metric)
            if a == b:
                continue
            entry: Dict[str, object] = {"baseline": a, "observed": b}
            if _is_number(a) and _is_number(b) and a != 0:
                entry["relative"] = (b - a) / a
            deltas[metric] = entry
        cells[cell_id] = {"status": "common", "deltas": deltas}
    return {
        "manifest": manifest.get("name"),
        "baseline": baseline.get("name"),
        "cells": cells,
    }
