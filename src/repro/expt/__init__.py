"""Config-driven experiment matrices with perf/SLO regression gates.

The ROADMAP's substrate item: declarative **workload × drive topology ×
cache × batching × seed** matrices (:mod:`repro.expt.config`), a runner
that fans the expanded cells over the perf sweep's ProcessPool and
writes structured results directories (:mod:`repro.expt.runner`), and a
gate that compares a results manifest against the committed baseline
with per-metric tolerances and fails tests on regression
(:mod:`repro.expt.gate`).  Driven by ``repro expt run|gate|diff``.
"""

from repro.expt.config import (
    CONFIG_SCHEMA_VERSION,
    ExperimentConfig,
    ExperimentConfigError,
    MatrixCell,
    WorkloadSpec,
    canonical_json,
    config_hash,
    full_config,
    load_config,
    smoke_config,
)
from repro.expt.gate import (
    DEFAULT_TOLERANCES,
    GateReport,
    GateVerdict,
    Tolerance,
    diff_manifests,
    gate_manifest,
)
from repro.expt.runner import (
    MANIFEST_SCHEMA_VERSION,
    CellResult,
    MatrixReport,
    build_manifest,
    cell_from_scale_result,
    run_cell,
    run_matrix,
    stable_json,
    validate_manifest,
    write_results,
)

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "DEFAULT_TOLERANCES",
    "ExperimentConfig",
    "ExperimentConfigError",
    "MatrixCell",
    "WorkloadSpec",
    "CellResult",
    "MatrixReport",
    "GateReport",
    "GateVerdict",
    "Tolerance",
    "build_manifest",
    "canonical_json",
    "cell_from_scale_result",
    "config_hash",
    "diff_manifests",
    "full_config",
    "gate_manifest",
    "load_config",
    "run_cell",
    "run_matrix",
    "smoke_config",
    "stable_json",
    "validate_manifest",
    "write_results",
]
