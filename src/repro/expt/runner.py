"""Experiment-matrix runner: fan cells over workers, write results dirs.

:func:`run_matrix` expands an :class:`~repro.expt.config.ExperimentConfig`
and maps :func:`run_cell` over the cells through the same ProcessPool
fan-out the perf sweep uses (:func:`repro.perf.sweep.map_parallel`).
The output is a structured results directory::

    <out_dir>/
      matrix.json          # the manifest: config, hash, every cell
      cells/<cell_id>.json # one file per cell, stable-sorted JSON

Every JSON artifact is written with sorted keys, two-space indent, and a
trailing newline (:func:`stable_json`).  A cell record separates its
**metrics** — simulation outcomes that are byte-identical across runs
with the same seed (delivered blocks, misses, continuity/reject/cache
ratios, SLO breaches) — from its **perf** section (wall seconds and
blocks per wall-second), which is honest about being host- and
run-dependent.  The gate (:mod:`repro.expt.gate`) reads both; regression
tests pin only the metrics.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.expt.config import (
    CONFIG_SCHEMA_VERSION,
    ExperimentConfig,
    MatrixCell,
)
from repro.perf.scenarios import (
    ScaleResult,
    ScaleScenario,
    run_obs_overhead_scenario,
    run_scale_scenario,
)
from repro.perf.sweep import map_parallel

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "CellResult",
    "MatrixReport",
    "cell_from_scale_result",
    "run_cell",
    "run_matrix",
    "stable_json",
    "validate_manifest",
    "write_results",
]

#: Version of the manifest/cell record shape; bump on changes.
MANIFEST_SCHEMA_VERSION = 1

#: Metric keys every cell record carries (None when not applicable).
METRIC_KEYS = (
    "blocks_delivered",
    "misses",
    "rounds",
    "continuity_ratio",
    "reject_rate",
    "cache_hit_ratio",
    "slo_breaches",
    "slo_breach_events",
    "handoffs",
    "handoff_clean_ratio",
)

#: Keys of the timing-dependent perf section.  ``obs_overhead_ratio``
#: lives here (not in metrics) because it is a wall-clock ratio: gated
#: by an absolute ceiling, but never byte-stable.
PERF_KEYS = ("wall_time_s", "blocks_per_second")


def stable_json(value: object) -> str:
    """Sorted-key, indented JSON with a trailing newline.

    The one serialization every expt artifact uses, so identical data is
    identical bytes — the byte-stability contract the regression tests
    and the golden-file workflow rely on.
    """
    import json

    return json.dumps(value, sort_keys=True, indent=2) + "\n"


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    """A guarded ratio: None instead of dividing by zero or NaN."""
    if denominator != denominator or numerator != numerator:
        return None
    if denominator == 0:
        return None
    return numerator / denominator


@dataclass(frozen=True)
class CellResult:
    """One executed cell: its spec, deterministic metrics, and timings."""

    cell_id: str
    kind: str
    golden: bool
    spec: Dict[str, object]
    metrics: Dict[str, Optional[float]]
    perf: Dict[str, float]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the per-cell file and manifest shape)."""
        return {
            "cell_id": self.cell_id,
            "kind": self.kind,
            "golden": self.golden,
            "spec": dict(self.spec),
            "metrics": dict(self.metrics),
            "perf": dict(self.perf),
        }


def _metrics_template() -> Dict[str, Optional[float]]:
    return {key: None for key in METRIC_KEYS}


def _run_scale_cell(cell: MatrixCell) -> CellResult:
    spec = cell.spec_dict()
    scenario = ScaleScenario(
        name=cell.cell_id,
        streams=spec["streams"],
        blocks_per_stream=spec["blocks_per_stream"],
        k=spec["k"],
        buffer_capacity=spec["buffer_capacity"],
        seed=spec["seed"],
        drive=spec["drive"],
        arrivals=spec["arrivals"],
    )
    result = run_scale_scenario(scenario)
    metrics = _metrics_template()
    metrics.update(
        blocks_delivered=result.blocks_delivered,
        misses=result.misses,
        rounds=result.rounds,
        continuity_ratio=_ratio(
            result.blocks_delivered - result.misses,
            result.blocks_delivered,
        ),
        reject_rate=0.0,
    )
    return CellResult(
        cell_id=cell.cell_id,
        kind=cell.kind,
        golden=cell.golden,
        spec=spec,
        metrics=metrics,
        perf={
            "wall_time_s": result.wall_time_s,
            "blocks_per_second": result.blocks_per_second,
        },
    )


def _run_server_cell(cell: MatrixCell) -> CellResult:
    from repro.obs.observer import Observability
    from repro.server.scenarios import run_server_hot_scenario

    spec = cell.spec_dict()
    obs = Observability.for_scale(seed=spec["seed"])
    started = time.perf_counter()
    run = run_server_hot_scenario(
        sessions=spec["sessions"],
        strands=spec["strands"],
        seconds=spec["seconds"],
        seed=spec["seed"],
        cache_blocks=spec["cache_blocks"],
        batch_window=(
            spec["batch_window"] if spec["batching"] else 0.0
        ),
        obs=obs,
    )
    wall = time.perf_counter() - started
    final = run.final
    delivered = sum(s.blocks_delivered for s in final.statuses)
    hits = final.cache_stats.get("hits", 0)
    cache_misses = final.cache_stats.get("misses", 0)
    # Unresolved breaches (still bad when the run ends) gate golden
    # cells; transition events are recorded separately because healthy
    # runs breach transiently (the cache-warm SLO always starts cold).
    breaches = breach_events = 0
    if obs.slo is not None:
        summary = obs.slo.summary_dict()
        breaches = len(summary["breached_now"])
        breach_events = sum(
            1
            for event in summary["breach_events"]
            if event["to"] == "breach"
        )
    metrics = _metrics_template()
    metrics.update(
        blocks_delivered=delivered,
        misses=final.total_misses,
        rounds=final.rounds,
        continuity_ratio=_ratio(
            final.continuous_sessions, final.admitted
        ),
        reject_rate=_ratio(len(final.rejects), len(final.statuses)),
        cache_hit_ratio=_ratio(hits, hits + cache_misses),
        slo_breaches=breaches,
        slo_breach_events=breach_events,
    )
    safe_wall = max(wall, 1e-9)
    return CellResult(
        cell_id=cell.cell_id,
        kind=cell.kind,
        golden=cell.golden,
        spec=spec,
        metrics=metrics,
        perf={
            "wall_time_s": wall,
            "blocks_per_second": delivered / safe_wall,
        },
    )


def _run_obs_overhead_cell(cell: MatrixCell) -> CellResult:
    spec = cell.spec_dict()
    result = run_obs_overhead_scenario(
        streams=spec["streams"],
        blocks_per_stream=spec["blocks_per_stream"],
        repeats=spec["repeats"],
        seed=spec["seed"],
    )
    metrics = _metrics_template()
    metrics.update(
        blocks_delivered=spec["streams"] * spec["blocks_per_stream"],
    )
    return CellResult(
        cell_id=cell.cell_id,
        kind=cell.kind,
        golden=cell.golden,
        spec=spec,
        metrics=metrics,
        perf={
            "wall_time_s": result.wall_obs_s,
            "blocks_per_second": _ratio(
                spec["streams"] * spec["blocks_per_stream"],
                result.wall_obs_s,
            ) or 0.0,
            "obs_overhead_ratio": result.ratio,
        },
    )


def _run_cluster_cell(cell: MatrixCell) -> CellResult:
    from repro.cluster import run_cluster_failover_scenario

    spec = cell.spec_dict()
    started = time.perf_counter()
    run = run_cluster_failover_scenario(
        nodes=spec["nodes"],
        sessions=spec["sessions"],
        titles=spec["titles"],
        seconds=spec["seconds"],
        per_node_streams=spec["per_node_streams"],
        min_replicas=spec["min_replicas"],
        chunks=spec["chunks"],
        kill_node=spec["kill_node"],
        kill_chunk=spec["kill_chunk"],
        seed=spec["seed"],
    )
    wall = time.perf_counter() - started
    result = run.result
    delivered = sum(s.blocks_delivered for s in result.statuses)
    hits = cache_misses = 0
    for node in result.per_node:
        for serve in node.results:
            hits += serve.cache_stats.get("hits", 0)
            cache_misses += serve.cache_stats.get("misses", 0)
    breaches = breach_events = 0
    obs = run.obs
    if obs.slo is not None:
        summary = obs.slo.summary_dict()
        breaches = len(summary["breached_now"])
        breach_events = sum(
            1
            for event in summary["breach_events"]
            if event["to"] == "breach"
        )
    metrics = _metrics_template()
    metrics.update(
        blocks_delivered=delivered,
        misses=result.total_misses,
        rounds=sum(node.rounds for node in result.per_node),
        continuity_ratio=_ratio(
            result.continuous_sessions, result.admitted
        ),
        reject_rate=_ratio(len(result.rejects), len(result.statuses)),
        cache_hit_ratio=_ratio(hits, hits + cache_misses),
        slo_breaches=breaches,
        slo_breach_events=breach_events,
        handoffs=len(result.handoffs),
        handoff_clean_ratio=_ratio(
            result.handoffs_clean, len(result.handoffs)
        ),
    )
    safe_wall = max(wall, 1e-9)
    return CellResult(
        cell_id=cell.cell_id,
        kind=cell.kind,
        golden=cell.golden,
        spec=spec,
        metrics=metrics,
        perf={
            "wall_time_s": wall,
            "blocks_per_second": delivered / safe_wall,
        },
    )


def run_cell(cell: MatrixCell) -> CellResult:
    """Execute one matrix cell (module-level, so workers can pickle it)."""
    if cell.kind == "scale":
        return _run_scale_cell(cell)
    if cell.kind == "server-hot":
        return _run_server_cell(cell)
    if cell.kind == "obs-overhead":
        return _run_obs_overhead_cell(cell)
    if cell.kind == "cluster-scale":
        return _run_cluster_cell(cell)
    raise ParameterError(f"unknown cell kind {cell.kind!r}")


@dataclass(frozen=True)
class MatrixReport:
    """A completed matrix run: the config plus every cell result."""

    config: ExperimentConfig
    cells: Tuple[CellResult, ...]
    workers: int
    parallel: bool
    wall_time_s: float

    def manifest_dict(self) -> Dict[str, object]:
        """The ``matrix.json`` manifest this run serializes to."""
        return {
            "kind": "expt_matrix",
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "name": self.config.name,
            "config": self.config.to_dict(),
            "config_hash": self.config.hash,
            "workers": self.workers,
            "parallel": self.parallel,
            "wall_time_s": self.wall_time_s,
            "cells": {
                cell.cell_id: cell.to_dict() for cell in self.cells
            },
        }


def run_matrix(
    config: ExperimentConfig,
    workers: Optional[int] = None,
) -> MatrixReport:
    """Expand *config* and run every cell, fanning across processes."""
    cells = config.expand()
    started = time.perf_counter()
    results, used_workers, parallel = map_parallel(
        run_cell, cells, workers
    )
    return MatrixReport(
        config=config,
        cells=tuple(results),
        workers=used_workers,
        parallel=parallel,
        wall_time_s=time.perf_counter() - started,
    )


def write_results(report: MatrixReport, out_dir) -> str:
    """Write the manifest + per-cell files; returns the manifest path."""
    from pathlib import Path

    out = Path(out_dir)
    cells_dir = out / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)
    for cell in report.cells:
        (cells_dir / f"{cell.cell_id}.json").write_text(
            stable_json(cell.to_dict())
        )
    manifest_path = out / "matrix.json"
    manifest_path.write_text(stable_json(report.manifest_dict()))
    return str(manifest_path)


def cell_from_scale_result(
    result: ScaleResult, golden: bool = False
) -> Dict[str, object]:
    """Bridge a perf-sweep :class:`ScaleResult` into the cell shape.

    ``benchmarks/bench_perf_scale.py`` uses this to emit its scale
    points as a matrix manifest alongside BENCH_PERF.json, so the bench
    trajectory and the experiment gate speak one schema.
    """
    metrics = _metrics_template()
    metrics.update(
        blocks_delivered=result.blocks_delivered,
        misses=result.misses,
        rounds=result.rounds,
        continuity_ratio=_ratio(
            result.blocks_delivered - result.misses,
            result.blocks_delivered,
        ),
        reject_rate=0.0,
    )
    return CellResult(
        cell_id=result.name,
        kind="scale",
        golden=golden,
        spec={
            "arrivals": result.arrivals,
            "drive": result.drive,
            "blocks_per_stream": result.blocks_per_stream,
            "seed": result.seed,
            "streams": result.streams,
        },
        metrics=metrics,
        perf={
            "wall_time_s": result.wall_time_s,
            "blocks_per_second": result.blocks_per_second,
        },
    ).to_dict()


def build_manifest(
    name: str,
    cell_records: Sequence[Dict[str, object]],
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
    parallel: bool = False,
    wall_time_s: float = 0.0,
) -> Dict[str, object]:
    """Assemble a manifest dict from already-built cell records."""
    if config is not None:
        config_dict = config.to_dict()
        digest = config.hash
    else:
        from repro.expt.config import config_hash

        config_dict = {
            "schema_version": CONFIG_SCHEMA_VERSION,
            "name": name,
            "description": "external cell records (no declarative config)",
            "axes": {},
            "workloads": [],
            "tolerances": {},
        }
        digest = config_hash(config_dict)
    ids = [record["cell_id"] for record in cell_records]
    duplicates = sorted({i for i in ids if ids.count(i) > 1})
    if duplicates:
        raise ParameterError(
            "duplicate cell id(s) in manifest records: "
            f"{', '.join(duplicates)}"
        )
    manifest = {
        "kind": "expt_matrix",
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "name": name,
        "config": config_dict,
        "config_hash": digest,
        "workers": workers,
        "parallel": parallel,
        "wall_time_s": wall_time_s,
        "cells": {
            record["cell_id"]: dict(record) for record in cell_records
        },
    }
    validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: object) -> Dict[str, object]:
    """Check a manifest against the schema; returns it or raises.

    Raises :class:`~repro.errors.ParameterError` with a message naming
    the offending key, so CI failures read as schema diagnoses rather
    than KeyErrors.
    """

    def fail(message: str) -> None:
        raise ParameterError(f"invalid expt manifest: {message}")

    if not isinstance(manifest, dict):
        fail(f"expected an object, got {type(manifest).__name__}")
    required = {
        "kind", "schema_version", "name", "config", "config_hash",
        "workers", "parallel", "wall_time_s", "cells",
    }
    missing = sorted(required - set(manifest))
    if missing:
        fail(f"missing key(s): {', '.join(missing)}")
    if manifest["kind"] != "expt_matrix":
        fail(f"kind must be 'expt_matrix', got {manifest['kind']!r}")
    if manifest["schema_version"] != MANIFEST_SCHEMA_VERSION:
        fail(
            f"schema_version must be {MANIFEST_SCHEMA_VERSION}, "
            f"got {manifest['schema_version']!r}"
        )
    if not isinstance(manifest["config_hash"], str) or (
        not manifest["config_hash"].startswith("sha256:")
    ):
        fail("config_hash must be a 'sha256:...' string")
    cells = manifest["cells"]
    if not isinstance(cells, dict) or not cells:
        fail("cells must be a non-empty object")
    for cell_id, record in cells.items():
        if not isinstance(record, dict):
            fail(f"cell {cell_id} must be an object")
        cell_missing = sorted(
            {"cell_id", "kind", "golden", "spec", "metrics", "perf"}
            - set(record)
        )
        if cell_missing:
            fail(
                f"cell {cell_id} missing key(s): "
                f"{', '.join(cell_missing)}"
            )
        if record["cell_id"] != cell_id:
            fail(
                f"cell {cell_id} has mismatched cell_id "
                f"{record['cell_id']!r}"
            )
        metrics = record["metrics"]
        if not isinstance(metrics, dict):
            fail(f"cell {cell_id} metrics must be an object")
        metric_missing = sorted(set(METRIC_KEYS) - set(metrics))
        if metric_missing:
            fail(
                f"cell {cell_id} metrics missing: "
                f"{', '.join(metric_missing)}"
            )
        perf = record["perf"]
        if not isinstance(perf, dict) or (
            sorted(set(PERF_KEYS) - set(perf))
        ):
            fail(
                f"cell {cell_id} perf must carry "
                f"{', '.join(PERF_KEYS)}"
            )
        for key, value in {**metrics, **perf}.items():
            if value is None:
                continue
            if not isinstance(value, (int, float)) or (
                isinstance(value, bool)
            ):
                fail(
                    f"cell {cell_id} {key} must be numeric or null, "
                    f"got {value!r}"
                )
            if value != value:
                fail(f"cell {cell_id} {key} is NaN")
    return manifest


def default_workers() -> int:
    """The worker default mirroring the perf sweep's choice."""
    return os.cpu_count() or 1
