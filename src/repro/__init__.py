"""repro — a reproduction of Rangan & Vin's multimedia file system.

This library re-implements, from scratch and in pure Python, the system
described in P. Venkat Rangan and Harrick M. Vin, *Designing File Systems
for Digital Video and Audio* (SOSP 1991):

* the **analytical storage model** relating disk and device characteristics
  to recording rates, yielding storage *granularity* and *scattering*
  parameters that guarantee continuous retrieval (:mod:`repro.core`);
* the **admission-control algorithm** that decides whether a new
  storage/retrieval request can be serviced without violating any active
  request's real-time constraints (:mod:`repro.core.admission`);
* a simulated **disk substrate** with constrained block allocation
  (:mod:`repro.disk`) and simulated **media devices** (:mod:`repro.media`);
* the **Multimedia Storage Manager** — strands, 3-level block indices,
  silence elimination, garbage collection (:mod:`repro.fs`);
* the **Multimedia Rope Server** — ropes, synchronization information, the
  copy-free editing operations INSERT / REPLACE / SUBSTRING / CONCATE /
  DELETE, and the §4.2 scattering-repair algorithm (:mod:`repro.rope`);
* a **discrete-event simulation engine** and a round-based real-time
  service loop used to validate continuity empirically
  (:mod:`repro.sim`, :mod:`repro.service`);
* workload generators and experiment drivers regenerating every
  quantitative figure in the paper (:mod:`repro.workload`,
  :mod:`repro.analysis`).

The supported public surface is the typed message API plus the
multi-tenant server front end:

* :mod:`repro.api` — the request/response dataclasses every client
  speaks (re-exported here: :class:`OpenSessionRequest`,
  :class:`SessionStatus`, :class:`ServeResult`, …);
* :class:`repro.server.MediaServer` — owns the storage-manager +
  rope-server + service stack and serves request queues end to end with
  batched admission, a block cache, and typed overload.

Quick start::

    from repro import MediaServer, OpenSessionRequest
    from repro.server import build_media_server

    server = build_media_server()
    # ... record ropes via server.mrs, then:
    result = server.serve(
        [OpenSessionRequest(client_id="alice", rope_id="R0001")]
    )
    print(result.continuous_sessions)

The lower layers (``core``, ``disk``, ``fs``, ``rope``, ``service``, …)
stay importable for library use and experiments; the old habit of
importing their classes straight off ``repro`` (``repro.PlaybackSession``
etc.) still works but warns :class:`DeprecationWarning` — reach into the
owning module, or better, use the facade above.
"""

import importlib
import warnings

from repro import (
    analysis,
    api,
    config,
    core,
    disk,
    errors,
    faults,
    fs,
    media,
    obs,
    rope,
    server,
    service,
    sim,
    units,
    workload,
)
from repro.api import (
    Media,
    OpenSessionRequest,
    OpenSessionResponse,
    PauseRequest,
    PlayRequest,
    RejectReason,
    ResumeRequest,
    ServeResult,
    SessionState,
    SessionStatus,
    StopRequest,
)
from repro.server import MediaServer

__version__ = "1.1.0"

__all__ = [
    "Media",
    "MediaServer",
    "OpenSessionRequest",
    "OpenSessionResponse",
    "PauseRequest",
    "PlayRequest",
    "RejectReason",
    "ResumeRequest",
    "ServeResult",
    "SessionState",
    "SessionStatus",
    "StopRequest",
    "analysis",
    "api",
    "config",
    "core",
    "disk",
    "errors",
    "faults",
    "fs",
    "media",
    "obs",
    "rope",
    "server",
    "service",
    "sim",
    "units",
    "workload",
    "__version__",
]

#: Old top-level entry points, kept importable behind a DeprecationWarning.
#: name -> (owning module, attribute, suggested replacement)
_DEPRECATED_ALIASES = {
    "MultimediaStorageManager": (
        "repro.fs", "MultimediaStorageManager", "repro.fs"
    ),
    "MultimediaRopeServer": (
        "repro.rope", "MultimediaRopeServer", "repro.rope"
    ),
    "PlaybackSession": (
        "repro.service", "PlaybackSession", "repro.server.MediaServer"
    ),
    "RoundRobinService": (
        "repro.service", "RoundRobinService", "repro.server.MediaServer"
    ),
    "stub_for": ("repro.service.rpc", "stub_for", "repro.service.rpc"),
}


def __getattr__(name):
    """Resolve deprecated top-level aliases with a warning (PEP 562)."""
    if name in _DEPRECATED_ALIASES:
        module_name, attribute, replacement = _DEPRECATED_ALIASES[name]
        warnings.warn(
            f"repro.{name} is deprecated; import {attribute} from "
            f"{module_name} (or use {replacement})",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
