"""repro — a reproduction of Rangan & Vin's multimedia file system.

This library re-implements, from scratch and in pure Python, the system
described in P. Venkat Rangan and Harrick M. Vin, *Designing File Systems
for Digital Video and Audio* (SOSP 1991):

* the **analytical storage model** relating disk and device characteristics
  to recording rates, yielding storage *granularity* and *scattering*
  parameters that guarantee continuous retrieval (:mod:`repro.core`);
* the **admission-control algorithm** that decides whether a new
  storage/retrieval request can be serviced without violating any active
  request's real-time constraints (:mod:`repro.core.admission`);
* a simulated **disk substrate** with constrained block allocation
  (:mod:`repro.disk`) and simulated **media devices** (:mod:`repro.media`);
* the **Multimedia Storage Manager** — strands, 3-level block indices,
  silence elimination, garbage collection (:mod:`repro.fs`);
* the **Multimedia Rope Server** — ropes, synchronization information, the
  copy-free editing operations INSERT / REPLACE / SUBSTRING / CONCATE /
  DELETE, and the §4.2 scattering-repair algorithm (:mod:`repro.rope`);
* a **discrete-event simulation engine** and a round-based real-time
  service loop used to validate continuity empirically
  (:mod:`repro.sim`, :mod:`repro.service`);
* workload generators and experiment drivers regenerating every
  quantitative figure in the paper (:mod:`repro.workload`,
  :mod:`repro.analysis`).

Quick start::

    from repro import config, core

    profile = config.TESTBED_1991
    block = core.video_block_model(profile.video, granularity=4)
    l_max = core.max_scattering(
        core.Architecture.PIPELINED, block, profile.disk,
        profile.video_device,
    )
    print(f"blocks may be scattered up to {l_max * 1e3:.2f} ms apart")
"""

from repro import (
    analysis,
    config,
    core,
    disk,
    errors,
    faults,
    fs,
    media,
    obs,
    rope,
    service,
    sim,
    units,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "config",
    "core",
    "disk",
    "errors",
    "faults",
    "fs",
    "media",
    "obs",
    "rope",
    "service",
    "sim",
    "units",
    "workload",
    "__version__",
]
