"""repro — a reproduction of Rangan & Vin's multimedia file system.

This library re-implements, from scratch and in pure Python, the system
described in P. Venkat Rangan and Harrick M. Vin, *Designing File Systems
for Digital Video and Audio* (SOSP 1991):

* the **analytical storage model** relating disk and device characteristics
  to recording rates, yielding storage *granularity* and *scattering*
  parameters that guarantee continuous retrieval (:mod:`repro.core`);
* the **admission-control algorithm** that decides whether a new
  storage/retrieval request can be serviced without violating any active
  request's real-time constraints (:mod:`repro.core.admission`);
* a simulated **disk substrate** with constrained block allocation
  (:mod:`repro.disk`) and simulated **media devices** (:mod:`repro.media`);
* the **Multimedia Storage Manager** — strands, 3-level block indices,
  silence elimination, garbage collection (:mod:`repro.fs`);
* the **Multimedia Rope Server** — ropes, synchronization information, the
  copy-free editing operations INSERT / REPLACE / SUBSTRING / CONCATE /
  DELETE, and the §4.2 scattering-repair algorithm (:mod:`repro.rope`);
* a **discrete-event simulation engine** and a round-based real-time
  service loop used to validate continuity empirically
  (:mod:`repro.sim`, :mod:`repro.service`);
* workload generators and experiment drivers regenerating every
  quantitative figure in the paper (:mod:`repro.workload`,
  :mod:`repro.analysis`).

The supported public surface is the typed message API plus the two
deployment front ends:

* :mod:`repro.api` — the request/response dataclasses every client
  speaks, single-server and cluster alike (re-exported here:
  :class:`OpenSessionRequest`, :class:`SessionStatus`,
  :class:`ServeResult`, :class:`ClusterServeResult`, …);
* :class:`repro.server.MediaServer` — owns the storage-manager +
  rope-server + service stack and serves request queues end to end with
  batched admission, a block cache, and typed overload;
* :class:`repro.cluster.MediaCluster` — N sharded MediaServers behind
  the same typed API: popularity-aware placement, least-loaded replica
  routing, and deterministic inter-node session handoff.

Quick start::

    from repro import MediaServer, OpenSessionRequest
    from repro.server import build_media_server

    server = build_media_server()
    # ... record ropes via server.mrs, then:
    result = server.serve(
        [OpenSessionRequest(client_id="alice", rope_id="R0001")]
    )
    print(result.continuous_sessions)

The lower layers (``core``, ``disk``, ``fs``, ``rope``, ``service``, …)
stay importable for library use and experiments; import their classes
from the owning module (the old deprecated top-level aliases, e.g.
``repro.PlaybackSession``, have been removed).
"""

from repro import (
    analysis,
    api,
    cluster,
    config,
    core,
    disk,
    errors,
    faults,
    fs,
    media,
    obs,
    rope,
    server,
    service,
    sim,
    units,
    workload,
)
from repro.api import (
    ClusterServeResult,
    HandoffRecord,
    Media,
    NodeServeResult,
    NodeStatus,
    OpenSessionRequest,
    OpenSessionResponse,
    PauseRequest,
    PlayRequest,
    RejectReason,
    ResumeRequest,
    ServeResult,
    SessionState,
    SessionStatus,
    StopRequest,
)
from repro.cluster import MediaCluster
from repro.server import MediaServer

__version__ = "2.0.0"

__all__ = [
    "ClusterServeResult",
    "HandoffRecord",
    "Media",
    "MediaCluster",
    "MediaServer",
    "NodeServeResult",
    "NodeStatus",
    "OpenSessionRequest",
    "OpenSessionResponse",
    "PauseRequest",
    "PlayRequest",
    "RejectReason",
    "ResumeRequest",
    "ServeResult",
    "SessionState",
    "SessionStatus",
    "StopRequest",
    "analysis",
    "api",
    "cluster",
    "config",
    "core",
    "disk",
    "errors",
    "faults",
    "fs",
    "media",
    "obs",
    "rope",
    "server",
    "service",
    "sim",
    "units",
    "workload",
    "__version__",
]
