"""A small discrete-event simulation engine.

The prototype measured continuity against wall-clock time; the
reproduction measures it against a simulated clock (per the repro brief,
real-time I/O timing on modern hardware would be meaningless for a 1991
design anyway).  The engine is a classic event-calendar design:

* :meth:`Engine.at` / :meth:`Engine.after` schedule callbacks;
* :meth:`Engine.spawn` runs a generator-based process that ``yield``s
  delays (floats) or :class:`Signal` objects to wait on;
* :meth:`Engine.run` drains the calendar, optionally up to a horizon.

Determinism: events at equal times fire in scheduling order (a
monotonically increasing sequence number breaks ties), so simulations are
exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, List, Optional, Union

from repro.errors import SimulationError

__all__ = ["Signal", "Engine"]

#: What a process generator may yield: a delay in seconds, or a Signal.
ProcessYield = Union[float, int, "Signal"]
ProcessGenerator = Generator[ProcessYield, None, None]


class Signal:
    """A wake-up condition processes can wait on.

    A process that yields a Signal sleeps until some other party calls
    :meth:`fire`.  Each firing wakes *all* current waiters (broadcast
    semantics); waiters arriving later wait for the next firing.
    """

    def __init__(self, engine: "Engine", name: str = ""):
        self._engine = engine
        self.name = name
        self._waiters: List[ProcessGenerator] = []
        self.fire_count = 0

    def fire(self) -> int:
        """Wake all waiting processes; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine._step_process(process)
        self.fire_count += 1
        return len(waiters)

    def _enlist(self, process: ProcessGenerator) -> None:
        self._waiters.append(process)

    @property
    def waiting(self) -> int:
        """Processes currently blocked on this signal."""
        return len(self._waiters)


class Engine:
    """The simulation clock and event calendar."""

    def __init__(self) -> None:
        self._now = 0.0
        self._calendar: List = []
        self._sequence = itertools.count()
        self.events_executed = 0
        self.processes_spawned = 0
        self.obs = None

    def attach_observer(self, obs) -> None:
        """Publish engine gauges into an :class:`~repro.obs.Observability`.

        The gauges (``engine.now``, ``engine.events_executed``,
        ``engine.processes_spawned``) are refreshed at the end of every
        :meth:`run` drain; the hot event loop itself stays unobserved.
        """
        self.obs = obs

    def _publish_obs(self) -> None:
        registry = self.obs.registry
        registry.gauge("engine.now").set(self._now)
        registry.gauge("engine.events_executed").set(
            float(self.events_executed)
        )
        registry.gauge("engine.processes_spawned").set(
            float(self.processes_spawned)
        )

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------------

    def at(self, when: float, action: Callable[[], None]) -> None:
        """Run *action* at absolute time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when:.9f}, clock is already at "
                f"{self._now:.9f}"
            )
        heapq.heappush(
            self._calendar, (when, next(self._sequence), action)
        )

    def after(self, delay: float, action: Callable[[], None]) -> None:
        """Run *action* after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.at(self._now + delay, action)

    def signal(self, name: str = "") -> Signal:
        """Create a Signal bound to this engine."""
        return Signal(self, name)

    # -- processes ---------------------------------------------------------------

    def spawn(self, process: ProcessGenerator) -> None:
        """Start a generator-based process immediately."""
        self.processes_spawned += 1
        self._step_process(process)

    def _step_process(self, process: ProcessGenerator) -> None:
        try:
            yielded = next(process)
        except StopIteration:
            return
        if isinstance(yielded, Signal):
            yielded._enlist(process)
            return
        delay = float(yielded)
        if delay < 0:
            raise SimulationError(
                f"process yielded negative delay {delay!r}"
            )
        self.after(delay, lambda: self._step_process(process))

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the calendar; returns the final clock value.

        Parameters
        ----------
        until:
            Optional horizon; events after it stay queued and the clock
            stops exactly at the horizon.
        max_events:
            Runaway guard; exceeding it raises :class:`SimulationError`.
        """
        executed = 0
        while self._calendar:
            when, _seq, action = self._calendar[0]
            if until is not None and when > until:
                self._now = until
                if self.obs is not None:
                    self._publish_obs()
                return self._now
            if executed >= max_events:
                # Exact bound: the guard fires before event max_events + 1
                # would run, leaving it (and the clock) untouched.
                raise SimulationError(
                    f"exceeded {max_events} events; suspected infinite loop"
                )
            heapq.heappop(self._calendar)
            self._now = when
            action()
            executed += 1
            self.events_executed += 1
        if until is not None and until > self._now:
            self._now = until
        if self.obs is not None:
            self._publish_obs()
        return self._now

    @property
    def pending(self) -> int:
        """Events still on the calendar."""
        return len(self._calendar)
