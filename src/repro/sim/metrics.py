"""Continuity metrics: what the simulation measures (§3.1's requirement).

"For continuous retrieval of media data, it is essential that media
information be available at the display device at or before the time of
its playback."  :class:`ContinuityMetrics` scores one request's playback
against that requirement: every block has a deadline (from the recording
rate) and an arrival time (from the simulated disk); a block arriving
after its deadline is a **continuity violation** ("glitch"), and its
lateness quantifies how audible/visible the glitch would be.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ParameterError

__all__ = ["ContinuityMetrics", "SweepSeries"]


@dataclass
class ContinuityMetrics:
    """Deadline bookkeeping for one playback/recording request."""

    request_id: str = ""
    blocks_delivered: int = 0
    misses: int = 0
    skips: int = 0
    total_lateness: float = 0.0
    max_lateness: float = 0.0
    startup_latency: float = 0.0
    buffer_high_water: int = 0
    _lateness_samples: List[float] = field(default_factory=list)

    def record_delivery(self, arrival: float, deadline: float) -> None:
        """Score one block's arrival against its deadline."""
        self.blocks_delivered += 1
        late = arrival - deadline
        self._lateness_samples.append(late)
        if late > 0:
            self.misses += 1
            self.total_lateness += late
            self.max_lateness = max(self.max_lateness, late)

    def record_skip(self, given_up: float, deadline: float) -> None:
        """Score a block whose data never arrived (fault recovery gave up).

        A skip is always a glitch — the display substitutes (repeats the
        previous frame, mutes the audio) for the block's playback period
        — so it counts as a miss even when recovery abandoned it ahead of
        the deadline to protect the rest of the round.
        """
        self.skips += 1
        self.misses += 1
        late = given_up - deadline
        if late > 0:
            self.total_lateness += late
            self.max_lateness = max(self.max_lateness, late)

    @property
    def continuous(self) -> bool:
        """True when no block missed its deadline."""
        return self.misses == 0

    @property
    def glitches(self) -> int:
        """Visible playback defects: late blocks plus skipped blocks."""
        return self.misses

    @property
    def miss_ratio(self) -> float:
        """Fraction of blocks that missed (skips included)."""
        total = self.blocks_delivered + self.skips
        if total == 0:
            return 0.0
        return self.misses / total

    @property
    def mean_lateness(self) -> float:
        """Mean signed lateness across all blocks (negative = early)."""
        if not self._lateness_samples:
            return 0.0
        return sum(self._lateness_samples) / len(self._lateness_samples)

    @property
    def jitter(self) -> float:
        """Peak-to-peak spread of arrival lateness, seconds."""
        if not self._lateness_samples:
            return 0.0
        return max(self._lateness_samples) - min(self._lateness_samples)

    def summary(self) -> str:
        """Canonical one-line rendering, stable to the last bit.

        Floats are printed with :func:`repr`-exact precision so two runs
        are comparable byte-for-byte — the determinism contract the
        chaos tests replay against.
        """
        return (
            f"request={self.request_id}"
            f" delivered={self.blocks_delivered}"
            f" misses={self.misses}"
            f" skips={self.skips}"
            f" total_lateness={self.total_lateness!r}"
            f" max_lateness={self.max_lateness!r}"
            f" startup={self.startup_latency!r}"
            f" high_water={self.buffer_high_water}"
        )


@dataclass
class SweepSeries:
    """One (x, y) series of a parameter sweep, for report tables."""

    name: str
    x_label: str
    y_label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one sweep point."""
        self.xs.append(x)
        self.ys.append(y)

    def __len__(self) -> int:
        return len(self.xs)

    def y_at(self, x: float) -> float:
        """The y recorded for an exact x (raises if absent)."""
        try:
            return self.ys[self.xs.index(x)]
        except ValueError:
            raise ParameterError(f"no sweep point at x={x!r}") from None
