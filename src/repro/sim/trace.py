"""Event tracing for simulations: a timestamped, filterable log.

Traces are how experiments explain themselves: each service round, block
arrival, deadline, and buffer transition can be recorded and later
filtered or rendered.  Tracing is off by default (``enabled=False``
constructs a null tracer with near-zero cost) so benchmark timings are not
distorted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import SimulationError

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    tag: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.tag:<14} {self.subject:<10} {self.detail}"


class Tracer:
    """Collects :class:`TraceEvent` records.

    Parameters
    ----------
    enabled:
        When False, :meth:`emit` is a no-op.
    limit:
        Maximum retained events; older events are dropped FIFO beyond it
        (simulations can generate millions).
    strict:
        When True, exceeding *limit* raises :class:`SimulationError`
        instead of silently dropping — for tests that assert their trace
        is complete ("no events dropped") rather than merely recent.
    """

    def __init__(
        self,
        enabled: bool = True,
        limit: int = 100_000,
        strict: bool = False,
    ):
        self.enabled = enabled
        self.limit = limit
        self.strict = strict
        self._events: List[TraceEvent] = []
        self.dropped = 0

    @property
    def dropped_count(self) -> int:
        """Events lost to the FIFO limit (0 means the trace is complete)."""
        return self.dropped

    def emit(self, time: float, tag: str, subject: str, detail: str = "") -> None:
        """Record one event (no-op when disabled).

        Raises
        ------
        SimulationError
            In strict mode, when the event would overflow *limit*.
        """
        if not self.enabled:
            return
        if len(self._events) >= self.limit:
            if self.strict:
                raise SimulationError(
                    f"strict tracer overflowed its {self.limit}-event "
                    f"limit at [{time:.6f}] {tag} {subject}"
                )
            self._events.pop(0)
            self.dropped += 1
        self._events.append(TraceEvent(time, tag, subject, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(
        self, tag: Optional[str] = None, subject: Optional[str] = None
    ) -> List[TraceEvent]:
        """Events matching the given tag and/or subject."""
        return [
            event
            for event in self._events
            if (tag is None or event.tag == tag)
            and (subject is None or event.subject == subject)
        ]

    def counts_by_tag(self) -> Dict[str, int]:
        """Histogram of event tags."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.tag] = counts.get(event.tag, 0) + 1
        return counts

    def render(self, last: int = 50) -> str:
        """Human-readable tail of the trace."""
        lines = [str(event) for event in self._events[-last:]]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier events dropped ...")
        return "\n".join(lines)
