"""Discrete-event simulation substrate: engine, metrics, tracing."""

from repro.sim.engine import Engine, Signal
from repro.sim.metrics import ContinuityMetrics, SweepSeries
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "ContinuityMetrics",
    "Engine",
    "Signal",
    "SweepSeries",
    "TraceEvent",
    "Tracer",
]
