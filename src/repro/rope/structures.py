"""The multimedia rope record (§4, Fig. 8).

"A rope contains the name of its creator, its length, access rights, and
for each of its component media strands, the strand's unique ID (a NULL
ID indicates the absence of that media in the rope), rate of recording,
granularity of storage, and block-level correspondence."

:class:`MultimediaRope` is that record: identity + access lists + the
segment list carrying all per-interval synchronization information.  Rope
objects are lightweight metadata — "synchronization information (which is
typically very small in size) is copied from a rope to another when they
share strands", so editing operations freely copy segment lists between
ropes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Sequence, Set, Tuple

from repro.errors import AccessDenied, IntervalError
from repro.rope.intervals import Segment, total_duration

__all__ = ["Media", "MultimediaRope"]


class Media(enum.Enum):
    """Selector for which media an operation applies to (§4.1)."""

    VIDEO = "video"
    AUDIO = "audio"
    AUDIO_VISUAL = "audio_visual"

    @property
    def includes_video(self) -> bool:
        """True when the selector covers the video component."""
        return self in (Media.VIDEO, Media.AUDIO_VISUAL)

    @property
    def includes_audio(self) -> bool:
        """True when the selector covers the audio component."""
        return self in (Media.AUDIO, Media.AUDIO_VISUAL)


@dataclass(frozen=True)
class MultimediaRope:
    """One rope: identity, access rights, and the synchronized segments.

    Attributes
    ----------
    rope_id:
        Unique identifier (Fig. 8's MultimediaRopeID).
    creator:
        Identification of the creator.
    play_access / edit_access:
        User (or group) identifications permitted to PLAY / edit.  The
        creator is always permitted.  An empty list means creator-only.
    segments:
        The ordered strand-interval list with synchronization info.
    """

    rope_id: str
    creator: str
    segments: Tuple[Segment, ...]
    play_access: Tuple[str, ...] = ()
    edit_access: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.segments:
            raise IntervalError(f"rope {self.rope_id!r} has no content")

    @property
    def duration(self) -> float:
        """Fig. 8's Length: playback length of the rope in seconds."""
        return total_duration(self.segments)

    @property
    def has_video(self) -> bool:
        """True when any segment carries video."""
        return any(s.video is not None for s in self.segments)

    @property
    def has_audio(self) -> bool:
        """True when any segment carries audio."""
        return any(s.audio is not None for s in self.segments)

    def referenced_strands(self) -> Set[str]:
        """All strand IDs this rope points into (for interests/GC)."""
        ids: Set[str] = set()
        for segment in self.segments:
            ids.update(segment.strand_ids())
        return ids

    def check_play(self, user: str) -> None:
        """Raise :class:`AccessDenied` unless *user* may PLAY this rope."""
        if user != self.creator and user not in self.play_access and (
            user not in self.edit_access
        ):
            raise AccessDenied(
                f"user {user!r} may not play rope {self.rope_id!r}"
            )

    def check_edit(self, user: str) -> None:
        """Raise :class:`AccessDenied` unless *user* may edit this rope."""
        if user != self.creator and user not in self.edit_access:
            raise AccessDenied(
                f"user {user!r} may not edit rope {self.rope_id!r}"
            )

    def with_segments(
        self, segments: Sequence[Segment]
    ) -> "MultimediaRope":
        """Copy of this rope with new content (edits produce these)."""
        return replace(self, segments=tuple(segments))

    def interval_count(self) -> int:
        """Number of strand intervals (grows with editing, Fig. 9)."""
        return len(self.segments)
