"""Strand-interval algebra: the substrate of copy-free rope editing (§4).

"an edited rope contains a list of pointers to intervals of strands" — a
rope's media content is a list of :class:`Segment` objects, each holding a
per-medium :class:`MediaTrack` reference (strand ID + unit range) plus the
synchronization information of Fig. 8 (recording rates, granularities,
block-level correspondence).

All editing operations reduce to three pure functions over segment lists —
:func:`slice_segments`, :func:`splice_segments`, and
:func:`delete_range` — none of which touch strand contents.  Edit
positions are given in seconds (matching the paper's interfaces) and are
converted to media units against each track's recording rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import IntervalError, ParameterError

__all__ = [
    "MediaTrack",
    "Trigger",
    "Segment",
    "total_duration",
    "slice_segments",
    "splice_segments",
    "delete_range",
]

#: Tolerance (seconds) when comparing edit positions against boundaries.
_EPSILON = 1e-9


@dataclass(frozen=True)
class MediaTrack:
    """A reference to an interval of one media strand.

    Attributes
    ----------
    strand_id:
        The referenced strand.
    start_unit:
        First frame/sample of the interval within the strand.
    length_units:
        Interval length in frames/samples.
    rate:
        The strand's recording rate (units/second) — Fig. 8's
        Video/AudioRecordingRate.
    granularity:
        The strand's storage granularity (units/block) — Fig. 8's
        Video/AudioGranularity.
    """

    strand_id: str
    start_unit: int
    length_units: int
    rate: float
    granularity: int

    def __post_init__(self) -> None:
        if self.start_unit < 0:
            raise IntervalError(
                f"start_unit must be >= 0, got {self.start_unit}"
            )
        if self.length_units < 1:
            raise IntervalError(
                f"length_units must be >= 1, got {self.length_units}"
            )
        if self.rate <= 0:
            raise ParameterError(f"rate must be positive, got {self.rate}")
        if self.granularity < 1:
            raise ParameterError(
                f"granularity must be >= 1, got {self.granularity}"
            )

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.length_units / self.rate

    @property
    def end_unit(self) -> int:
        """One past the last unit of the interval."""
        return self.start_unit + self.length_units

    @property
    def first_block(self) -> int:
        """Strand block number containing the interval's first unit."""
        return self.start_unit // self.granularity

    @property
    def last_block(self) -> int:
        """Strand block number containing the interval's last unit."""
        return (self.end_unit - 1) // self.granularity

    def slice(self, offset_seconds: float, duration_seconds: float) -> "MediaTrack":
        """Sub-interval starting *offset_seconds* in, *duration_seconds* long.

        Unit arithmetic rounds to the nearest unit, clamped to stay a
        valid non-empty sub-interval.
        """
        if offset_seconds < -_EPSILON or duration_seconds <= _EPSILON:
            raise IntervalError(
                f"bad slice: offset {offset_seconds}, duration "
                f"{duration_seconds}"
            )
        offset_units = int(round(offset_seconds * self.rate))
        length = int(round(duration_seconds * self.rate))
        offset_units = min(max(0, offset_units), self.length_units - 1)
        length = max(1, min(length, self.length_units - offset_units))
        return replace(
            self,
            start_unit=self.start_unit + offset_units,
            length_units=length,
        )


@dataclass(frozen=True)
class Trigger:
    """Fig. 8 trigger information: text synchronized with media blocks."""

    video_block: Optional[int]
    audio_block: Optional[int]
    text: str


@dataclass(frozen=True)
class Segment:
    """One strand-interval entry of a rope's content list (Fig. 8/9).

    At least one track must be present.  When both are present their
    durations should agree to within one block period; the block-level
    correspondence (the starting block number of each track) is what the
    playback path uses to start the media together at interval
    boundaries.
    """

    video: Optional[MediaTrack] = None
    audio: Optional[MediaTrack] = None
    triggers: Tuple[Trigger, ...] = ()

    def __post_init__(self) -> None:
        if self.video is None and self.audio is None:
            raise IntervalError("a segment needs at least one media track")

    @property
    def duration(self) -> float:
        """Playback length in seconds (video governs when present)."""
        if self.video is not None:
            return self.video.duration
        assert self.audio is not None
        return self.audio.duration

    @property
    def correspondence(self) -> Tuple[Optional[int], Optional[int]]:
        """Fig. 8's [VideoBlockID, AudioBlockID] starting correspondence."""
        video_block = self.video.first_block if self.video else None
        audio_block = self.audio.first_block if self.audio else None
        return (video_block, audio_block)

    def strand_ids(self) -> List[str]:
        """Strands this segment references."""
        ids = []
        if self.video is not None:
            ids.append(self.video.strand_id)
        if self.audio is not None:
            ids.append(self.audio.strand_id)
        return ids

    def slice(self, offset_seconds: float, duration_seconds: float) -> "Segment":
        """Sub-segment; slices every present track consistently."""
        video = (
            self.video.slice(offset_seconds, duration_seconds)
            if self.video is not None
            else None
        )
        audio = (
            self.audio.slice(offset_seconds, duration_seconds)
            if self.audio is not None
            else None
        )
        return Segment(video=video, audio=audio, triggers=self.triggers)

    def with_tracks(
        self,
        video: Optional[MediaTrack],
        audio: Optional[MediaTrack],
    ) -> "Segment":
        """Copy with replaced tracks (used by single-medium REPLACE)."""
        return Segment(video=video, audio=audio, triggers=self.triggers)


def total_duration(segments: Sequence[Segment]) -> float:
    """Playback length of a segment list, seconds."""
    return sum(segment.duration for segment in segments)


def _locate(
    segments: Sequence[Segment], position: float
) -> Tuple[int, float]:
    """Find (segment index, offset within it) for a time *position*.

    A position exactly at a boundary maps to the *start* of the following
    segment; ``position == total_duration`` maps to ``(len(segments), 0)``.
    """
    if position < -_EPSILON:
        raise IntervalError(f"position must be >= 0, got {position}")
    elapsed = 0.0
    for index, segment in enumerate(segments):
        end = elapsed + segment.duration
        if position < end - _EPSILON:
            return index, max(0.0, position - elapsed)
        elapsed = end
    if position <= elapsed + _EPSILON:
        return len(segments), 0.0
    raise IntervalError(
        f"position {position:.6f} s beyond rope end {elapsed:.6f} s"
    )


def slice_segments(
    segments: Sequence[Segment], start: float, length: float
) -> List[Segment]:
    """The sub-list of segments covering ``[start, start+length)``.

    Partial overlaps are cut with :meth:`Segment.slice`; this is the
    engine of SUBSTRING and the read side of REPLACE.
    """
    if length <= _EPSILON:
        raise IntervalError(f"length must be positive, got {length}")
    end = start + length
    rope_end = total_duration(segments)
    if end > rope_end + max(_EPSILON, 0.5 / _max_rate(segments)):
        raise IntervalError(
            f"interval [{start}, {end}) extends past rope end {rope_end}"
        )
    result: List[Segment] = []
    elapsed = 0.0
    for segment in segments:
        seg_start, seg_end = elapsed, elapsed + segment.duration
        overlap_start = max(start, seg_start)
        overlap_end = min(end, seg_end)
        if overlap_end - overlap_start > _EPSILON:
            result.append(
                segment.slice(
                    overlap_start - seg_start, overlap_end - overlap_start
                )
            )
        elapsed = seg_end
    if not result:
        raise IntervalError(
            f"interval [{start}, {end}) selects no content"
        )
    return result


def _max_rate(segments: Sequence[Segment]) -> float:
    rates = [1.0]
    for segment in segments:
        if segment.video is not None:
            rates.append(segment.video.rate)
        if segment.audio is not None:
            rates.append(segment.audio.rate)
    return max(rates)


def splice_segments(
    segments: Sequence[Segment],
    position: float,
    insertion: Sequence[Segment],
) -> List[Segment]:
    """Insert *insertion* at time *position*, splitting a segment if needed.

    This is Fig. 9's INSERT engine: the base list is cut at *position*
    and the insertion's segments are placed between the halves.
    """
    index, offset = _locate(segments, position)
    result = list(segments[:index])
    if index < len(segments) and offset > _EPSILON:
        target = segments[index]
        result.append(target.slice(0.0, offset))
        result.extend(insertion)
        remainder = target.duration - offset
        if remainder > _EPSILON:
            result.append(target.slice(offset, remainder))
        result.extend(segments[index + 1:])
        return result
    result.extend(insertion)
    result.extend(segments[index:])
    return result


def delete_range(
    segments: Sequence[Segment], start: float, length: float
) -> List[Segment]:
    """Remove ``[start, start+length)`` from the list (DELETE's engine)."""
    if length <= _EPSILON:
        raise IntervalError(f"length must be positive, got {length}")
    end = start + length
    result: List[Segment] = []
    elapsed = 0.0
    for segment in segments:
        seg_start, seg_end = elapsed, elapsed + segment.duration
        elapsed = seg_end
        if seg_end <= start + _EPSILON or seg_start >= end - _EPSILON:
            result.append(segment)
            continue
        # Keep any prefix before the deleted range.
        if start - seg_start > _EPSILON:
            result.append(segment.slice(0.0, start - seg_start))
        # Keep any suffix after the deleted range.
        if seg_end - end > _EPSILON:
            result.append(segment.slice(end - seg_start, seg_end - end))
    if not result:
        raise IntervalError("DELETE removed the entire rope content")
    return result
