"""Trigger information: text synchronized with media blocks (Fig. 8).

The rope record carries, per strand interval, a list of triggers —
``[VideoBlockID, AudioBlockID, TextString]`` — "Text to be synchronized
with audio/video".  The prototype used these to pop captions and slide
changes at exact media positions.

This module provides the two halves:

* :func:`attach_trigger` — place a trigger at a playback time: the
  containing segment is located, the time is snapped to the *start of
  the containing video block* (triggers fire on block boundaries, where
  inter-media correspondence is exact), and the block IDs are recorded.
* :func:`trigger_schedule` — the playback side: walk a segment list and
  emit ``(time_offset, text)`` pairs for every trigger whose block falls
  inside its segment's interval, in firing order.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple

from repro.errors import IntervalError
from repro.rope.intervals import Segment, Trigger

__all__ = ["attach_trigger", "trigger_schedule"]


def attach_trigger(
    segments: Sequence[Segment], time: float, text: str
) -> List[Segment]:
    """Return a copy of *segments* with a trigger at playback *time*.

    The trigger snaps to the start of the block containing *time* in the
    segment's governing medium (video when present, else audio), and
    records both media's block IDs where available.
    """
    if not text:
        raise IntervalError("a trigger needs text")
    if time < 0:
        raise IntervalError(f"trigger time must be >= 0, got {time}")
    elapsed = 0.0
    result = list(segments)
    for position, segment in enumerate(segments):
        end = elapsed + segment.duration
        if time < end or position == len(segments) - 1 and time <= end + 1e-9:
            offset = min(max(0.0, time - elapsed), segment.duration)
            video_block = None
            audio_block = None
            if segment.video is not None:
                unit = segment.video.start_unit + int(
                    offset * segment.video.rate
                )
                video_block = unit // segment.video.granularity
            if segment.audio is not None:
                unit = segment.audio.start_unit + int(
                    offset * segment.audio.rate
                )
                audio_block = unit // segment.audio.granularity
            trigger = Trigger(
                video_block=video_block,
                audio_block=audio_block,
                text=text,
            )
            result[position] = replace(
                segment, triggers=segment.triggers + (trigger,)
            )
            return result
        elapsed = end
    raise IntervalError(
        f"trigger time {time:.3f} s beyond rope end {elapsed:.3f} s"
    )


def trigger_schedule(
    segments: Sequence[Segment],
) -> List[Tuple[float, str]]:
    """All trigger firings of a segment list: ``(time_offset, text)``.

    A trigger fires when its block starts playing.  Triggers whose block
    lies outside the segment's (possibly edited-down) interval are
    silent — exactly like media outside the interval.  The result is
    sorted by firing time.
    """
    firings: List[Tuple[float, str]] = []
    elapsed = 0.0
    for segment in segments:
        for trigger in segment.triggers:
            time = _firing_time(segment, trigger)
            if time is not None:
                firings.append((elapsed + time, trigger.text))
        elapsed += segment.duration
    firings.sort(key=lambda pair: pair[0])
    return firings


def _firing_time(segment: Segment, trigger: Trigger):
    """Offset of a trigger within its segment, or None if out of range."""
    track = None
    block = None
    if trigger.video_block is not None and segment.video is not None:
        track, block = segment.video, trigger.video_block
    elif trigger.audio_block is not None and segment.audio is not None:
        track, block = segment.audio, trigger.audio_block
    if track is None:
        return None
    block_start_unit = block * track.granularity
    if not track.start_unit <= block_start_unit < track.end_unit:
        return None
    return (block_start_unit - track.start_unit) / track.rate
