"""An editing-session backend: the Fig. 12 window editor, sans windows.

"The first application we implemented that uses the file system is a
window-based editor to manipulate multimedia ropes."

:class:`EditingSession` gives ropes human-friendly names, applies the §4.1
operations by name, keeps an operation log and an undo stack (undo is
cheap precisely because editing is pointer manipulation — each log entry
snapshots only segment lists), and renders the status lines the Fig. 12
editor displays (rope length, play status, percentage played).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError, UnknownRopeError
from repro.rope.server import MultimediaRopeServer, RequestState
from repro.rope.structures import Media, MultimediaRope

__all__ = ["LogEntry", "EditingSession"]


@dataclass(frozen=True)
class LogEntry:
    """One applied operation, with enough state to undo it."""

    operation: str
    rope_name: str
    #: (rope_id, segments) snapshots taken *before* the operation, for undo.
    snapshots: Tuple[Tuple[str, tuple], ...]


class EditingSession:
    """Named-rope editing on top of a rope server.

    Parameters
    ----------
    server:
        The MRS this session edits through.
    user:
        The session's user identity, checked against rope access lists.
    """

    def __init__(self, server: MultimediaRopeServer, user: str):
        self.server = server
        self.user = user
        self._names: Dict[str, str] = {}       # name -> rope_id
        self.log: List[LogEntry] = []
        self._undo: List[LogEntry] = []

    # -- naming ---------------------------------------------------------------

    def open(self, name: str, rope_id: str) -> MultimediaRope:
        """Bind *name* to an existing rope."""
        rope = self.server.get_rope(rope_id)
        self._names[name] = rope_id
        return rope

    def rope(self, name: str) -> MultimediaRope:
        """The rope currently bound to *name*."""
        try:
            rope_id = self._names[name]
        except KeyError:
            raise UnknownRopeError(
                f"no rope named {name!r} in this session"
            ) from None
        return self.server.get_rope(rope_id)

    def names(self) -> List[str]:
        """Names bound in this session, sorted."""
        return sorted(self._names)

    # -- operations -------------------------------------------------------------

    def _snapshot(self, *names: str) -> Tuple[Tuple[str, tuple], ...]:
        shots = []
        for name in names:
            rope = self.rope(name)
            shots.append((rope.rope_id, tuple(rope.segments)))
        return tuple(shots)

    def _record(self, operation: str, rope_name: str, snapshots) -> None:
        entry = LogEntry(
            operation=operation, rope_name=rope_name, snapshots=snapshots
        )
        self.log.append(entry)
        self._undo.append(entry)

    def insert(
        self,
        base: str,
        position: float,
        with_name: str,
        with_start: float,
        with_length: float,
        media: Media = Media.AUDIO_VISUAL,
    ) -> MultimediaRope:
        """INSERT an interval of *with_name* into *base* at *position*."""
        snapshots = self._snapshot(base)
        result = self.server.insert(
            self.user, self.rope(base).rope_id, position, media,
            self.rope(with_name).rope_id, with_start, with_length,
        )
        self._record("INSERT", base, snapshots)
        return result

    def replace(
        self,
        base: str,
        media: Media,
        base_start: float,
        base_length: float,
        with_name: str,
        with_start: float,
        with_length: float,
    ) -> MultimediaRope:
        """REPLACE an interval of *base* with an interval of *with_name*."""
        snapshots = self._snapshot(base)
        result = self.server.replace(
            self.user, self.rope(base).rope_id, media,
            base_start, base_length,
            self.rope(with_name).rope_id, with_start, with_length,
        )
        self._record("REPLACE", base, snapshots)
        return result

    def substring(
        self,
        base: str,
        new_name: str,
        start: float,
        length: float,
        media: Media = Media.AUDIO_VISUAL,
    ) -> MultimediaRope:
        """SUBSTRING *base* into a fresh rope bound to *new_name*."""
        if new_name in self._names:
            raise ParameterError(f"name {new_name!r} already bound")
        result = self.server.substring(
            self.user, self.rope(base).rope_id, media, start, length
        )
        self._names[new_name] = result.rope_id
        self._record("SUBSTRING", new_name, ())
        return result

    def concate(self, base: str, other: str) -> MultimediaRope:
        """CONCATE *other* onto the end of *base*."""
        snapshots = self._snapshot(base)
        result = self.server.concate(
            self.user, self.rope(base).rope_id, self.rope(other).rope_id
        )
        self._record("CONCATE", base, snapshots)
        return result

    def delete(
        self,
        base: str,
        start: float,
        length: float,
        media: Media = Media.AUDIO_VISUAL,
    ) -> MultimediaRope:
        """DELETE an interval of *base*."""
        snapshots = self._snapshot(base)
        result = self.server.delete(
            self.user, self.rope(base).rope_id, media, start, length
        )
        self._record("DELETE", base, snapshots)
        return result

    def undo(self) -> Optional[str]:
        """Revert the most recent undoable operation.

        Returns the operation name, or None when nothing is undoable.
        SUBSTRING creates a new rope and is not reverted (the new rope is
        simply left in place), matching editors that treat extraction as
        non-destructive.
        """
        while self._undo:
            entry = self._undo.pop()
            if not entry.snapshots:
                continue
            for rope_id, segments in entry.snapshots:
                rope = self.server.get_rope(rope_id)
                restored = rope.with_segments(segments)
                self.server._install(restored)
            return entry.operation
        return None

    # -- status (the Fig. 12 panel) ------------------------------------------------

    def status(self, name: str, played_seconds: float = 0.0) -> Dict[str, str]:
        """Render the editor's status fields for a named rope."""
        rope = self.rope(name)
        duration = rope.duration
        playing = any(
            request.rope_id == rope.rope_id
            and request.state is RequestState.ACTIVE
            for request in self.server.active_requests()
        )
        percent = 0.0
        if duration > 0:
            percent = min(100.0, 100.0 * played_seconds / duration)
        return {
            "rope": name,
            "length": f"{duration:.2f} sec",
            "play_status": "playing" if playing else "idle",
            "percentage_played": f"{percent:.0f}%",
            "intervals": str(rope.interval_count()),
        }
