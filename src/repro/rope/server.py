"""The Multimedia Rope Server (MRS) — §5.2's upper layer.

"This layer is responsible for creating and maintaining the multimedia
ropes.  It supports all the rope manipulation operations."

The MRS exposes the §4.1 interfaces:

* ``RECORD [media] → [requestID, mmRopeID]`` — admission-controlled; audio
  passes through silence detection and elimination.
* ``PLAY [mmRopeID, interval, media] → requestID`` — admission-controlled.
* ``STOP [requestID]``, ``PAUSE`` (destructive or non-destructive),
  ``RESUME`` (re-runs admission after a destructive pause).
* The editing utilities INSERT, REPLACE, SUBSTRING, CONCATE, DELETE, all
  with access-right checks, automatic interest maintenance for garbage
  collection, and (optionally) §4.2 seam repair.

Playback itself is simulated by :mod:`repro.service`; the MRS hands it a
:class:`PlaybackPlan` — the flattened per-medium block-fetch sequence of a
rope interval.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.admission import RequestDescriptor
from repro.errors import (
    IntervalError,
    ParameterError,
    RequestStateError,
    UnknownRequestError,
    UnknownRopeError,
)
from repro.fs.storage_manager import MultimediaStorageManager
from repro.media.audio import AudioChunk, SilenceDetector
from repro.media.frames import Frame
from repro.rope import operations
from repro.rope.intervals import MediaTrack, Segment
from repro.rope.scattering_repair import RepairReport, ScatteringRepairer
from repro.rope.structures import Media, MultimediaRope

__all__ = [
    "RequestKind",
    "RequestState",
    "Request",
    "BlockFetch",
    "PlaybackPlan",
    "MultimediaRopeServer",
]


class RequestKind(enum.Enum):
    """What a request does."""

    PLAY = "play"
    RECORD = "record"


class RequestState(enum.Enum):
    """Lifecycle states of a PLAY/RECORD request (§4.1)."""

    ACTIVE = "active"
    PAUSED = "paused"                      # non-destructive: resources held
    PAUSED_RELEASED = "paused_released"    # destructive: resources freed
    STOPPED = "stopped"


@dataclass
class Request:
    """One outstanding PLAY or RECORD request."""

    request_id: str
    kind: RequestKind
    rope_id: str
    user: str
    media: Media
    start: float
    length: float
    state: RequestState = RequestState.ACTIVE
    admission_id: Optional[int] = None


@dataclass(frozen=True)
class BlockFetch:
    """One block's worth of playback work.

    Attributes
    ----------
    slot:
        Disk slot to read, or None for a silence delay holder (no disk
        access; the playback path synthesizes silence).
    bits:
        Bits transferred when the block is read (the full block payload —
        partial interval overlap does not shrink the disk transfer).
    duration:
        Playback time this fetch buys, seconds (the interval's overlap
        with the block).
    tokens:
        Frame content tokens covered by the overlap (video media only),
        for round-trip verification.
    """

    slot: Optional[int]
    bits: float
    duration: float
    tokens: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PlaybackPlan:
    """Flattened fetch sequences for one request, per medium."""

    request_id: str
    video: Tuple[BlockFetch, ...]
    audio: Tuple[BlockFetch, ...]

    @property
    def video_duration(self) -> float:
        """Total video playback time, seconds."""
        return sum(fetch.duration for fetch in self.video)

    @property
    def audio_duration(self) -> float:
        """Total audio playback time, seconds."""
        return sum(fetch.duration for fetch in self.audio)

    def tokens(self) -> List[str]:
        """All video frame tokens in playback order."""
        result: List[str] = []
        for fetch in self.video:
            result.extend(fetch.tokens)
        return result


class MultimediaRopeServer:
    """Rope management over one storage manager."""

    def __init__(
        self,
        msm: MultimediaStorageManager,
        auto_repair: bool = True,
    ):
        self.msm = msm
        self.repairer = ScatteringRepairer(msm)
        self.auto_repair = auto_repair
        self._ropes: Dict[str, MultimediaRope] = {}
        self._requests: Dict[str, Request] = {}
        self._rope_ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        self.last_repair: Optional[RepairReport] = None

    # -- lookup ------------------------------------------------------------------

    def get_rope(self, rope_id: str) -> MultimediaRope:
        """Fetch a rope; raises :class:`UnknownRopeError`."""
        try:
            return self._ropes[rope_id]
        except KeyError:
            raise UnknownRopeError(rope_id) from None

    def get_request(self, request_id: str) -> Request:
        """Fetch a request; raises :class:`UnknownRequestError`."""
        try:
            return self._requests[request_id]
        except KeyError:
            raise UnknownRequestError(request_id) from None

    def rope_ids(self) -> List[str]:
        """All rope IDs, sorted."""
        return sorted(self._ropes)

    # -- admission plumbing -------------------------------------------------------

    def _descriptor_for(self, media: Media) -> RequestDescriptor:
        """Admission descriptor for a request's dominant medium.

        Delegates to :meth:`MultimediaStorageManager.descriptor_for_media`
        — the MSM owns the policies and disk parameters the descriptor is
        derived from.
        """
        return self.msm.descriptor_for_media(media.includes_video)

    def _admit(self, media: Media) -> int:
        decision = self.msm.admission.admit(self._descriptor_for(media))
        return decision.request_id

    # -- RECORD / PLAY / STOP / PAUSE / RESUME ---------------------------------------

    def record(
        self,
        user: str,
        frames: Optional[Sequence[Frame]] = None,
        chunks: Optional[Sequence[AudioChunk]] = None,
        detector: Optional[SilenceDetector] = SilenceDetector(),
        heterogeneous: bool = False,
        play_access: Sequence[str] = (),
        edit_access: Sequence[str] = (),
    ) -> Tuple[str, str]:
        """RECORD[media] → [requestID, mmRopeID] (§4.1).

        Stores the supplied captured media as new strands (applying
        silence elimination to audio), builds a one-segment rope, and
        registers interests.  The recording is admission-controlled like
        any other request; the returned request is left ACTIVE so callers
        can follow the paper's protocol ("recording continues until a
        subsequent STOP") — batch users may STOP immediately.
        """
        if frames is None and chunks is None:
            raise ParameterError("RECORD needs at least one medium")
        media = (
            Media.AUDIO_VISUAL
            if frames is not None and chunks is not None
            else (Media.VIDEO if frames is not None else Media.AUDIO)
        )
        admission_id = self._admit(media)
        video_track: Optional[MediaTrack] = None
        audio_track: Optional[MediaTrack] = None
        if heterogeneous:
            if frames is None or chunks is None:
                raise ParameterError(
                    "heterogeneous recording needs both media"
                )
            strand = self.msm.store_mixed_strand(frames, chunks)
            video_track = MediaTrack(
                strand_id=strand.strand_id,
                start_unit=0,
                length_units=strand.unit_count,
                rate=strand.unit_rate,
                granularity=strand.granularity,
            )
        else:
            if frames is not None:
                strand = self.msm.store_video_strand(frames)
                video_track = MediaTrack(
                    strand_id=strand.strand_id,
                    start_unit=0,
                    length_units=strand.unit_count,
                    rate=strand.unit_rate,
                    granularity=strand.granularity,
                )
            if chunks is not None:
                strand = self.msm.store_audio_strand(chunks, detector)
                audio_track = MediaTrack(
                    strand_id=strand.strand_id,
                    start_unit=0,
                    length_units=strand.unit_count,
                    rate=strand.unit_rate,
                    granularity=strand.granularity,
                )
        segment = Segment(video=video_track, audio=audio_track)
        rope = MultimediaRope(
            rope_id=f"R{next(self._rope_ids):04d}",
            creator=user,
            segments=(segment,),
            play_access=tuple(play_access),
            edit_access=tuple(edit_access),
        )
        self._install(rope)
        request = Request(
            request_id=f"Q{next(self._request_ids):04d}",
            kind=RequestKind.RECORD,
            rope_id=rope.rope_id,
            user=user,
            media=media,
            start=0.0,
            length=rope.duration,
            admission_id=admission_id,
        )
        self._requests[request.request_id] = request
        return request.request_id, rope.rope_id

    def adopt_strands(
        self,
        user: str,
        video_strand_id: Optional[str] = None,
        audio_strand_id: Optional[str] = None,
        play_access: Sequence[str] = (),
        edit_access: Sequence[str] = (),
    ) -> str:
        """Build a rope around strands already stored in the MSM.

        The §4.1 merge scenario (separately recorded audio and video tied
        together) and experiments that control strand placement use this;
        block-level correspondence is generated from the strands' starts.
        Returns the new rope's ID.
        """
        if video_strand_id is None and audio_strand_id is None:
            raise ParameterError("adopt_strands needs at least one strand")
        video_track: Optional[MediaTrack] = None
        audio_track: Optional[MediaTrack] = None
        if video_strand_id is not None:
            strand = self.msm.get_strand(video_strand_id)
            video_track = MediaTrack(
                strand_id=strand.strand_id,
                start_unit=0,
                length_units=strand.unit_count,
                rate=strand.unit_rate,
                granularity=strand.granularity,
            )
        if audio_strand_id is not None:
            strand = self.msm.get_strand(audio_strand_id)
            audio_track = MediaTrack(
                strand_id=strand.strand_id,
                start_unit=0,
                length_units=strand.unit_count,
                rate=strand.unit_rate,
                granularity=strand.granularity,
            )
        rope = MultimediaRope(
            rope_id=f"R{next(self._rope_ids):04d}",
            creator=user,
            segments=(Segment(video=video_track, audio=audio_track),),
            play_access=tuple(play_access),
            edit_access=tuple(edit_access),
        )
        self._install(rope)
        return rope.rope_id

    def play(
        self,
        user: str,
        rope_id: str,
        start: float = 0.0,
        length: Optional[float] = None,
        media: Media = Media.AUDIO_VISUAL,
    ) -> str:
        """PLAY[mmRopeID, interval, media] → requestID (§4.1)."""
        rope = self.get_rope(rope_id)
        rope.check_play(user)
        if length is None:
            length = rope.duration - start
        if length <= 0:
            raise IntervalError(
                f"empty playback interval (start {start}, rope length "
                f"{rope.duration:.3f})"
            )
        admission_id = self._admit(media)
        request = Request(
            request_id=f"Q{next(self._request_ids):04d}",
            kind=RequestKind.PLAY,
            rope_id=rope_id,
            user=user,
            media=media,
            start=start,
            length=length,
            admission_id=admission_id,
        )
        self._requests[request.request_id] = request
        return request.request_id

    def open_request(
        self,
        user: str,
        rope_id: str,
        start: float = 0.0,
        length: Optional[float] = None,
        media: Media = Media.AUDIO_VISUAL,
        admission_id: Optional[int] = None,
    ) -> str:
        """Create a PLAY request whose admission is managed externally.

        The media server admits batches, not individual requests: one
        leader per batch holds an admission slot (passed here as
        ``admission_id``) while its followers share the leader's reads
        and carry no slot of their own.  Access and interval checks are
        identical to :meth:`play`; STOP and destructive PAUSE already
        tolerate ``admission_id=None`` (nothing to release).
        """
        rope = self.get_rope(rope_id)
        rope.check_play(user)
        if length is None:
            length = rope.duration - start
        if length <= 0:
            raise IntervalError(
                f"empty playback interval (start {start}, rope length "
                f"{rope.duration:.3f})"
            )
        request = Request(
            request_id=f"Q{next(self._request_ids):04d}",
            kind=RequestKind.PLAY,
            rope_id=rope_id,
            user=user,
            media=media,
            start=start,
            length=length,
            admission_id=admission_id,
        )
        self._requests[request.request_id] = request
        return request.request_id

    def stop(self, request_id: str) -> None:
        """STOP[requestID]: halt storage/retrieval, release resources."""
        request = self.get_request(request_id)
        if request.state is RequestState.STOPPED:
            raise RequestStateError(f"request {request_id} already stopped")
        if request.admission_id is not None:
            self.msm.admission.release(request.admission_id)
            request.admission_id = None
        request.state = RequestState.STOPPED

    def pause(self, request_id: str, destructive: bool = False) -> None:
        """PAUSE, destructive (deallocates resources) or not (§4.1)."""
        request = self.get_request(request_id)
        if request.state is not RequestState.ACTIVE:
            raise RequestStateError(
                f"cannot pause request {request_id} in state "
                f"{request.state.value}"
            )
        if destructive:
            if request.admission_id is not None:
                self.msm.admission.release(request.admission_id)
                request.admission_id = None
            request.state = RequestState.PAUSED_RELEASED
        else:
            request.state = RequestState.PAUSED

    def resume(self, request_id: str) -> None:
        """RESUME a paused request; destructive pauses re-run admission."""
        request = self.get_request(request_id)
        if request.state is RequestState.PAUSED:
            request.state = RequestState.ACTIVE
            return
        if request.state is RequestState.PAUSED_RELEASED:
            request.admission_id = self._admit(request.media)
            request.state = RequestState.ACTIVE
            return
        raise RequestStateError(
            f"cannot resume request {request_id} in state "
            f"{request.state.value}"
        )

    def active_requests(self) -> List[Request]:
        """Requests currently holding service resources."""
        return [
            request
            for request in self._requests.values()
            if request.state is RequestState.ACTIVE
        ]

    # -- rope installation / interests ----------------------------------------------

    def _install(self, rope: MultimediaRope) -> MultimediaRope:
        self._ropes[rope.rope_id] = rope
        self.msm.interests.sync_rope(rope.rope_id, rope.referenced_strands())
        return rope

    def _update(self, rope: MultimediaRope, segments) -> MultimediaRope:
        updated = rope.with_segments(segments)
        return self._install(updated)

    def _maybe_repair(self, rope: MultimediaRope) -> MultimediaRope:
        if not self.auto_repair:
            self.last_repair = None
            return rope
        segments, report = self.repairer.repair_segments(rope.segments)
        self.last_repair = report
        if report.seams_repaired:
            return self._update(rope, segments)
        return rope

    def grant_access(
        self,
        user: str,
        rope_id: str,
        play: Sequence[str] = (),
        edit: Sequence[str] = (),
    ) -> MultimediaRope:
        """Extend a rope's Play/Edit access lists (Fig. 8 fields).

        Only a user with edit access (or the creator) may grant.
        """
        rope = self.get_rope(rope_id)
        rope.check_edit(user)
        updated = MultimediaRope(
            rope_id=rope.rope_id,
            creator=rope.creator,
            segments=rope.segments,
            play_access=tuple(dict.fromkeys((*rope.play_access, *play))),
            edit_access=tuple(dict.fromkeys((*rope.edit_access, *edit))),
        )
        return self._install(updated)

    def delete_rope(self, user: str, rope_id: str) -> List[str]:
        """Delete a rope, drop its interests, and collect garbage.

        Returns the strand IDs reclaimed by the collection pass.
        """
        rope = self.get_rope(rope_id)
        rope.check_edit(user)
        self.msm.interests.drop_rope(rope_id)
        del self._ropes[rope_id]
        return self.msm.collect_garbage()

    # -- editing operations (§4.1) -----------------------------------------------------

    def insert(
        self,
        user: str,
        base_rope_id: str,
        position: float,
        media: Media,
        with_rope_id: str,
        with_start: float,
        with_length: float,
    ) -> MultimediaRope:
        """INSERT[baseRope, position, media, withRope, withInterval]."""
        base = self.get_rope(base_rope_id)
        base.check_edit(user)
        source = self.get_rope(with_rope_id)
        source.check_play(user)
        segments = operations.insert(
            base.segments, position, media,
            source.segments, with_start, with_length,
        )
        updated = self._update(base, segments)
        return self._maybe_repair(updated)

    def replace(
        self,
        user: str,
        base_rope_id: str,
        media: Media,
        base_start: float,
        base_length: float,
        with_rope_id: str,
        with_start: float,
        with_length: float,
    ) -> MultimediaRope:
        """REPLACE[baseRope, media, baseInterval, withRope, withInterval]."""
        base = self.get_rope(base_rope_id)
        base.check_edit(user)
        source = self.get_rope(with_rope_id)
        source.check_play(user)
        segments = operations.replace(
            base.segments, media, base_start, base_length,
            source.segments, with_start, with_length,
        )
        updated = self._update(base, segments)
        return self._maybe_repair(updated)

    def substring(
        self,
        user: str,
        base_rope_id: str,
        media: Media,
        start: float,
        length: float,
    ) -> MultimediaRope:
        """SUBSTRING[baseRope, media, interval] → a new rope."""
        base = self.get_rope(base_rope_id)
        base.check_play(user)
        segments = operations.substring(base.segments, media, start, length)
        rope = MultimediaRope(
            rope_id=f"R{next(self._rope_ids):04d}",
            creator=user,
            segments=tuple(segments),
        )
        installed = self._install(rope)
        return self._maybe_repair(installed)

    def concate(
        self, user: str, first_rope_id: str, second_rope_id: str
    ) -> MultimediaRope:
        """CONCATE[mmRopeID1, mmRopeID2]: appends second to first."""
        first = self.get_rope(first_rope_id)
        first.check_edit(user)
        second = self.get_rope(second_rope_id)
        second.check_play(user)
        segments = operations.concate(first.segments, second.segments)
        updated = self._update(first, segments)
        return self._maybe_repair(updated)

    def delete(
        self,
        user: str,
        base_rope_id: str,
        media: Media,
        start: float,
        length: float,
    ) -> MultimediaRope:
        """DELETE[baseRope, media, interval]."""
        base = self.get_rope(base_rope_id)
        base.check_edit(user)
        segments = operations.delete(base.segments, media, start, length)
        updated = self._update(base, segments)
        return self._maybe_repair(updated)

    # -- triggers (Fig. 8) -------------------------------------------------------------

    def add_trigger(
        self, user: str, rope_id: str, time: float, text: str
    ) -> MultimediaRope:
        """Attach synchronized text at playback *time* of a rope."""
        from repro.rope.triggers import attach_trigger

        rope = self.get_rope(rope_id)
        rope.check_edit(user)
        segments = attach_trigger(rope.segments, time, text)
        return self._update(rope, segments)

    def trigger_schedule(self, request_id: str):
        """Trigger firings for a PLAY request: ``[(offset_s, text), ...]``.

        Offsets are relative to the request's interval start; triggers
        outside the played interval do not fire.
        """
        from repro.rope import operations
        from repro.rope.triggers import trigger_schedule

        request = self.get_request(request_id)
        rope = self.get_rope(request.rope_id)
        if (request.start, request.length) != (0.0, rope.duration):
            segments = operations.substring(
                rope.segments, Media.AUDIO_VISUAL,
                request.start, request.length,
            )
        else:
            segments = list(rope.segments)
        return trigger_schedule(segments)

    # -- playback planning -----------------------------------------------------------

    def playback_plan(self, request_id: str) -> PlaybackPlan:
        """Flatten a PLAY request's rope interval into block fetches."""
        request = self.get_request(request_id)
        rope = self.get_rope(request.rope_id)
        segments = operations.substring(
            rope.segments,
            Media.AUDIO_VISUAL,
            request.start,
            request.length,
        ) if (request.start, request.length) != (0.0, rope.duration) else (
            list(rope.segments)
        )
        video: List[BlockFetch] = []
        audio: List[BlockFetch] = []
        for segment in segments:
            if request.media.includes_video and segment.video is not None:
                video.extend(self._track_fetches(segment.video, video=True))
            if request.media.includes_audio and segment.audio is not None:
                audio.extend(self._track_fetches(segment.audio, video=False))
        return PlaybackPlan(
            request_id=request_id, video=tuple(video), audio=tuple(audio)
        )

    def _track_fetches(
        self, track: MediaTrack, video: bool
    ) -> List[BlockFetch]:
        strand = self.msm.get_strand(track.strand_id)
        fetches: List[BlockFetch] = []
        g = track.granularity
        for number in range(track.first_block, track.last_block + 1):
            block_start = number * g
            block_units = strand.units_of(number)
            overlap_start = max(track.start_unit, block_start)
            overlap_end = min(track.end_unit, block_start + block_units)
            overlap = max(0, overlap_end - overlap_start)
            if overlap == 0:
                continue
            duration = overlap / track.rate
            content = strand.block_at(number)
            if content is None:
                fetches.append(
                    BlockFetch(slot=None, bits=0.0, duration=duration)
                )
                continue
            slot = strand.slot_of(number)
            tokens: Tuple[str, ...] = ()
            if video and content.video_tokens:
                first = overlap_start - block_start
                tokens = content.video_tokens[first:first + overlap]
            fetches.append(
                BlockFetch(
                    slot=slot,
                    bits=content.payload_bits,
                    duration=duration,
                    tokens=tokens,
                )
            )
        return fetches

