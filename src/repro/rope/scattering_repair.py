"""Maintenance of scattering while editing (§4.2).

After an edit, a rope is a sequence of strand intervals.  Within an
interval the scattering parameter is bounded by construction, but at a
*seam* — the hop from the last block of one interval to the first block
of the next — the two blocks may be up to a full-stroke seek apart, so
"discontinuities may be felt at interval boundaries during retrievals."

The repair: copy the first m blocks of the successor interval into new
positions spread evenly between the seam's two anchors, so every hop along
the patched path satisfies the successor strand's scattering upper bound.
Eq. (19)/(20) bound m by ``⌈l_seek_max/(2·l_lower)⌉`` (sparse disk) /
``⌈l_seek_max/l_lower⌉`` (dense disk); the repairer reports its measured
copy counts against those bounds so the experiments can verify the claim.

"copying creates a new strand containing only the copied blocks" — the
copies become a fresh immutable strand which the repaired rope references
in place of the successor interval's prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.editing_bounds import seam_repair_bound
from repro.disk.layout import find_free_slot_near
from repro.errors import ParameterError, ScatteringError
from repro.fs.storage_manager import MultimediaStorageManager
from repro.fs.strand import Strand
from repro.rope.intervals import MediaTrack, Segment
from repro.rope.structures import Media

__all__ = ["SeamCheck", "RepairReport", "ScatteringRepairer"]


@dataclass(frozen=True)
class SeamCheck:
    """Continuity status of one interval seam for one medium."""

    segment_index: int
    medium: Media
    gap: float
    bound: float

    @property
    def violates(self) -> bool:
        """True when the seam's positioning delay exceeds the bound."""
        return self.gap > self.bound


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a whole-rope repair pass."""

    seams_checked: int
    seams_violating: int
    seams_repaired: int
    blocks_copied: int
    paper_bound: int
    residual_violations: int

    @property
    def within_paper_bound(self) -> bool:
        """True when no seam needed more copies than Eq. (19)/(20) allow."""
        return self.blocks_copied <= max(
            self.paper_bound * max(1, self.seams_repaired), 0
        )


class ScatteringRepairer:
    """Checks and repairs interval-seam scattering for edited ropes."""

    def __init__(self, msm: MultimediaStorageManager):
        self.msm = msm
        self.drive = msm.drive

    # -- seam inspection ---------------------------------------------------------

    def _track_of(self, segment: Segment, medium: Media) -> Optional[MediaTrack]:
        return segment.video if medium is Media.VIDEO else segment.audio

    def _edge_slot(
        self, track: MediaTrack, last: bool
    ) -> Optional[int]:
        """Disk slot of the interval's first/last *stored* block.

        Silence holders have no slot; an all-silent interval imposes no
        seam constraint (returns None).
        """
        strand = self.msm.get_strand(track.strand_id)
        block_range = range(track.first_block, track.last_block + 1)
        numbers = reversed(block_range) if last else block_range
        for number in numbers:
            slot = strand.slot_of(number)
            if slot is not None:
                return slot
        return None

    def check_segments(self, segments: Sequence[Segment]) -> List[SeamCheck]:
        """Measure every seam of a segment list against its bound."""
        checks: List[SeamCheck] = []
        for index in range(1, len(segments)):
            previous, current = segments[index - 1], segments[index]
            for medium in (Media.VIDEO, Media.AUDIO):
                track_a = self._track_of(previous, medium)
                track_b = self._track_of(current, medium)
                if track_a is None or track_b is None:
                    continue
                slot_a = self._edge_slot(track_a, last=True)
                slot_b = self._edge_slot(track_b, last=False)
                if slot_a is None or slot_b is None:
                    continue
                strand_b = self.msm.get_strand(track_b.strand_id)
                checks.append(
                    SeamCheck(
                        segment_index=index,
                        medium=medium,
                        gap=self.drive.access_gap(slot_a, slot_b),
                        bound=strand_b.scattering_upper,
                    )
                )
        return checks

    # -- repair --------------------------------------------------------------------

    def _max_hop_cylinders(self, bound: float) -> int:
        rotation = self.drive.rotation.average_latency
        budget = bound - rotation
        if budget < 0:
            raise ScatteringError(
                f"scattering bound {bound:.6f} s is below rotational "
                f"latency {rotation:.6f} s; no placement can satisfy it"
            )
        distance = self.drive.seek_model.max_distance_within(
            budget, self.drive.geometry.cylinders
        )
        return max(1, distance)

    def _plan_copies(
        self, track_b: MediaTrack, strand_b: Strand, anchor_slot: int,
        bound: float,
    ) -> Tuple[List[int], List[int]]:
        """Choose which blocks of the successor to copy, and to where.

        Returns (block_numbers, target_slots).  Block m+1 of the interval
        (the first *not* copied) is the far anchor; copies are placed at
        equally spaced cylinders between the two anchors — the paper's
        "redistributing ... equally in the region between".
        """
        d_max = self._max_hop_cylinders(bound)
        anchor_cyl = self.drive.cylinder_of(anchor_slot)
        stored_numbers = [
            number
            for number in range(track_b.first_block, track_b.last_block + 1)
            if strand_b.slot_of(number) is not None
        ]
        if not stored_numbers:
            raise ParameterError("successor interval holds no stored blocks")
        limit = len(stored_numbers)
        for m in range(1, limit + 1):
            if m < limit:
                far_slot = strand_b.slot_of(stored_numbers[m])
                assert far_slot is not None
                far_cyl = self.drive.cylinder_of(far_slot)
            else:
                # Copying the whole interval: land the last copy near the
                # anchor's neighbourhood, one hop out.
                far_cyl = anchor_cyl + d_max * (m + 1)
                far_cyl = min(far_cyl, self.drive.geometry.cylinders - 1)
            span = far_cyl - anchor_cyl
            if abs(span) <= d_max * (m + 1):
                targets = []
                for i in range(1, m + 1):
                    cylinder = anchor_cyl + round(span * i / (m + 1))
                    targets.append(cylinder)
                slots: List[int] = []
                for cylinder in targets:
                    slot = find_free_slot_near(
                        self.msm.freemap, self.drive, cylinder
                    )
                    # Reserve immediately so later copies don't collide;
                    # released before create_copied_strand re-allocates.
                    self.msm.freemap.allocate(slot)
                    slots.append(slot)
                for slot in slots:
                    self.msm.freemap.release(slot)
                return stored_numbers[:m], slots
        raise ScatteringError(
            f"seam not repairable: even copying all {limit} blocks of the "
            "interval cannot satisfy the scattering bound"
        )

    def _split_track_after_copies(
        self,
        track_b: MediaTrack,
        strand_b: Strand,
        copied_numbers: Sequence[int],
        copy_strand: Strand,
    ) -> List[MediaTrack]:
        """Build the replacement tracks: copied prefix + original suffix."""
        g = track_b.granularity
        first_block = track_b.first_block
        offset_in_block = track_b.start_unit - first_block * g
        copied_units_total = sum(
            strand_b.units_of(number) for number in copied_numbers
        )
        prefix_length = min(
            copied_units_total - offset_in_block, track_b.length_units
        )
        if prefix_length < 1:
            raise ParameterError("copied prefix would be empty")
        prefix = MediaTrack(
            strand_id=copy_strand.strand_id,
            start_unit=offset_in_block,
            length_units=prefix_length,
            rate=track_b.rate,
            granularity=g,
        )
        remainder_length = track_b.length_units - prefix_length
        if remainder_length < 1:
            return [prefix]
        suffix = MediaTrack(
            strand_id=track_b.strand_id,
            start_unit=track_b.start_unit + prefix_length,
            length_units=remainder_length,
            rate=track_b.rate,
            granularity=g,
        )
        return [prefix, suffix]

    def repair_segments(
        self, segments: Sequence[Segment]
    ) -> Tuple[List[Segment], RepairReport]:
        """Repair every violating seam; returns (new segments, report).

        Seams are processed left to right.  A repaired seam replaces the
        successor segment with (copied-prefix segment, suffix segment);
        single-medium repairs split only the affected track, leaving the
        other medium's reference intact on both pieces.
        """
        working = list(segments)
        checked = violating = repaired = copied = residual = 0
        occupancy = self.msm.occupancy
        bound_report = 0
        index = 1
        while index < len(working):
            previous, current = working[index - 1], working[index]
            replaced = False
            for medium in (Media.VIDEO, Media.AUDIO):
                track_a = self._track_of(previous, medium)
                track_b = self._track_of(current, medium)
                if track_a is None or track_b is None:
                    continue
                slot_a = self._edge_slot(track_a, last=True)
                slot_b = self._edge_slot(track_b, last=False)
                if slot_a is None or slot_b is None:
                    continue
                checked += 1
                strand_b = self.msm.get_strand(track_b.strand_id)
                bound = strand_b.scattering_upper
                gap = self.drive.access_gap(slot_a, slot_b)
                if gap <= bound:
                    continue
                violating += 1
                if strand_b.scattering_lower > 0:
                    bound_report = max(
                        bound_report,
                        seam_repair_bound(
                            self.msm.disk_params,
                            strand_b.scattering_lower,
                            strand_b.scattering_lower,
                            occupancy,
                        ).from_successor,
                    )
                try:
                    numbers, slots = self._plan_copies(
                        track_b, strand_b, slot_a, bound
                    )
                except ScatteringError:
                    residual += 1
                    continue
                copy_strand = self.msm.create_copied_strand(
                    strand_b, numbers, slots
                )
                tracks = self._split_track_after_copies(
                    track_b, strand_b, numbers, copy_strand
                )
                pieces = self._tracks_to_segments(current, medium, tracks)
                working[index:index + 1] = pieces
                repaired += 1
                copied += len(numbers)
                # Verify the whole patched chain — anchor through every
                # copied block.  (The copy→suffix hop is an ordinary
                # segment seam and is re-checked on the next iteration.)
                # A still-violating chain (free space was not where the
                # plan wanted it) is recorded as residual rather than
                # retried forever.
                chain = [slot_a] + copy_strand.slots()
                chain_ok = all(
                    self.drive.access_gap(first, second) <= bound
                    for first, second in zip(chain, chain[1:])
                )
                if chain_ok:
                    replaced = True
                else:
                    residual += 1
                break
            if not replaced:
                index += 1
        report = RepairReport(
            seams_checked=checked,
            seams_violating=violating,
            seams_repaired=repaired,
            blocks_copied=copied,
            paper_bound=bound_report,
            residual_violations=residual,
        )
        return working, report

    def _tracks_to_segments(
        self,
        segment: Segment,
        medium: Media,
        tracks: Sequence[MediaTrack],
    ) -> List[Segment]:
        """Rebuild segment(s) after the medium's track was split in two.

        The *other* medium (if present) is sliced to stay aligned with
        the pieces' durations.
        """
        if len(tracks) == 1:
            if medium is Media.VIDEO:
                return [segment.with_tracks(tracks[0], segment.audio)]
            return [segment.with_tracks(segment.video, tracks[0])]
        first, second = tracks
        cut = first.duration
        other = segment.audio if medium is Media.VIDEO else segment.video
        if other is None:
            if medium is Media.VIDEO:
                return [
                    Segment(video=first),
                    Segment(video=second, triggers=segment.triggers),
                ]
            return [
                Segment(audio=first),
                Segment(audio=second, triggers=segment.triggers),
            ]
        other_first = other.slice(0.0, cut)
        other_second = other.slice(cut, max(other.duration - cut, 1e-9))
        if medium is Media.VIDEO:
            return [
                Segment(video=first, audio=other_first),
                Segment(
                    video=second, audio=other_second,
                    triggers=segment.triggers,
                ),
            ]
        return [
            Segment(video=other_first, audio=first),
            Segment(
                video=other_second, audio=second,
                triggers=segment.triggers,
            ),
        ]
