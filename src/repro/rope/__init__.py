"""The Multimedia Rope Server (MRS): ropes, editing, seam repair (§4, §5.2).

A rope ties strands of different media together with synchronization
information; all editing is copy-free pointer manipulation over immutable
strands, with the §4.2 repair algorithm bounding the copying needed to
keep edited ropes continuously playable.
"""

from repro.rope.editor import EditingSession, LogEntry
from repro.rope.intervals import (
    MediaTrack,
    Segment,
    Trigger,
    delete_range,
    slice_segments,
    splice_segments,
    total_duration,
)
from repro.rope.operations import (
    concate,
    delete,
    insert,
    project_medium,
    replace,
    strip_medium,
    substring,
)
from repro.rope.scattering_repair import (
    RepairReport,
    ScatteringRepairer,
    SeamCheck,
)
from repro.rope.server import (
    BlockFetch,
    MultimediaRopeServer,
    PlaybackPlan,
    Request,
    RequestKind,
    RequestState,
)
from repro.rope.structures import Media, MultimediaRope
from repro.rope.triggers import attach_trigger, trigger_schedule

__all__ = [
    "BlockFetch",
    "EditingSession",
    "LogEntry",
    "Media",
    "MediaTrack",
    "MultimediaRope",
    "MultimediaRopeServer",
    "PlaybackPlan",
    "RepairReport",
    "Request",
    "RequestKind",
    "RequestState",
    "ScatteringRepairer",
    "SeamCheck",
    "Segment",
    "Trigger",
    "attach_trigger",
    "concate",
    "delete",
    "delete_range",
    "insert",
    "project_medium",
    "replace",
    "slice_segments",
    "splice_segments",
    "strip_medium",
    "substring",
    "total_duration",
    "trigger_schedule",
]
