"""Simulated media devices: frames, audio, codecs, buffers, and clocks.

This package replaces the prototype's UVC capture/compression hardware and
audio digitizer (§5.1).  Media content is carried as sizes + opaque
content tokens, which is all the storage analysis and the file-system
round-trip tests require.
"""

from repro.media.audio import (
    AudioChunk,
    DEFAULT_SILENCE_THRESHOLD,
    SILENCE_ENERGY,
    SPEECH_ENERGY,
    SilenceDetector,
    chunks_to_blocks,
    generate_talk_spurts,
    silence_fraction,
)
from repro.media.clock import (
    MediaClock,
    continuous,
    forced_display_times,
    is_automatic,
    lateness,
    max_lateness,
)
from repro.media.codec import Codec, DifferencingCodec, FixedRateCodec
from repro.media.devices import CaptureDevice, DeviceBuffer, DisplayDevice
from repro.media.frames import (
    Frame,
    NTSC_BITS_PER_PIXEL,
    NTSC_HEIGHT,
    NTSC_WIDTH,
    frames_for_duration,
    generate_frames,
    ntsc_raw_frame_bits,
    raw_frame_bits,
)

__all__ = [
    "AudioChunk",
    "CaptureDevice",
    "Codec",
    "DEFAULT_SILENCE_THRESHOLD",
    "DeviceBuffer",
    "DifferencingCodec",
    "DisplayDevice",
    "FixedRateCodec",
    "Frame",
    "MediaClock",
    "NTSC_BITS_PER_PIXEL",
    "NTSC_HEIGHT",
    "NTSC_WIDTH",
    "SILENCE_ENERGY",
    "SPEECH_ENERGY",
    "SilenceDetector",
    "chunks_to_blocks",
    "continuous",
    "forced_display_times",
    "frames_for_duration",
    "generate_frames",
    "generate_talk_spurts",
    "is_automatic",
    "lateness",
    "max_lateness",
    "ntsc_raw_frame_bits",
    "raw_frame_bits",
    "silence_fraction",
]
