"""Audio streams, the energy model, and silence detection (§2, §4).

Digitization of audio yields a sequence of samples (the prototype's
hardware digitizes at 8 KBytes/s).  For silence elimination the paper
works block-wise: "if the average energy level over a block falls below a
threshold, no audio data is stored for that duration."

Samples are far too numerous to model individually, so the stream is
represented as a sequence of :class:`AudioChunk` runs — contiguous sample
ranges with a constant average energy.  Speech-like workloads alternate
talk spurts and silences; :func:`generate_talk_spurts` produces seeded,
reproducible streams with a target silence ratio, which the silence-
elimination experiments sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.core.symbols import AudioStream
from repro.errors import ParameterError

__all__ = [
    "AudioChunk",
    "SilenceDetector",
    "generate_talk_spurts",
    "chunks_to_blocks",
    "silence_fraction",
    "DEFAULT_SILENCE_THRESHOLD",
    "SPEECH_ENERGY",
    "SILENCE_ENERGY",
]

#: Default energy threshold below which a block counts as silence.
DEFAULT_SILENCE_THRESHOLD = 0.10

#: Representative average energies for generated workloads (arbitrary
#: linear scale in [0, 1]).
SPEECH_ENERGY = 0.55
SILENCE_ENERGY = 0.02


@dataclass(frozen=True)
class AudioChunk:
    """A run of consecutive samples with a constant average energy.

    Attributes
    ----------
    start_sample:
        Index of the first sample in the run.
    count:
        Number of samples in the run.
    energy:
        Average energy over the run, in [0, 1].
    """

    start_sample: int
    count: int
    energy: float

    def __post_init__(self) -> None:
        if self.start_sample < 0:
            raise ParameterError(
                f"start_sample must be >= 0, got {self.start_sample}"
            )
        if self.count < 1:
            raise ParameterError(f"count must be >= 1, got {self.count}")
        if not 0.0 <= self.energy <= 1.0:
            raise ParameterError(
                f"energy must be in [0, 1], got {self.energy}"
            )

    @property
    def end_sample(self) -> int:
        """One past the last sample of the run."""
        return self.start_sample + self.count

    def duration(self, stream: AudioStream) -> float:
        """Run length in seconds at the stream's sample rate."""
        return self.count / stream.sample_rate


@dataclass(frozen=True)
class SilenceDetector:
    """Block-level silence classifier (§4)."""

    threshold: float = DEFAULT_SILENCE_THRESHOLD

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ParameterError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )

    def is_silent(self, average_energy: float) -> bool:
        """True when a block's average energy falls below the threshold."""
        return average_energy < self.threshold


def generate_talk_spurts(
    stream: AudioStream,
    duration: float,
    silence_ratio: float,
    rng: random.Random,
    mean_spurt: float = 1.2,
) -> List[AudioChunk]:
    """A seeded speech-like stream: alternating talk spurts and silences.

    Parameters
    ----------
    duration:
        Total stream length, seconds.
    silence_ratio:
        Target fraction of the stream that is silent, in [0, 1).
    mean_spurt:
        Mean talk-spurt length, seconds (silence runs scale to hit the
        target ratio); run lengths are exponentially distributed, the
        classic speech on/off model.
    """
    if duration <= 0:
        raise ParameterError(f"duration must be positive, got {duration}")
    if not 0.0 <= silence_ratio < 1.0:
        raise ParameterError(
            f"silence_ratio must be in [0, 1), got {silence_ratio}"
        )
    if mean_spurt <= 0:
        raise ParameterError(f"mean_spurt must be positive, got {mean_spurt}")
    total_samples = int(duration * stream.sample_rate)
    if silence_ratio == 0.0:
        mean_silence = 0.0
    else:
        mean_silence = mean_spurt * silence_ratio / (1.0 - silence_ratio)
    chunks: List[AudioChunk] = []
    cursor = 0
    talking = True
    while cursor < total_samples:
        if talking or mean_silence == 0.0:
            length_s = rng.expovariate(1.0 / mean_spurt)
            energy = min(1.0, max(0.2, rng.gauss(SPEECH_ENERGY, 0.1)))
        else:
            length_s = rng.expovariate(1.0 / mean_silence)
            energy = min(0.09, max(0.0, rng.gauss(SILENCE_ENERGY, 0.01)))
        count = max(1, int(length_s * stream.sample_rate))
        count = min(count, total_samples - cursor)
        chunks.append(
            AudioChunk(start_sample=cursor, count=count, energy=energy)
        )
        cursor += count
        talking = not talking
    return chunks


def chunks_to_blocks(
    chunks: Sequence[AudioChunk], samples_per_block: int
) -> Iterator[float]:
    """Yield the average energy of each consecutive block of samples.

    Blocks are ``samples_per_block`` long; the final partial block (if
    any) is averaged over the samples it actually covers.  This is the
    quantity the §4 silence detector thresholds.
    """
    if samples_per_block < 1:
        raise ParameterError(
            f"samples_per_block must be >= 1, got {samples_per_block}"
        )
    if not chunks:
        return
    total = chunks[-1].end_sample
    chunk_iter = iter(chunks)
    current = next(chunk_iter)
    for block_start in range(0, total, samples_per_block):
        block_end = min(block_start + samples_per_block, total)
        weighted = 0.0
        covered = 0
        position = block_start
        while position < block_end:
            while current.end_sample <= position:
                current = next(chunk_iter)
            overlap = min(current.end_sample, block_end) - position
            weighted += current.energy * overlap
            covered += overlap
            position += overlap
        yield weighted / covered


def silence_fraction(
    chunks: Sequence[AudioChunk],
    samples_per_block: int,
    detector: SilenceDetector = SilenceDetector(),
) -> float:
    """Fraction of blocks the detector classifies as silent."""
    energies = list(chunks_to_blocks(chunks, samples_per_block))
    if not energies:
        return 0.0
    silent = sum(1 for e in energies if detector.is_silent(e))
    return silent / len(energies)
