"""Video frames: the basic unit of video (§2).

Digitization of motion video yields a sequence of frames; the prototype's
UVC hardware digitizes and compresses NTSC video (480×200 pixels, 12 bits
of color per pixel) at real-time rate.  The simulation does not move pixel
data around — a :class:`Frame` carries its *size* (the quantity the
storage analysis consumes) plus a content *token* so that file-system
round-trip tests can verify that playback returns exactly the recorded
frames in order, without materializing megabytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.symbols import VideoStream
from repro.errors import ParameterError
from repro.media.codec import Codec, FixedRateCodec

__all__ = [
    "NTSC_WIDTH",
    "NTSC_HEIGHT",
    "NTSC_BITS_PER_PIXEL",
    "raw_frame_bits",
    "ntsc_raw_frame_bits",
    "Frame",
    "generate_frames",
    "frames_for_duration",
]

#: The prototype's capture resolution (§5.1).
NTSC_WIDTH = 480
NTSC_HEIGHT = 200
NTSC_BITS_PER_PIXEL = 12


def raw_frame_bits(width: int, height: int, bits_per_pixel: int) -> float:
    """Uncompressed frame size in bits."""
    if width < 1 or height < 1 or bits_per_pixel < 1:
        raise ParameterError(
            f"invalid frame dimensions {width}x{height}x{bits_per_pixel}"
        )
    return float(width * height * bits_per_pixel)


def ntsc_raw_frame_bits() -> float:
    """Raw size of one prototype NTSC frame: 480·200·12 = 1 152 000 bits."""
    return raw_frame_bits(NTSC_WIDTH, NTSC_HEIGHT, NTSC_BITS_PER_PIXEL)


@dataclass(frozen=True)
class Frame:
    """One captured video frame.

    Attributes
    ----------
    index:
        Position in the recording (0-based).
    size_bits:
        Compressed size of the frame in bits.
    timestamp:
        Capture time relative to the start of recording, seconds.
    token:
        Opaque content identifier; equality of tokens means equality of
        frame content for round-trip verification.
    """

    index: int
    size_bits: float
    timestamp: float
    token: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ParameterError(f"frame index must be >= 0, got {self.index}")
        if self.size_bits <= 0:
            raise ParameterError(
                f"frame size must be positive, got {self.size_bits}"
            )
        if self.timestamp < 0:
            raise ParameterError(
                f"timestamp must be >= 0, got {self.timestamp}"
            )


def generate_frames(
    stream: VideoStream,
    count: int,
    codec: Optional[Codec] = None,
    source: str = "camera0",
) -> Iterator[Frame]:
    """Yield *count* frames of *stream*, compressed by *codec*.

    Without a codec, frames carry the stream's nominal ``frame_size``
    (fixed-size frames, the paper's baseline assumption).  With a codec,
    each frame's raw size is passed through the codec — a variable-rate
    codec then produces varying frame sizes, the §6.2 extension.
    """
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    if codec is None:
        codec = FixedRateCodec(ratio=1.0)
        raw = stream.frame_size
    else:
        raw = stream.frame_size * codec.nominal_ratio
    period = stream.unit_duration
    for index in range(count):
        yield Frame(
            index=index,
            size_bits=codec.compressed_bits(raw, index),
            timestamp=index * period,
            token=f"{source}:frame:{index}",
        )


def frames_for_duration(
    stream: VideoStream,
    duration: float,
    codec: Optional[Codec] = None,
    source: str = "camera0",
) -> List[Frame]:
    """All frames captured in *duration* seconds of recording."""
    if duration < 0:
        raise ParameterError(f"duration must be >= 0, got {duration}")
    count = int(duration * stream.frame_rate)
    return list(generate_frames(stream, count, codec, source))
