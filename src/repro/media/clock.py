"""Media clocks and the two §3.2 synchronization techniques.

Playback must proceed "at exactly the same rate as it was recorded".
The paper names two ways to get there:

* **Forced synchronization** — a clocking device makes the display wait
  until each block's nominal deadline, at frame or block boundaries.
  :class:`MediaClock` generates those deadlines and
  :func:`forced_display_times` applies them to a sequence of arrival
  times (clamping early arrivals to their deadline — the communication
  overhead the paper mentions is modelled as an optional per-wait cost).

* **Automatic synchronization** — if the effective access time per block
  *equals* its playback duration, the pipeline paces itself and no clock
  is needed.  :func:`is_automatic` tests that condition for a given
  access time.

The module also provides jitter metrics used by the continuity
experiments: a playback is continuous exactly when no display time exceeds
its deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ParameterError

__all__ = [
    "MediaClock",
    "forced_display_times",
    "is_automatic",
    "lateness",
    "max_lateness",
    "continuous",
]

#: Relative tolerance for the automatic-synchronization equality test.
_AUTO_SYNC_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MediaClock:
    """Deadline generator for block-boundary forced synchronization.

    Parameters
    ----------
    start:
        Playback start time (when block 0 should begin displaying), s.
    period:
        Playback duration of one block (η/R), s.
    """

    start: float
    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ParameterError(f"period must be positive, got {self.period}")

    def deadline(self, block_number: int) -> float:
        """Nominal display-start time of *block_number* (0-based)."""
        if block_number < 0:
            raise ParameterError(
                f"block_number must be >= 0, got {block_number}"
            )
        return self.start + block_number * self.period

    def deadlines(self, count: int) -> List[float]:
        """The first *count* block deadlines."""
        if count < 0:
            raise ParameterError(f"count must be >= 0, got {count}")
        return [self.deadline(i) for i in range(count)]


def forced_display_times(
    arrivals: Sequence[float],
    clock: MediaClock,
    wait_overhead: float = 0.0,
) -> List[float]:
    """Display-start times under forced synchronization.

    Each block displays at ``max(arrival, deadline)``; a block that had to
    wait additionally pays *wait_overhead* (the clocking/display
    communication cost §3.2 notes).  Late blocks display immediately on
    arrival — lateness shows up in the jitter metrics, not here.
    """
    if wait_overhead < 0:
        raise ParameterError(
            f"wait_overhead must be >= 0, got {wait_overhead}"
        )
    times: List[float] = []
    for block_number, arrival in enumerate(arrivals):
        deadline = clock.deadline(block_number)
        if arrival < deadline:
            times.append(deadline + wait_overhead)
        else:
            times.append(arrival)
    return times


def is_automatic(access_time: float, playback_duration: float) -> bool:
    """§3.2 automatic synchronization test.

    True when the effective access time per block equals the block's
    playback duration (to floating-point tolerance): the transfer pipeline
    then delivers blocks at exactly the display rate and no clocking
    device is needed.
    """
    if access_time < 0 or playback_duration <= 0:
        raise ParameterError(
            "access_time must be >= 0 and playback_duration > 0, got "
            f"{access_time}, {playback_duration}"
        )
    return math.isclose(
        access_time, playback_duration, rel_tol=_AUTO_SYNC_TOLERANCE
    )


def lateness(
    arrivals: Sequence[float], clock: MediaClock
) -> List[float]:
    """Per-block lateness: ``arrival − deadline`` (negative = early)."""
    return [
        arrival - clock.deadline(block_number)
        for block_number, arrival in enumerate(arrivals)
    ]


def max_lateness(arrivals: Sequence[float], clock: MediaClock) -> float:
    """Worst lateness over the playback (≤ 0 means fully continuous)."""
    values = lateness(arrivals, clock)
    return max(values) if values else 0.0


def continuous(arrivals: Sequence[float], clock: MediaClock) -> bool:
    """True when every block arrived at or before its deadline."""
    return max_lateness(arrivals, clock) <= 0.0
