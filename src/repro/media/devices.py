"""Capture and display device models with internal buffers.

§3.3.4 determines storage granularity from "the sizes of internal buffers
available on the display devices": with direct disk→device transfer, a
block must fit in device buffer space, and the pipelined/concurrent
architectures partition the buffer into halves / p parts.

:class:`DeviceBuffer` tracks block occupancy with high-water statistics —
the simulation uses it to demonstrate the §3.3.2 accumulation behaviour
(slow motion fills buffers; the disk must pause).  :class:`DisplayDevice`
and :class:`CaptureDevice` bundle a buffer with the device's rate; per the
paper's second simplifying assumption, capture time (digitize + compress)
equals display time (decompress + D/A convert), so both directions share
one timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.symbols import DisplayDeviceParameters
from repro.errors import ParameterError

__all__ = ["DeviceBuffer", "DisplayDevice", "CaptureDevice"]


class DeviceBuffer:
    """A bounded pool of block buffers on a media device.

    Occupancy is tracked in *blocks*; attempting to exceed capacity or
    consume from empty raises, because in the real system those are DMA
    overrun / display starvation — conditions the continuity analysis
    exists to prevent, so the simulation must fail loudly on them.
    """

    def __init__(self, capacity_blocks: int):
        if capacity_blocks < 1:
            raise ParameterError(
                f"capacity_blocks must be >= 1, got {capacity_blocks}"
            )
        self.capacity = capacity_blocks
        self._occupied = 0
        self._high_water = 0
        self.deposits = 0
        self.consumptions = 0

    @property
    def occupied(self) -> int:
        """Blocks currently buffered."""
        return self._occupied

    @property
    def free(self) -> int:
        """Buffer slots currently empty."""
        return self.capacity - self._occupied

    @property
    def high_water(self) -> int:
        """Maximum occupancy ever reached."""
        return self._high_water

    @property
    def is_full(self) -> bool:
        """True when no more blocks fit."""
        return self._occupied >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when there is nothing to display."""
        return self._occupied == 0

    def deposit(self, blocks: int = 1) -> None:
        """Add transferred blocks; raises on overrun."""
        if blocks < 1:
            raise ParameterError(f"blocks must be >= 1, got {blocks}")
        if self._occupied + blocks > self.capacity:
            raise ParameterError(
                f"device buffer overrun: {self._occupied}+{blocks} > "
                f"capacity {self.capacity}"
            )
        self._occupied += blocks
        self._high_water = max(self._high_water, self._occupied)
        self.deposits += blocks

    def consume(self, blocks: int = 1) -> None:
        """Remove displayed blocks; raises on underrun (starvation)."""
        if blocks < 1:
            raise ParameterError(f"blocks must be >= 1, got {blocks}")
        if blocks > self._occupied:
            raise ParameterError(
                f"device buffer underrun: consuming {blocks} of "
                f"{self._occupied}"
            )
        self._occupied -= blocks
        self.consumptions += blocks

    def reset(self) -> None:
        """Empty the buffer and zero statistics."""
        self._occupied = 0
        self._high_water = 0
        self.deposits = 0
        self.consumptions = 0


@dataclass
class DisplayDevice:
    """A display device: consumption rate + internal block buffer.

    Parameters
    ----------
    params:
        The §3.3.4 device parameters (``R_vd`` and the frame-buffer size).
    buffer_blocks:
        Number of block buffers carved from the device's frame memory
        (1 sequential, 2 pipelined, p concurrent — or the k-scaled counts
        of §3.3.2).
    """

    params: DisplayDeviceParameters
    buffer_blocks: int = 2
    buffer: DeviceBuffer = field(init=False)

    def __post_init__(self) -> None:
        self.buffer = DeviceBuffer(self.buffer_blocks)

    def display_time(self, block_bits: float) -> float:
        """Seconds to decompress + D/A-convert one block (§2)."""
        if block_bits < 0:
            raise ParameterError(f"block_bits must be >= 0, got {block_bits}")
        return block_bits / self.params.display_rate


@dataclass
class CaptureDevice:
    """A capture device: digitization/compression rate + staging buffer.

    Per the paper's simplifying assumption (2), "the time to capture a
    video frame ... and the time to display it ... are approximately
    equal" — so capture shares the display-rate timing model.
    """

    params: DisplayDeviceParameters
    buffer_blocks: int = 2
    buffer: DeviceBuffer = field(init=False)

    def __post_init__(self) -> None:
        self.buffer = DeviceBuffer(self.buffer_blocks)

    def capture_time(self, block_bits: float) -> float:
        """Seconds to digitize + compress one block's worth of media."""
        if block_bits < 0:
            raise ParameterError(f"block_bits must be >= 0, got {block_bits}")
        return block_bits / self.params.display_rate
