"""Compression models for the capture path.

The prototype compresses video in hardware (the UVC board, §5.1); the
paper's storage model assumes **fixed-size** compressed frames, and §6.2
flags **variable-rate compression** ("such as differencing between
frames") as future work that "can result in varying but smaller sizes of
video frames".

Both regimes are modelled here:

* :class:`FixedRateCodec` — every frame compresses by the same ratio;
  reproduces the paper's baseline assumption.
* :class:`DifferencingCodec` — the §6.2 extension: periodic key frames at
  the base ratio with much smaller difference frames in between, a
  deterministic stand-in for inter-frame differencing.  Its mean ratio
  feeds the extended continuity analysis in
  :mod:`repro.analysis.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["Codec", "FixedRateCodec", "DifferencingCodec"]


class Codec:
    """Raw-size → compressed-size model, deterministic per frame index."""

    @property
    def nominal_ratio(self) -> float:
        """Raw/compressed ratio used to recover raw size from nominal."""
        raise NotImplementedError

    def compressed_bits(self, raw_bits: float, frame_index: int) -> float:
        """Compressed size of frame *frame_index* whose raw size is given."""
        raise NotImplementedError

    def mean_compressed_bits(self, raw_bits: float) -> float:
        """Long-run average compressed frame size."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedRateCodec(Codec):
    """Every frame compresses by exactly *ratio* (the paper's assumption)."""

    ratio: float

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ParameterError(
                f"compression ratio must be >= 1, got {self.ratio}"
            )

    @property
    def nominal_ratio(self) -> float:
        return self.ratio

    def compressed_bits(self, raw_bits: float, frame_index: int) -> float:
        if raw_bits <= 0:
            raise ParameterError(f"raw_bits must be positive, got {raw_bits}")
        return raw_bits / self.ratio

    def mean_compressed_bits(self, raw_bits: float) -> float:
        return self.compressed_bits(raw_bits, 0)


@dataclass(frozen=True)
class DifferencingCodec(Codec):
    """§6.2 variable-rate model: key frames + small difference frames.

    Every ``group_size``-th frame is a key frame compressed by
    ``key_ratio``; the rest are difference frames compressed by
    ``diff_ratio`` (>> key_ratio).  Deterministic in the frame index, so
    simulations remain reproducible.
    """

    key_ratio: float
    diff_ratio: float
    group_size: int = 10

    def __post_init__(self) -> None:
        if self.key_ratio < 1.0:
            raise ParameterError(
                f"key_ratio must be >= 1, got {self.key_ratio}"
            )
        if self.diff_ratio < self.key_ratio:
            raise ParameterError(
                "diff_ratio must be >= key_ratio (difference frames are "
                f"smaller), got {self.diff_ratio} < {self.key_ratio}"
            )
        if self.group_size < 1:
            raise ParameterError(
                f"group_size must be >= 1, got {self.group_size}"
            )

    @property
    def nominal_ratio(self) -> float:
        return self.key_ratio

    def compressed_bits(self, raw_bits: float, frame_index: int) -> float:
        if raw_bits <= 0:
            raise ParameterError(f"raw_bits must be positive, got {raw_bits}")
        if frame_index < 0:
            raise ParameterError(
                f"frame_index must be >= 0, got {frame_index}"
            )
        if frame_index % self.group_size == 0:
            return raw_bits / self.key_ratio
        return raw_bits / self.diff_ratio

    def mean_compressed_bits(self, raw_bits: float) -> float:
        keys = 1
        diffs = self.group_size - 1
        total = (
            keys * raw_bits / self.key_ratio
            + diffs * raw_bits / self.diff_ratio
        )
        return total / self.group_size
