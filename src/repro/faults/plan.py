"""Declarative fault schedules: what breaks, where, and when.

A :class:`FaultPlan` is an immutable list of :class:`FaultSpec` records
describing every hardware fault a run should experience.  Plans are built
either explicitly (scripted chaos tests pin exact slots and operation
indices) or from a seed via :meth:`FaultPlan.random` — in both cases all
randomness is consumed *at construction time*, so the injector that
executes the plan is a pure function of the access sequence and the same
plan replayed over the same workload produces bit-identical behaviour.

Fault taxonomy (cf. the latent-sector-error and whole-disk failure modes
storage papers model):

* ``TRANSIENT`` — one access fails (soft ECC error); a retry of the same
  slot may succeed.  Triggered by operation index (``at_op``) or by the
  next access touching ``slot``; fires once, then is retired.
* ``MEDIA_DEFECT`` — the slot's media is pitted; *every* access to it
  fails until the block is relocated.
* ``HEAD_FAILURE`` — the whole mechanism dies at ``at_op`` (or once the
  drive's busy clock passes ``at_time``); all later accesses fail fast.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(enum.Enum):
    """The three injected failure modes."""

    TRANSIENT = "transient"
    MEDIA_DEFECT = "media-defect"
    HEAD_FAILURE = "head-failure"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        Failure mode.
    slot:
        Target block slot.  Required for ``MEDIA_DEFECT``; for
        ``TRANSIENT`` it selects "the next access to this slot" when
        ``at_op`` is not given.
    at_op:
        Trigger on the drive's N-th access (0-based, reads and writes
        both count).  Required for ``HEAD_FAILURE`` unless ``at_time``
        is given.
    at_time:
        Trigger once the drive's cumulative busy time reaches this many
        simulated seconds (``HEAD_FAILURE`` only).
    drive_index:
        Which array member the fault targets (0 for single drives).
    """

    kind: FaultKind
    slot: Optional[int] = None
    at_op: Optional[int] = None
    at_time: Optional[float] = None
    drive_index: int = 0

    def __post_init__(self) -> None:
        if self.kind is FaultKind.MEDIA_DEFECT and self.slot is None:
            raise ParameterError("MEDIA_DEFECT requires a target slot")
        if self.kind is FaultKind.TRANSIENT and (
            self.slot is None and self.at_op is None
        ):
            raise ParameterError(
                "TRANSIENT requires a target slot or operation index"
            )
        if self.kind is FaultKind.HEAD_FAILURE and (
            self.at_op is None and self.at_time is None
        ):
            raise ParameterError(
                "HEAD_FAILURE requires an operation index or a time"
            )
        if self.drive_index < 0:
            raise ParameterError(
                f"drive_index must be >= 0, got {self.drive_index}"
            )


class FaultPlan:
    """An ordered, immutable schedule of faults for one run."""

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_drive(self, drive_index: int) -> "FaultPlan":
        """The sub-plan targeting one array member."""
        return FaultPlan(
            (s for s in self.specs if s.drive_index == drive_index),
            seed=self.seed,
        )

    def count(self, kind: FaultKind) -> int:
        """Number of scheduled faults of one kind."""
        return sum(1 for s in self.specs if s.kind is kind)

    @classmethod
    def random(
        cls,
        seed: int,
        slots: Sequence[int],
        transient: int = 0,
        defects: int = 0,
        head_failure_at_op: Optional[int] = None,
        drive_index: int = 0,
    ) -> "FaultPlan":
        """Draw a plan from a seed over a set of candidate slots.

        All randomness happens here: the returned plan is concrete, so
        two runs over it are identical.  ``transient`` faults are
        attached to distinct slots ("the next access to this slot
        fails once"); ``defects`` marks further distinct slots as
        permanently bad.
        """
        if transient < 0 or defects < 0:
            raise ParameterError("fault counts must be >= 0")
        unique = sorted(set(slots))
        if transient + defects > len(unique):
            raise ParameterError(
                f"cannot target {transient + defects} distinct slots: "
                f"only {len(unique)} candidates"
            )
        rng = random.Random(seed)
        chosen = rng.sample(unique, transient + defects)
        specs = [
            FaultSpec(
                kind=FaultKind.TRANSIENT, slot=slot, drive_index=drive_index
            )
            for slot in chosen[:transient]
        ]
        specs.extend(
            FaultSpec(
                kind=FaultKind.MEDIA_DEFECT,
                slot=slot,
                drive_index=drive_index,
            )
            for slot in chosen[transient:]
        )
        if head_failure_at_op is not None:
            specs.append(
                FaultSpec(
                    kind=FaultKind.HEAD_FAILURE,
                    at_op=head_failure_at_op,
                    drive_index=drive_index,
                )
            )
        return cls(specs, seed=seed)
