"""Deterministic fault injection and recovery for the simulated disks.

The paper proves continuity on a healthy disk; this package asks what
happens when the disk is *not* healthy.  It provides:

* :class:`FaultPlan` / :class:`FaultSpec` — a declarative, seed-derived
  schedule of transient read errors, latent sector errors, and whole-head
  failures (:mod:`repro.faults.plan`);
* :class:`FaultInjector` — the plan executor a drive consults on every
  access (:mod:`repro.faults.injector`);
* :class:`RecoveryPolicy` / :func:`read_with_recovery` — the bounded,
  deadline-aware retry loop the service layers share
  (:mod:`repro.faults.recovery`).

Determinism is the design invariant: randomness is consumed only when a
plan is drawn from its seed, never while it executes, so the same seed
and workload replay bit-identical fault histories and metrics.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.recovery import RecoveryPolicy, read_with_recovery

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RecoveryPolicy",
    "read_with_recovery",
]
