"""Recovery policies: how the service layers respond to injected faults.

The continuity requirement (§3.1) makes fault recovery a *scheduling*
problem: a retry is only worth issuing if the block can still arrive "at
or before the time of its playback".  :func:`read_with_recovery`
implements the bounded retry-with-backoff loop the round service and the
single-request simulators share:

* a :class:`TransientReadError` is retried up to ``retry_budget`` times,
  each retry charged its full (failed) access time plus ``retry_backoff``
  seconds of settle time — unless the next attempt could no longer meet
  the block's deadline, in which case the block is skipped immediately
  (a recorded glitch beats a late block *and* a blown round);
* a :class:`MediaDefectError` is never retried (the media is bad);
* a :class:`HeadFailureError` propagates, annotated with the time the
  doomed attempts consumed, so the caller can degrade service and
  revalidate admission.

Every decision is traced (``fault.inject`` / ``fault.retry`` /
``fault.skip`` / ``fault.degrade``) so a trace explains every glitch,
and mirrored into the observability counters (``fault.injected`` /
``fault.retries`` / ``fault.skips`` / ``fault.recovered_reads``) when an
:class:`~repro.obs.Observability` handle is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import (
    HeadFailureError,
    MediaDefectError,
    ParameterError,
    TransientReadError,
)
from repro.sim.trace import Tracer

__all__ = ["RecoveryPolicy", "read_with_recovery"]

_NULL_TRACER = Tracer(enabled=False)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry parameters for fault recovery.

    Parameters
    ----------
    retry_budget:
        Maximum re-issued attempts per faulted block.  0 means every
        transient fault becomes exactly one skip.
    retry_backoff:
        Simulated settle time charged before each retry, seconds (e.g.
        one rotation for a recalibrate).
    deadline_aware:
        When True, a retry is abandoned (block skipped) as soon as the
        clock has passed the block's deadline — spending more mechanism
        time on an already-late block only steals it from other streams.
    """

    retry_budget: int = 2
    retry_backoff: float = 0.0
    deadline_aware: bool = True

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ParameterError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.retry_backoff < 0:
            raise ParameterError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )


def read_with_recovery(
    drive,
    slot: int,
    bits: Optional[float],
    policy: RecoveryPolicy,
    now: float = 0.0,
    deadline: Optional[float] = None,
    tracer: Optional[Tracer] = None,
    subject: str = "",
    obs=None,
    span_tracer=None,
    span=None,
) -> Tuple[float, bool]:
    """Read *slot*, recovering from injected faults per *policy*.

    *drive* is anything drive-shaped: a
    :class:`~repro.disk.drive.SimulatedDrive` or a wrapper exposing the
    same ``read_slot``/``stats`` surface (e.g.
    :class:`~repro.disk.cache.CachedDrive`, whose cache never retains a
    faulted block — the exceptions handled here propagate through it
    before insertion).

    Returns ``(elapsed, delivered)``: the simulated time consumed
    (successful read, failed attempts, and backoff alike) and whether
    the block's data actually arrived.  ``delivered=False`` means the
    caller must record the skip as a continuity glitch.

    Raises
    ------
    HeadFailureError
        The drive died; ``elapsed`` on the exception includes all time
        this call consumed before the failure surfaced.

    With *span_tracer* (a :class:`~repro.obs.tracing.SpanTracer`) and a
    parent *span*, each access attempt is traced through the drive's
    ``traced_read`` (when it has one), retries become ``fault.retry``
    spans covering their backoff window, and skips become instant
    ``fault.skip`` spans — so the causal trace explains every glitch.
    """
    trace = tracer if tracer is not None else _NULL_TRACER
    counters = obs.registry if obs is not None else None
    profiler = getattr(obs, "profiler", None) if obs is not None else None
    traced = span_tracer is not None and hasattr(drive, "traced_read")

    def _span_event(name, start, end, attrs):
        if span_tracer is None:
            return
        event = span_tracer.start_span(name, start, parent=span, attrs=attrs)
        span_tracer.end_span(event, end)

    elapsed = 0.0
    attempts = 0
    while True:
        try:
            if traced:
                elapsed += drive.traced_read(
                    slot, bits, now + elapsed, span_tracer, span
                )
            else:
                elapsed += drive.read_slot(slot, bits)
        except TransientReadError as fault:
            elapsed += fault.elapsed
            trace.emit(
                now + elapsed, "fault.inject", subject,
                f"transient at slot {slot} (attempt {attempts})",
            )
            if counters is not None:
                counters.counter("fault.injected").inc()
            if attempts >= policy.retry_budget:
                trace.emit(
                    now + elapsed, "fault.skip", subject,
                    f"slot {slot}: retry budget {policy.retry_budget} "
                    "exhausted",
                )
                if counters is not None:
                    counters.counter("fault.skips").inc()
                if profiler is not None:
                    profiler.record(
                        "fault_recovery", cost=fault.elapsed
                    )
                _span_event(
                    "fault.skip", now + elapsed, now + elapsed,
                    {"slot": slot, "reason": "budget"},
                )
                return elapsed, False
            if (
                policy.deadline_aware
                and deadline is not None
                and now + elapsed + policy.retry_backoff >= deadline
            ):
                trace.emit(
                    now + elapsed, "fault.skip", subject,
                    f"slot {slot}: retry would miss deadline "
                    f"{deadline:.6f}",
                )
                if counters is not None:
                    counters.counter("fault.skips").inc()
                    counters.counter("fault.deadline_abandons").inc()
                if profiler is not None:
                    profiler.record(
                        "fault_recovery", cost=fault.elapsed
                    )
                _span_event(
                    "fault.skip", now + elapsed, now + elapsed,
                    {"slot": slot, "reason": "deadline"},
                )
                return elapsed, False
            attempts += 1
            drive.stats.retries += 1
            fault_time = now + elapsed
            elapsed += policy.retry_backoff
            trace.emit(
                now + elapsed, "fault.retry", subject,
                f"slot {slot}: attempt {attempts} of "
                f"{policy.retry_budget}",
            )
            if counters is not None:
                counters.counter("fault.retries").inc()
            if profiler is not None:
                # The doomed attempt's time plus the settle window — the
                # delay this fault alone added (it overlaps the
                # seek/transfer the failed attempt already charged).
                profiler.record(
                    "fault_recovery",
                    cost=fault.elapsed + policy.retry_backoff,
                )
            _span_event(
                "fault.retry", fault_time, now + elapsed,
                {"slot": slot, "attempt": attempts},
            )
            continue
        except MediaDefectError as fault:
            elapsed += fault.elapsed
            trace.emit(
                now + elapsed, "fault.inject", subject,
                f"media defect at slot {slot}",
            )
            trace.emit(
                now + elapsed, "fault.skip", subject,
                f"slot {slot}: media defect is permanent",
            )
            if counters is not None:
                counters.counter("fault.injected").inc()
                counters.counter("fault.skips").inc()
            if profiler is not None:
                profiler.record("fault_recovery", cost=fault.elapsed)
            _span_event(
                "fault.skip", now + elapsed, now + elapsed,
                {"slot": slot, "reason": "defect"},
            )
            return elapsed, False
        except HeadFailureError as fault:
            fault.elapsed += elapsed
            trace.emit(
                now + fault.elapsed, "fault.inject", subject,
                f"head {fault.drive_index} failure at slot {slot}",
            )
            if counters is not None:
                counters.counter("fault.injected").inc()
                counters.counter("fault.head_failures").inc()
            if profiler is not None:
                # No modeled cost: a dead head fails fast; the caller's
                # degrade path owns whatever follows.
                profiler.record("fault_recovery", cost=0.0)
            raise
        if attempts:
            drive.stats.degraded_reads += 1
            trace.emit(
                now + elapsed, "fault.degrade", subject,
                f"slot {slot}: recovered after {attempts} "
                f"retr{'y' if attempts == 1 else 'ies'}",
            )
            if counters is not None:
                counters.counter("fault.recovered_reads").inc()
        return elapsed, True
