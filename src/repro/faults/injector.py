"""The runtime half of fault injection: a plan executor for one drive.

A :class:`FaultInjector` is attached to one :class:`~repro.disk.drive.
SimulatedDrive` (``drive.attach_injector``).  The drive consults it on
every access:

* :meth:`pre_check` *before* any time is charged — a drive whose head
  has already failed faults fast, consuming no mechanism time;
* :meth:`post_check` *after* the access timing is computed — transient
  and media-defect faults surface only once the (wasted) seek, rotation,
  and transfer time has been spent, which is what makes injected faults
  cost realistic retry time.

The injector consumes **no randomness**: every decision is a pure
function of the plan and the access sequence, so identical workloads
replay identical fault histories (the determinism contract the chaos
and property tests pin down).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import (
    HeadFailureError,
    MediaDefectError,
    TransientReadError,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes one drive's :class:`FaultPlan` against its access stream.

    Parameters
    ----------
    plan:
        The fault schedule (already filtered to this drive; see
        :meth:`FaultPlan.for_drive`).
    drive_index:
        This drive's position in its array, echoed into
        :class:`HeadFailureError` so recovery knows which head died.
    """

    def __init__(self, plan: FaultPlan, drive_index: int = 0):
        self.plan = plan
        self.drive_index = drive_index
        self.op_index = 0
        self.injected = 0
        self.head_failed = False
        self._defect_slots = {
            spec.slot
            for spec in plan
            if spec.kind is FaultKind.MEDIA_DEFECT
        }
        self._transient_by_op: Dict[int, FaultSpec] = {
            spec.at_op: spec
            for spec in plan
            if spec.kind is FaultKind.TRANSIENT and spec.at_op is not None
        }
        # Slot-targeted transients: armed until their slot is touched.
        self._transient_by_slot: Dict[int, int] = {}
        for spec in plan:
            if spec.kind is FaultKind.TRANSIENT and spec.at_op is None:
                self._transient_by_slot[spec.slot] = (
                    self._transient_by_slot.get(spec.slot, 0) + 1
                )
        self._head_failures: List[FaultSpec] = [
            spec for spec in plan if spec.kind is FaultKind.HEAD_FAILURE
        ]

    # -- bookkeeping ---------------------------------------------------------

    @property
    def pending_transients(self) -> int:
        """Slot-targeted transient faults not yet fired."""
        return sum(self._transient_by_slot.values()) + len(
            self._transient_by_op
        )

    def is_defective(self, slot: int) -> bool:
        """True while *slot* carries an unrepaired media defect."""
        return slot in self._defect_slots

    def repair_slot(self, slot: int) -> None:
        """Clear a media defect (models relocating the block)."""
        self._defect_slots.discard(slot)

    # -- drive hooks ---------------------------------------------------------

    def pre_check(self, slot: int) -> Optional[HeadFailureError]:
        """Fault raised before the mechanism moves, or None.

        A dead head fails fast: no seek/rotation/transfer is charged.
        """
        if self.head_failed:
            self.op_index += 1
            self.injected += 1
            return HeadFailureError(
                f"head {self.drive_index} is failed; slot {slot} "
                "unreachable",
                slot=slot,
                elapsed=0.0,
                drive_index=self.drive_index,
            )
        return None

    def post_check(
        self, slot: int, elapsed: float, busy_time: float
    ) -> Optional[Exception]:
        """Fault surfacing after *elapsed* seconds of access time, or None.

        Called once per completed access attempt; advances the operation
        counter.  Priority: head failure (the mechanism dies mid-access)
        over media defect over transient.
        """
        op = self.op_index
        self.op_index += 1
        for spec in self._head_failures:
            triggered = (
                spec.at_op is not None and op >= spec.at_op
            ) or (
                spec.at_time is not None and busy_time >= spec.at_time
            )
            if triggered:
                self.head_failed = True
                self.injected += 1
                return HeadFailureError(
                    f"head {self.drive_index} failed during access to "
                    f"slot {slot}",
                    slot=slot,
                    elapsed=elapsed,
                    drive_index=self.drive_index,
                )
        if slot in self._defect_slots:
            self.injected += 1
            return MediaDefectError(
                f"latent sector error at slot {slot}",
                slot=slot,
                elapsed=elapsed,
            )
        spec = self._transient_by_op.pop(op, None)
        if spec is not None:
            self.injected += 1
            return TransientReadError(
                f"transient error on operation {op} (slot {slot})",
                slot=slot,
                elapsed=elapsed,
            )
        armed = self._transient_by_slot.get(slot, 0)
        if armed:
            if armed == 1:
                del self._transient_by_slot[slot]
            else:
                self._transient_by_slot[slot] = armed - 1
            self.injected += 1
            return TransientReadError(
                f"transient error at slot {slot}",
                slot=slot,
                elapsed=elapsed,
            )
        return None
