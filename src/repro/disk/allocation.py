"""Block allocators: constrained-scatter, random, and contiguous.

§3 of the paper contrasts three placement disciplines for the blocks of a
media strand:

* **Random allocation** (what "most existing storage server architectures
  employ") — no bound on inter-block separation, so continuity can only be
  bought with large out-of-order buffering.
* **Contiguous allocation** — guarantees continuity but "is fraught with
  inherent problems of fragmentation and can entail enormous copying
  overheads during insertions and deletions."
* **Constrained allocation** — the paper's choice: successive blocks are
  placed so their positioning delay lies within derived bounds
  ``[l_ds_lower, l_ds_upper]``, guaranteeing continuity while leaving gaps
  that can hold other data (e.g. conventional text files).

All three are implemented against the same :class:`SimulatedDrive` +
:class:`FreeMap` pair so the experiments can compare them on identical
hardware.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.disk.drive import SimulatedDrive
from repro.disk.freemap import FreeMap
from repro.errors import (
    AllocationError,
    DiskFullError,
    ParameterError,
    ScatteringError,
)

__all__ = [
    "ScatterBounds",
    "Allocator",
    "ConstrainedScatterAllocator",
    "RandomAllocator",
    "ContiguousAllocator",
]


@dataclass(frozen=True)
class ScatterBounds:
    """Allowed positioning delay between consecutive strand blocks.

    Attributes
    ----------
    lower:
        ``l_ds_lower`` seconds — from the §4.2 editing-copy budget
        (0 disables the constraint).
    upper:
        ``l_ds_upper`` seconds — from the §3.1 continuity requirement.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ParameterError(f"lower bound must be >= 0, got {self.lower}")
        if self.upper < self.lower:
            raise ParameterError(
                f"upper bound {self.upper} below lower bound {self.lower}"
            )

    def admits(self, gap: float) -> bool:
        """True when a measured gap satisfies the bounds."""
        return self.lower <= gap <= self.upper


class Allocator:
    """Common interface: allocate block slots for a strand, one at a time."""

    def __init__(self, drive: SimulatedDrive, freemap: FreeMap):
        if freemap.slots != drive.slots:
            raise ParameterError(
                f"free map covers {freemap.slots} slots but drive has "
                f"{drive.slots}"
            )
        self.drive = drive
        self.freemap = freemap

    def allocate_first(self, hint: Optional[int] = None) -> int:
        """Allocate the first block of a strand."""
        raise NotImplementedError

    def allocate_after(self, previous: int) -> int:
        """Allocate the block following *previous* in the same strand."""
        raise NotImplementedError

    def allocate_strand(
        self, count: int, hint: Optional[int] = None
    ) -> List[int]:
        """Allocate *count* slots for a whole strand, releasing on failure."""
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        slots: List[int] = []
        try:
            slots.append(self.allocate_first(hint))
            for _ in range(count - 1):
                slots.append(self.allocate_after(slots[-1]))
        except (AllocationError, DiskFullError):
            self.release(slots)
            raise
        return slots

    def release(self, slots: List[int]) -> None:
        """Return slots to the free map."""
        for slot in slots:
            self.freemap.release(slot)


class ConstrainedScatterAllocator(Allocator):
    """§3 constrained allocation: bounded inter-block positioning delay.

    The seconds-valued bounds are translated into a cylinder-distance
    window once, using the drive's seek curve; each ``allocate_after``
    then scans the corresponding slot window (forward first, then
    backward) for a free slot and verifies the exact gap before
    committing.

    Parameters
    ----------
    bounds:
        The scattering window ``[l_ds_lower, l_ds_upper]``.
    """

    def __init__(
        self,
        drive: SimulatedDrive,
        freemap: FreeMap,
        bounds: ScatterBounds,
    ):
        super().__init__(drive, freemap)
        self.bounds = bounds
        rotation = drive.rotation.average_latency
        cylinders = drive.geometry.cylinders
        if bounds.upper < rotation:
            raise ScatteringError(
                f"scattering upper bound {bounds.upper:.6f} s is below the "
                f"average rotational latency {rotation:.6f} s — every "
                "access costs at least one expected rotation"
            )
        self._d_max = drive.seek_model.max_distance_within(
            bounds.upper - rotation, cylinders
        )
        self._d_min = self._min_distance(bounds.lower - rotation, cylinders)
        if self._d_min > self._d_max:
            raise ScatteringError(
                f"no cylinder distance satisfies the scattering window "
                f"[{bounds.lower:.6f}, {bounds.upper:.6f}] s on this drive"
            )

    def _min_distance(self, budget: float, cylinders: int) -> int:
        """Smallest distance whose seek time is >= *budget*."""
        if budget <= 0:
            return 0
        below = self.drive.seek_model.max_distance_within(
            budget, cylinders
        )
        # max_distance_within returns the largest distance with time <=
        # budget; one more cylinder crosses the threshold.  Exact equality
        # (time == budget) already satisfies a >= lower-bound check.
        seek = self.drive.seek_model.seek_time
        if below >= 0 and seek(max(below, 0)) >= budget:
            return max(below, 0)
        candidate = below + 1
        if candidate >= cylinders or seek(candidate) < budget:
            raise ScatteringError(
                f"drive cannot produce a positioning delay >= "
                f"{budget:.6f} s above rotation"
            )
        return candidate

    @property
    def distance_window(self) -> range:
        """Feasible cylinder distances (inclusive window, for tests)."""
        return range(self._d_min, self._d_max + 1)

    def _slot_window(self, low_cyl: int, high_cyl: int) -> range:
        """Slots whose starting sector lies within a cylinder interval."""
        geometry = self.drive.geometry
        low_cyl = max(0, low_cyl)
        high_cyl = min(geometry.cylinders - 1, high_cyl)
        if low_cyl > high_cyl:
            return range(0)
        spb = self.drive.sectors_per_block
        first_lba = low_cyl * geometry.sectors_per_cylinder
        last_lba = (high_cyl + 1) * geometry.sectors_per_cylinder - 1
        first_slot = (first_lba + spb - 1) // spb
        last_slot = min(last_lba // spb, self.drive.slots - 1)
        return range(first_slot, last_slot + 1)

    def _candidate_ok(self, previous: int, candidate: int) -> bool:
        return self.bounds.admits(self.drive.access_gap(previous, candidate))

    def allocate_first(self, hint: Optional[int] = None) -> int:
        """Allocate the strand's first block near *hint* (default slot 0)."""
        start = 0 if hint is None else hint
        slot = self.freemap.first_free_in_window(start, self.freemap.slots)
        if slot is None:
            slot = self.freemap.first_free_in_window(0, start)
        if slot is None:
            raise DiskFullError("no free slots for strand head")
        self.freemap.allocate(slot)
        return slot

    def allocate_after(self, previous: int) -> int:
        """Allocate the next block within the scattering window.

        Scans the forward cylinder window first (keeping strands sweeping
        across the disk, which is what bounds intra-round seeks), then the
        backward window.
        """
        center = self.drive.cylinder_of(previous)
        for low, high in (
            (center + self._d_min, center + self._d_max),
            (center - self._d_max, center - self._d_min),
        ):
            window = self._slot_window(low, high)
            for slot in self.freemap.free_in_window(window.start, window.stop):
                if slot != previous and self._candidate_ok(previous, slot):
                    self.freemap.allocate(slot)
                    return slot
        raise ScatteringError(
            f"no free slot within the scattering window after slot "
            f"{previous} (cylinder {center}, distance window "
            f"[{self._d_min}, {self._d_max}])"
        )


class RandomAllocator(Allocator):
    """Baseline: uniformly random placement (unconstrained scattering)."""

    def __init__(
        self,
        drive: SimulatedDrive,
        freemap: FreeMap,
        rng: random.Random,
    ):
        super().__init__(drive, freemap)
        if rng is None:
            raise ParameterError("RandomAllocator requires a seeded rng")
        self.rng = rng

    def allocate_first(self, hint: Optional[int] = None) -> int:
        slot = self.freemap.random_free(self.rng)
        self.freemap.allocate(slot)
        return slot

    def allocate_after(self, previous: int) -> int:
        return self.allocate_first()


class ContiguousAllocator(Allocator):
    """Baseline: strictly consecutive slots (a multimedia partition).

    Suffers exactly the failure mode §3 names: after interleaved
    allocate/release churn, a request for n consecutive slots can fail
    even though n free slots exist (:class:`AllocationError` with a
    fragmentation message).
    """

    def allocate_first(self, hint: Optional[int] = None) -> int:
        start = 0 if hint is None else hint
        slot = self.freemap.first_free_in_window(start, self.freemap.slots)
        if slot is None:
            slot = self.freemap.first_free_in_window(0, start)
        if slot is None:
            raise DiskFullError("no free slots")
        self.freemap.allocate(slot)
        return slot

    def allocate_after(self, previous: int) -> int:
        candidate = previous + 1
        if candidate >= self.freemap.slots or not self.freemap.is_free(candidate):
            raise AllocationError(
                f"slot {candidate} after {previous} is unavailable — "
                "contiguous run broken (fragmentation)"
            )
        self.freemap.allocate(candidate)
        return candidate

    def allocate_strand(
        self, count: int, hint: Optional[int] = None
    ) -> List[int]:
        """Allocate a whole contiguous run, searching past fragmentation."""
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        start = self.freemap.find_run(count, 0 if hint is None else hint)
        if start is None and hint:
            start = self.freemap.find_run(count, 0)
        if start is None:
            if self.freemap.free_count >= count:
                raise AllocationError(
                    f"{self.freemap.free_count} slots free but no "
                    f"contiguous run of {count} — disk is fragmented"
                )
            raise DiskFullError(
                f"need {count} slots, only {self.freemap.free_count} free"
            )
        slots = list(range(start, start + count))
        for slot in slots:
            self.freemap.allocate(slot)
        return slots
