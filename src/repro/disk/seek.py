"""Seek-time and rotational-latency models for the simulated drive.

The continuity analysis needs three numbers from a drive — maximum,
average, and adjacent-cylinder access times — but the *simulation* needs a
full distance→time curve so that constrained placement actually produces
the bounded access times the analysis assumes.  Three curves are provided:

* :class:`LinearSeek` — time affine in cylinder distance.  Simple, and the
  easiest to invert, which the constrained allocator exploits.
* :class:`SqrtAffineSeek` — ``a + b·√d``, the classic model of arm
  acceleration-limited short seeks and velocity-limited long seeks.
* :class:`TableSeek` — piecewise-linear interpolation through measured
  (distance, time) points, for replaying a real drive's datasheet.

All models report time 0 for distance 0 (no head movement) plus a fixed
``settle_time``; rotational latency is modelled separately by
:class:`Rotation` so experiments can choose deterministic (expected value)
or randomized latency.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "SeekModel",
    "LinearSeek",
    "SqrtAffineSeek",
    "TableSeek",
    "Rotation",
]


class SeekModel:
    """Distance→time curve interface.

    Subclasses implement :meth:`seek_time` — a monotonically non-decreasing
    function of cylinder distance — and :meth:`max_distance_within`, its
    inverse, used by the constrained allocator to turn a time window into a
    cylinder-distance window.
    """

    def seek_time(self, distance: int) -> float:
        """Seconds to move the arm *distance* cylinders (>= 0)."""
        raise NotImplementedError

    def max_distance_within(self, budget: float, cylinders: int) -> int:
        """Largest distance whose seek time is ≤ *budget* seconds.

        The default implementation binary-searches :meth:`seek_time`
        over [0, cylinders−1]; subclasses with closed-form inverses
        override it.  Results are memoized per ``(budget, cylinders)``
        pair — the curve is immutable, and allocators ask the same
        inversion question for every placement decision.
        """
        cache = getattr(self, "_inverse_cache", None)
        if cache is None:
            cache = {}
            try:
                # Works on frozen-dataclass subclasses too (same route
                # their own __init__ takes); only __slots__ types refuse.
                object.__setattr__(self, "_inverse_cache", cache)
            except AttributeError:
                cache = None
        key = (budget, cylinders)
        if cache is not None and key in cache:
            return cache[key]
        result = self._invert_seek_time(budget, cylinders)
        if cache is not None:
            cache[key] = result
        return result

    def _invert_seek_time(self, budget: float, cylinders: int) -> int:
        """Uncached binary-search inversion of :meth:`seek_time`."""
        if budget < 0:
            return -1
        low, high = 0, cylinders - 1
        if self.seek_time(low) > budget:
            return -1
        while low < high:
            mid = (low + high + 1) // 2
            if self.seek_time(mid) <= budget:
                low = mid
            else:
                high = mid - 1
        return low

    def _check_distance(self, distance: int) -> None:
        if distance < 0:
            raise ParameterError(f"seek distance must be >= 0, got {distance}")


@dataclass(frozen=True)
class LinearSeek(SeekModel):
    """Seek time affine in distance: ``settle + slope·d`` for d > 0.

    Parameters
    ----------
    settle_time:
        Fixed head-settle overhead applied to every non-zero seek, seconds.
    slope:
        Additional seconds per cylinder of travel.
    """

    settle_time: float
    slope: float

    def __post_init__(self) -> None:
        if self.settle_time < 0:
            raise ParameterError(
                f"settle_time must be >= 0, got {self.settle_time}"
            )
        if self.slope < 0:
            raise ParameterError(f"slope must be >= 0, got {self.slope}")

    def seek_time(self, distance: int) -> float:
        self._check_distance(distance)
        if distance == 0:
            return 0.0
        return self.settle_time + self.slope * distance

    def max_distance_within(self, budget: float, cylinders: int) -> int:
        if budget < 0:
            return -1
        if budget < self.settle_time or self.slope == 0:
            return cylinders - 1 if budget >= self.settle_time else 0
        distance = int((budget - self.settle_time) / self.slope)
        return min(distance, cylinders - 1)


@dataclass(frozen=True)
class SqrtAffineSeek(SeekModel):
    """Seek time ``settle + coefficient·√d`` for d > 0.

    Captures the acceleration-limited regime of short seeks; widely used
    in disk-modelling literature.
    """

    settle_time: float
    coefficient: float

    def __post_init__(self) -> None:
        if self.settle_time < 0:
            raise ParameterError(
                f"settle_time must be >= 0, got {self.settle_time}"
            )
        if self.coefficient < 0:
            raise ParameterError(
                f"coefficient must be >= 0, got {self.coefficient}"
            )

    def seek_time(self, distance: int) -> float:
        self._check_distance(distance)
        if distance == 0:
            return 0.0
        return self.settle_time + self.coefficient * math.sqrt(distance)

    def max_distance_within(self, budget: float, cylinders: int) -> int:
        if budget < 0:
            return -1
        if budget < self.settle_time:
            return 0
        if self.coefficient == 0:
            return cylinders - 1
        distance = int(((budget - self.settle_time) / self.coefficient) ** 2)
        return min(distance, cylinders - 1)


class TableSeek(SeekModel):
    """Piecewise-linear seek curve through (distance, seconds) points.

    Parameters
    ----------
    points:
        Measured curve, e.g. ``[(1, 0.004), (100, 0.012), (1000, 0.025)]``.
        Distances must be strictly increasing and times non-decreasing.
        Distance 0 always maps to time 0; queries beyond the last point
        extrapolate with the final segment's slope.
    """

    def __init__(self, points: Sequence[Tuple[int, float]]):
        if not points:
            raise ParameterError("TableSeek requires at least one point")
        distances = [d for d, _ in points]
        times = [t for _, t in points]
        if any(d <= 0 for d in distances):
            raise ParameterError("table distances must be positive")
        if any(b <= a for a, b in zip(distances, distances[1:])):
            raise ParameterError("table distances must be strictly increasing")
        if any(t < 0 for t in times):
            raise ParameterError("table times must be >= 0")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ParameterError("table times must be non-decreasing")
        self._distances = list(distances)
        self._times = list(times)
        #: distance → seconds memo.  A service run asks about the same
        #: few stride distances millions of times; the table itself is
        #: immutable, so entries never invalidate.
        self._seek_cache: dict = {}

    def seek_time(self, distance: int) -> float:
        cached = self._seek_cache.get(distance)
        if cached is not None:
            return cached
        result = self._interpolate_seek_time(distance)
        self._seek_cache[distance] = result
        return result

    def _interpolate_seek_time(self, distance: int) -> float:
        """Uncached piecewise-linear interpolation."""
        self._check_distance(distance)
        if distance == 0:
            return 0.0
        ds, ts = self._distances, self._times
        if distance <= ds[0]:
            # Interpolate from the implicit (0, 0) anchor.
            return ts[0] * distance / ds[0]
        if distance >= ds[-1]:
            if len(ds) == 1:
                return ts[-1]
            slope = (ts[-1] - ts[-2]) / (ds[-1] - ds[-2])
            return ts[-1] + slope * (distance - ds[-1])
        i = bisect.bisect_left(ds, distance)
        d0, d1 = ds[i - 1], ds[i]
        t0, t1 = ts[i - 1], ts[i]
        return t0 + (t1 - t0) * (distance - d0) / (d1 - d0)


@dataclass(frozen=True)
class Rotation:
    """Rotational-latency model.

    Parameters
    ----------
    rpm:
        Spindle speed; 3600 rpm was typical in 1991.
    randomized:
        If True, latency is uniform in [0, revolution); otherwise the
        deterministic expected value (half a revolution) is charged, which
        keeps simulations reproducible and matches the paper's practice of
        folding average latency into its access-time figures.
    """

    rpm: float
    randomized: bool = False

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ParameterError(f"rpm must be positive, got {self.rpm}")

    @property
    def revolution_time(self) -> float:
        """Seconds per spindle revolution."""
        return 60.0 / self.rpm

    @property
    def average_latency(self) -> float:
        """Expected rotational delay: half a revolution."""
        return self.revolution_time / 2.0

    @property
    def max_latency(self) -> float:
        """Worst-case rotational delay: one full revolution."""
        return self.revolution_time

    def latency(self, rng: Optional[random.Random] = None) -> float:
        """Sample (or return the expected) rotational latency."""
        if not self.randomized:
            return self.average_latency
        if rng is None:
            raise ParameterError(
                "randomized Rotation.latency() requires an rng for "
                "reproducibility"
            )
        return rng.uniform(0.0, self.revolution_time)
