"""Simulated disk substrate: geometry, seek curves, drives, allocators.

This package replaces the paper's physical PC-AT disk.  The continuity
analysis (:mod:`repro.core`) depends on a drive only through its transfer
rate and access-time bounds, all of which :class:`SimulatedDrive` derives
from an explicit mechanism (seek curve + rotation + geometry), so the
analytic and simulated layers always describe the same machine.

The three §3 allocation disciplines — constrained-scatter, random, and
contiguous — are implemented side by side for the comparison experiments.
"""

from repro.disk.allocation import (
    Allocator,
    ConstrainedScatterAllocator,
    ContiguousAllocator,
    RandomAllocator,
    ScatterBounds,
)
from repro.disk.cache import BlockCache, CachedDrive, CacheStats
from repro.disk.drive import DriveStats, SimulatedDrive
from repro.disk.factory import (
    FAST_DRIVE,
    TESTBED_DRIVE,
    DriveSpec,
    build_array,
    build_drive,
    drive_with_freemap,
)
from repro.disk.freemap import FreeMap
from repro.disk.geometry import CHS, DiskGeometry
from repro.disk.layout import GapFiller, Placement, StrandPlacer
from repro.disk.raid import DriveArray, StripedSlot
from repro.disk.seek import (
    LinearSeek,
    Rotation,
    SeekModel,
    SqrtAffineSeek,
    TableSeek,
)

__all__ = [
    "Allocator",
    "BlockCache",
    "CHS",
    "CacheStats",
    "CachedDrive",
    "ConstrainedScatterAllocator",
    "ContiguousAllocator",
    "DiskGeometry",
    "DriveArray",
    "DriveSpec",
    "DriveStats",
    "FAST_DRIVE",
    "FreeMap",
    "GapFiller",
    "LinearSeek",
    "Placement",
    "RandomAllocator",
    "Rotation",
    "ScatterBounds",
    "SeekModel",
    "SimulatedDrive",
    "SqrtAffineSeek",
    "StrandPlacer",
    "StripedSlot",
    "TESTBED_DRIVE",
    "TableSeek",
    "build_array",
    "build_drive",
    "drive_with_freemap",
]
