"""A bounded LRU block cache between the service loop and the drive.

*Scalable Distributed Video-on-Demand* (Viennot et al.) identifies the
key lever for serving many viewers of the same content: one physical
read should feed many streams.  :class:`BlockCache` is the mechanism —
a bounded LRU over disk slots — and :class:`CachedDrive` is the
placement: a drive-shaped wrapper the round-robin service reads through,
so a slot already resident costs no mechanism time (the memory copy is
below this model's granularity) while a miss pays the full simulated
seek + rotation + transfer of the inner drive.

Like the :class:`~repro.disk.drive.SimulatedDrive` itself, the cache
holds no data bytes — residency is the cached fact.  Correctness under
fault injection is by construction: a faulted access raises *before*
the slot is inserted, so defective or transiently-failing reads never
populate the cache, and a :class:`~repro.errors.MediaDefectError`
additionally invalidates any stale residency for its slot.  Writes go
straight through to the mechanism and invalidate the written slot.

Pinning supports cache-aware admission: a session admitted against
cache residency (its whole plan resident ⇒ it consumes no disk-round
budget) pins its slots so LRU pressure from other streams cannot evict
the blocks its continuity guarantee now depends on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.disk.drive import SimulatedDrive
from repro.errors import MediaDefectError, ParameterError

__all__ = ["CacheStats", "BlockCache", "CachedDrive"]


@dataclass
class CacheStats:
    """Running counters for one cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    pin_failures: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from residency."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counter mapping."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "pin_failures": self.pin_failures,
        }


class BlockCache:
    """Bounded LRU residency set over disk slots, with pinning.

    Parameters
    ----------
    capacity_blocks:
        Maximum resident slots.  Insertion beyond capacity evicts the
        least-recently-used *unpinned* slot; when every resident slot is
        pinned the insertion is refused instead (the new block simply
        stays uncached — correct, just slower).
    """

    def __init__(self, capacity_blocks: int):
        if capacity_blocks < 1:
            raise ParameterError(
                f"capacity_blocks must be >= 1, got {capacity_blocks}"
            )
        self.capacity = capacity_blocks
        self.stats = CacheStats()
        #: slot -> None, in LRU order (oldest first).
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        #: slot -> pin count.
        self._pins: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, slot: int) -> bool:
        return slot in self._resident

    @property
    def pinned_count(self) -> int:
        """Slots currently pinned."""
        return len(self._pins)

    def lookup(self, slot: int) -> bool:
        """Check residency, counting a hit/miss and refreshing LRU order."""
        if slot in self._resident:
            self._resident.move_to_end(slot)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, slot: int) -> bool:
        """Make *slot* resident; returns False if pins block the insert."""
        if slot in self._resident:
            self._resident.move_to_end(slot)
            return True
        while len(self._resident) >= self.capacity:
            victim = self._next_victim()
            if victim is None:
                return False
            del self._resident[victim]
            self.stats.evictions += 1
        self._resident[slot] = None
        self.stats.insertions += 1
        return True

    def _next_victim(self) -> Optional[int]:
        for slot in self._resident:
            if slot not in self._pins:
                return slot
        return None

    def invalidate(self, slot: int) -> None:
        """Drop residency for *slot* (no-op when absent).  Pins stay —
        a pinned invalidated slot will re-pin on its next insert."""
        was_resident = slot in self._resident
        if was_resident:
            del self._resident[slot]
        if was_resident or slot in self._pins:
            self.stats.invalidations += 1

    def pin(self, slots: Iterable[int]) -> bool:
        """Pin *slots* against eviction; all-or-nothing.

        Every slot must already be resident and the pin set must leave
        at least one unpinned slot of headroom only if capacity demands
        it — pinning the whole cache is allowed (inserts then refuse).
        Returns False (and pins nothing) when any slot is not resident.
        """
        wanted = list(slots)
        if any(slot not in self._resident for slot in wanted):
            self.stats.pin_failures += 1
            return False
        for slot in wanted:
            self._pins[slot] = self._pins.get(slot, 0) + 1
        return True

    def unpin(self, slots: Iterable[int]) -> None:
        """Release one pin reference per slot (absent slots ignored)."""
        for slot in slots:
            count = self._pins.get(slot)
            if count is None:
                continue
            if count <= 1:
                del self._pins[slot]
            else:
                self._pins[slot] = count - 1

    def resident_fraction(self, slots: Iterable[int]) -> float:
        """Fraction of *slots* currently resident (1.0 for empty input).

        A pure query — no hit/miss accounting, no LRU refresh — used by
        cache-aware admission to size a candidate's disk load.
        """
        wanted = [slot for slot in slots if slot is not None]
        if not wanted:
            return 1.0
        resident = sum(1 for slot in wanted if slot in self._resident)
        return resident / len(wanted)


class CachedDrive:
    """A drive-shaped LRU front end over one :class:`SimulatedDrive`.

    Exposes the access surface the service layers use (``read_slot`` /
    ``write_slot`` / ``injector`` / ``stats`` / ``obs``), so it drops
    into :class:`~repro.service.rounds.RoundRobinService` and
    :func:`~repro.faults.recovery.read_with_recovery` unchanged.  A hit
    costs ``hit_time`` seconds (default 0.0 — no disk-round budget); a
    miss delegates to the inner mechanism and, on success, makes the
    slot resident.  Faulted accesses propagate without populating the
    cache, and a media defect invalidates the slot defensively.
    """

    def __init__(
        self,
        inner: SimulatedDrive,
        cache: BlockCache,
        hit_time: float = 0.0,
        obs=None,
    ):
        if hit_time < 0:
            raise ParameterError(
                f"hit_time must be >= 0, got {hit_time}"
            )
        self.inner = inner
        self.cache = cache
        self.hit_time = hit_time
        self._obs_hits = None
        self._obs_misses = None
        self._obs_evictions = None
        self._obs_profiler = None
        self.attach_cache_observer(obs)

    def attach_cache_observer(self, obs) -> None:
        """Wire ``cache.*`` counters into an observability registry."""
        if obs is None:
            self._obs_hits = None
            self._obs_misses = None
            self._obs_evictions = None
            self._obs_profiler = None
            return
        registry = obs.registry
        self._obs_hits = registry.counter("cache.hits")
        self._obs_misses = registry.counter("cache.misses")
        self._obs_evictions = registry.counter("cache.evictions")
        self._obs_profiler = getattr(obs, "profiler", None)

    # -- drive surface proxied to the inner mechanism -------------------------

    @property
    def injector(self):
        """The inner drive's fault injector (service layers key off it)."""
        return self.inner.injector

    @property
    def stats(self):
        """The inner drive's mechanism counters."""
        return self.inner.stats

    @property
    def obs(self):
        """The inner drive's observability handle."""
        return self.inner.obs

    @property
    def block_bits(self) -> float:
        """Bits per block slot."""
        return self.inner.block_bits

    @property
    def slots(self) -> int:
        """Number of block slots."""
        return self.inner.slots

    def attach_injector(self, injector) -> None:
        """Install a fault injector on the inner drive."""
        self.inner.attach_injector(injector)

    def attach_observer(self, obs) -> None:
        """Install an observability handle on the inner drive."""
        self.inner.attach_observer(obs)

    def parameters(self):
        """Analytic parameters of the inner mechanism."""
        return self.inner.parameters()

    # -- cached accesses -------------------------------------------------------

    def read_slot(self, slot: int, bits: Optional[float] = None) -> float:
        """Read through the cache; returns elapsed simulated seconds."""
        profiler = self._obs_profiler
        if self.cache.lookup(slot):
            if self._obs_hits is not None:
                self._obs_hits.inc()
            if profiler is not None:
                profiler.record(
                    "cache_lookup", cost=self.hit_time,
                    drive=self.inner.profile_label,
                )
            return self.hit_time
        if self._obs_misses is not None:
            self._obs_misses.inc()
        if profiler is not None:
            profiler.record(
                "cache_lookup", drive=self.inner.profile_label
            )
        try:
            duration = self.inner.read_slot(slot, bits)
        except MediaDefectError:
            # The media is bad: any stale residency for the slot must go
            # (data cached before the defect surfaced may predate it).
            self.cache.invalidate(slot)
            raise
        evictions_before = self.cache.stats.evictions
        self.cache.insert(slot)
        if self._obs_evictions is not None:
            delta = self.cache.stats.evictions - evictions_before
            if delta:
                self._obs_evictions.inc(delta)
        return duration

    def traced_read(
        self, slot: int, bits: Optional[float], now: float, tracer, parent
    ) -> float:
        """Read through the cache under a ``cache.read`` span.

        A hit closes the span with status ``hit`` after ``hit_time``
        seconds; a miss delegates to the inner drive's traced read (so
        its ``disk.access`` span nests under this one) and closes with
        status ``miss``.  Hit/miss accounting, insertion, and fault
        semantics are identical to :meth:`read_slot`.
        """
        span = tracer.start_span(
            "cache.read", now, parent=parent, attrs={"slot": slot}
        )
        profiler = self._obs_profiler
        if self.cache.lookup(slot):
            if self._obs_hits is not None:
                self._obs_hits.inc()
            if profiler is not None:
                profiler.record(
                    "cache_lookup", cost=self.hit_time,
                    drive=self.inner.profile_label,
                )
            tracer.end_span(span, now + self.hit_time, status="hit")
            return self.hit_time
        if self._obs_misses is not None:
            self._obs_misses.inc()
        if profiler is not None:
            profiler.record(
                "cache_lookup", drive=self.inner.profile_label
            )
        try:
            duration = self.inner.traced_read(
                slot, bits, now, tracer,
                span if span is not None else parent,
            )
        except MediaDefectError as fault:
            self.cache.invalidate(slot)
            tracer.end_span(
                span, now + getattr(fault, "elapsed", 0.0), status="defect"
            )
            raise
        except Exception as fault:
            tracer.end_span(
                span, now + getattr(fault, "elapsed", 0.0),
                status=type(fault).__name__,
            )
            raise
        evictions_before = self.cache.stats.evictions
        self.cache.insert(slot)
        if self._obs_evictions is not None:
            delta = self.cache.stats.evictions - evictions_before
            if delta:
                self._obs_evictions.inc(delta)
        tracer.end_span(span, now + duration, status="miss")
        return duration

    def write_slot(self, slot: int, bits: Optional[float] = None) -> float:
        """Write through to the mechanism, invalidating residency."""
        self.cache.invalidate(slot)
        return self.inner.write_slot(slot, bits)
