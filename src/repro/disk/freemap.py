"""Free-space management over fixed-size block slots.

The Multimedia Storage Manager divides the disk into equal block slots
(one media/index block per slot) and tracks their allocation state here.
The map supports the lookups each §3 allocator needs:

* window scans (first free slot within a slot range) for the
  constrained-scatter allocator,
* run scans (contiguous stretch of free slots) for the contiguous
  baseline,
* uniform random picks for the unconstrained baseline,
* occupancy, for choosing between the sparse/dense copy bounds of §4.2.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.errors import AllocationError, DiskFullError, ParameterError

__all__ = ["FreeMap"]

_FREE = 0
_USED = 1


class FreeMap:
    """Allocation bitmap over *slots* block slots."""

    def __init__(self, slots: int):
        if slots < 1:
            raise ParameterError(f"slots must be >= 1, got {slots}")
        self._state = bytearray(slots)  # _FREE / _USED per slot
        self._free_count = slots

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._state)

    @property
    def slots(self) -> int:
        """Total slot count."""
        return len(self._state)

    @property
    def free_count(self) -> int:
        """Slots currently free."""
        return self._free_count

    @property
    def used_count(self) -> int:
        """Slots currently allocated."""
        return len(self._state) - self._free_count

    @property
    def occupancy(self) -> float:
        """Fraction of slots in use, in [0, 1]."""
        return self.used_count / len(self._state)

    def is_free(self, slot: int) -> bool:
        """True when *slot* is unallocated."""
        self._check(slot)
        return self._state[slot] == _FREE

    def _check(self, slot: int) -> None:
        if not 0 <= slot < len(self._state):
            raise ParameterError(
                f"slot {slot} outside map (0..{len(self._state) - 1})"
            )

    # -- mutation ----------------------------------------------------------

    def allocate(self, slot: int) -> None:
        """Mark *slot* used; it must currently be free."""
        self._check(slot)
        if self._state[slot] == _USED:
            raise AllocationError(f"slot {slot} is already allocated")
        self._state[slot] = _USED
        self._free_count -= 1

    def release(self, slot: int) -> None:
        """Mark *slot* free; it must currently be used."""
        self._check(slot)
        if self._state[slot] == _FREE:
            raise AllocationError(f"slot {slot} is already free")
        self._state[slot] = _FREE
        self._free_count += 1

    # -- queries for the allocators ----------------------------------------

    def free_in_window(self, start: int, stop: int) -> Iterator[int]:
        """Yield free slots in ``[start, stop)`` in ascending order.

        The window is clamped to the map; an inverted window yields
        nothing.
        """
        lo = max(0, start)
        hi = min(len(self._state), stop)
        state = self._state
        for slot in range(lo, hi):
            if state[slot] == _FREE:
                yield slot

    def first_free_in_window(self, start: int, stop: int) -> Optional[int]:
        """First free slot in ``[start, stop)``, or None."""
        return next(self.free_in_window(start, stop), None)

    def last_free_in_window(self, start: int, stop: int) -> Optional[int]:
        """Last free slot in ``[start, stop)``, or None."""
        lo = max(0, start)
        hi = min(len(self._state), stop)
        state = self._state
        for slot in range(hi - 1, lo - 1, -1):
            if state[slot] == _FREE:
                return slot
        return None

    def find_run(self, length: int, start: int = 0) -> Optional[int]:
        """First index of *length* consecutive free slots at/after *start*.

        Returns None when no such run exists (the contiguous allocator's
        fragmentation failure mode).
        """
        if length < 1:
            raise ParameterError(f"run length must be >= 1, got {length}")
        state = self._state
        run = 0
        for slot in range(max(0, start), len(state)):
            if state[slot] == _FREE:
                run += 1
                if run == length:
                    return slot - length + 1
            else:
                run = 0
        return None

    def random_free(self, rng: random.Random) -> int:
        """A uniformly random free slot (the §3 'random allocation' baseline).

        Raises :class:`DiskFullError` when nothing is free.
        """
        if self._free_count == 0:
            raise DiskFullError("no free slots")
        # Resampling is fast while occupancy is moderate; fall back to an
        # explicit scan when the disk is nearly full.
        state = self._state
        total = len(state)
        if self._free_count * 4 >= total:
            while True:
                slot = rng.randrange(total)
                if state[slot] == _FREE:
                    return slot
        candidates = [slot for slot in range(total) if state[slot] == _FREE]
        return rng.choice(candidates)

    def free_slots(self) -> List[int]:
        """All free slots, ascending (for diagnostics and tests)."""
        return [s for s in range(len(self._state)) if self._state[s] == _FREE]

    def used_slots(self) -> List[int]:
        """All used slots, ascending."""
        return [s for s in range(len(self._state)) if self._state[s] == _USED]
