"""Multi-head disk arrays: the §3.1 concurrent architecture's substrate.

The paper's concurrent retrieval architecture assumes "disks with multiple
heads ... (such as RAIDs)" performing p accesses in parallel.
:class:`DriveArray` models that as p identical, independently seeking
mechanisms with media blocks striped across them round-robin: block i of a
strand lives on drive ``i mod p``.  A *batch* read of p consecutive blocks
proceeds on all drives concurrently, so the batch completes when the
slowest member finishes — which is exactly the timing Eq. (3) budgets for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.symbols import DiskParameters
from repro.disk.drive import SimulatedDrive
from repro.errors import HeadFailureError, ParameterError

__all__ = ["StripedSlot", "DriveArray"]


@dataclass(frozen=True)
class StripedSlot:
    """Address of a block on an array: (member drive, slot on that drive)."""

    drive_index: int
    slot: int


class DriveArray:
    """p identical drives with round-robin block striping.

    Parameters
    ----------
    drives:
        The member mechanisms.  They should be configured identically;
        heterogeneous members are permitted but make Eq. (3)'s single
    ``R_dr`` an approximation.
    """

    def __init__(self, drives: Sequence[SimulatedDrive]):
        if not drives:
            raise ParameterError("DriveArray requires at least one drive")
        block_bits = {drive.block_bits for drive in drives}
        if len(block_bits) != 1:
            raise ParameterError(
                "all array members must use the same block size, got "
                f"{sorted(block_bits)}"
            )
        self.drives: List[SimulatedDrive] = list(drives)

    @property
    def heads(self) -> int:
        """Degree of concurrency p."""
        return len(self.drives)

    @property
    def block_bits(self) -> float:
        """Bits per block slot (uniform across members)."""
        return self.drives[0].block_bits

    def stripe(self, strand_block_index: int, slot: int) -> StripedSlot:
        """Map a strand's i-th block onto its member drive."""
        if strand_block_index < 0:
            raise ParameterError(
                f"strand_block_index must be >= 0, got {strand_block_index}"
            )
        return StripedSlot(
            drive_index=strand_block_index % self.heads, slot=slot
        )

    def member(self, index: int) -> SimulatedDrive:
        """The index-th member drive."""
        if not 0 <= index < self.heads:
            raise ParameterError(
                f"drive index {index} outside array (0..{self.heads - 1})"
            )
        return self.drives[index]

    # -- fault injection -------------------------------------------------------

    def attach_fault_plan(self, plan) -> None:
        """Install a :class:`~repro.faults.plan.FaultPlan` array-wide.

        Each member receives an injector executing the sub-plan whose
        specs carry its ``drive_index``.
        """
        from repro.faults.injector import FaultInjector

        for index, drive in enumerate(self.drives):
            drive.attach_injector(
                FaultInjector(plan.for_drive(index), drive_index=index)
            )

    @property
    def failed_members(self) -> List[int]:
        """Indexes of members whose head has failed."""
        return [
            index
            for index, drive in enumerate(self.drives)
            if drive.injector is not None and drive.injector.head_failed
        ]

    @property
    def surviving_heads(self) -> int:
        """Members still able to transfer (degraded p)."""
        return self.heads - len(self.failed_members)

    def read_batch(self, addresses: Sequence[StripedSlot]) -> float:
        """Read up to p blocks concurrently; returns the batch duration.

        Each address must target a distinct member (one outstanding access
        per head); the batch takes as long as its slowest member.
        """
        if not addresses:
            return 0.0
        members = [address.drive_index for address in addresses]
        if len(set(members)) != len(members):
            raise ParameterError(
                "concurrent batch targets a member drive twice; a head "
                "serves one access at a time"
            )
        durations = [
            self.member(address.drive_index).read_slot(address.slot)
            for address in addresses
        ]
        return max(durations)

    def read_batch_degraded(
        self, addresses: Sequence[StripedSlot]
    ) -> Tuple[float, List[StripedSlot]]:
        """Batch read that survives head failures.

        Returns ``(duration, lost)``: the batch still takes as long as
        its slowest *surviving* member, and ``lost`` lists the addresses
        whose member head has failed (their data never arrives — the
        caller records the glitches and shrinks its admission).
        Transient and media-defect faults propagate; per-block retry
        policy belongs to the service layer, not the array.
        """
        if not addresses:
            return 0.0, []
        members = [address.drive_index for address in addresses]
        if len(set(members)) != len(members):
            raise ParameterError(
                "concurrent batch targets a member drive twice; a head "
                "serves one access at a time"
            )
        durations = [0.0]
        lost: List[StripedSlot] = []
        for address in addresses:
            try:
                durations.append(
                    self.member(address.drive_index).read_slot(address.slot)
                )
            except HeadFailureError as fault:
                durations.append(fault.elapsed)
                lost.append(address)
        return max(durations), lost

    def read_striped_run(
        self, slots: Sequence[int], first_block_index: int = 0
    ) -> Tuple[float, int]:
        """Read a run of consecutive strand blocks, batching per stripe.

        Returns ``(total_time, batches)``.  Blocks are grouped into
        stripes of p and each stripe is read concurrently; this is the
        concurrent architecture's steady-state pattern.
        """
        total = 0.0
        batches = 0
        p = self.heads
        for offset in range(0, len(slots), p):
            group = slots[offset:offset + p]
            addresses = [
                self.stripe(first_block_index + offset + j, slot)
                for j, slot in enumerate(group)
            ]
            total += self.read_batch(addresses)
            batches += 1
        return total, batches

    def parameters(self, degraded: bool = False) -> DiskParameters:
        """Project the array onto the Table-1 symbols (heads = p).

        With ``degraded=True``, p counts only surviving members — the
        projection admission revalidation uses after a head failure.
        """
        base = self.drives[0].parameters()
        heads = self.surviving_heads if degraded else self.heads
        return DiskParameters(
            transfer_rate=base.transfer_rate,
            seek_max=base.seek_max,
            seek_avg=base.seek_avg,
            seek_track=base.seek_track,
            cylinders=base.cylinders,
            heads=max(1, heads),
        )
