"""Disk geometry: cylinders, tracks, sectors, and address arithmetic.

The simulated drive uses classic CHS (cylinder/head/sector) geometry, with
linear block addresses (LBA) assigned in the conventional order: all
sectors of a track, then the next track (head) of the same cylinder, then
the next cylinder.  Placement and seek-distance arithmetic all reduce to
the cylinder coordinate, which this module exposes for any LBA.

Above raw sectors the file system deals in fixed-size **block slots**: a
disk is divided into consecutive groups of ``sectors_per_block`` sectors,
and every media/primary/secondary/header block occupies one slot.  Slot
numbering and slot↔cylinder mapping live here too, because the
constrained-scatter allocator reasons about slots while the seek model
reasons about cylinders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError, ParameterError

__all__ = ["CHS", "DiskGeometry"]


@dataclass(frozen=True)
class CHS:
    """A cylinder/head/sector coordinate."""

    cylinder: int
    head: int
    sector: int


@dataclass(frozen=True)
class DiskGeometry:
    """Physical layout of a simulated drive.

    Parameters
    ----------
    cylinders:
        Number of cylinders (seek positions).
    tracks_per_cylinder:
        Number of recording surfaces (= heads on the arm).
    sectors_per_track:
        Sectors per track; all tracks are the same length (no zoning).
    sector_bits:
        Capacity of one sector, in bits (512 bytes = 4096 bits is typical).
    """

    cylinders: int
    tracks_per_cylinder: int
    sectors_per_track: int
    sector_bits: float

    def __post_init__(self) -> None:
        for name in ("cylinders", "tracks_per_cylinder", "sectors_per_track"):
            value = getattr(self, name)
            if value < 1:
                raise ParameterError(f"{name} must be >= 1, got {value}")
        if self.sector_bits <= 0:
            raise ParameterError(
                f"sector_bits must be positive, got {self.sector_bits}"
            )

    # -- capacity ----------------------------------------------------------

    @property
    def sectors_per_cylinder(self) -> int:
        """Sectors reachable without seeking."""
        return self.tracks_per_cylinder * self.sectors_per_track

    @property
    def total_sectors(self) -> int:
        """Sector count of the whole drive."""
        return self.cylinders * self.sectors_per_cylinder

    @property
    def capacity_bits(self) -> float:
        """Total raw capacity in bits."""
        return self.total_sectors * self.sector_bits

    # -- LBA <-> CHS -------------------------------------------------------

    def validate_lba(self, lba: int) -> None:
        """Raise :class:`AddressError` if *lba* is outside the drive."""
        if not 0 <= lba < self.total_sectors:
            raise AddressError(
                f"LBA {lba} outside drive (0..{self.total_sectors - 1})"
            )

    def to_chs(self, lba: int) -> CHS:
        """Convert a linear block address to cylinder/head/sector."""
        self.validate_lba(lba)
        cylinder, rest = divmod(lba, self.sectors_per_cylinder)
        head, sector = divmod(rest, self.sectors_per_track)
        return CHS(cylinder=cylinder, head=head, sector=sector)

    def to_lba(self, chs: CHS) -> int:
        """Convert cylinder/head/sector to a linear block address."""
        if not 0 <= chs.cylinder < self.cylinders:
            raise AddressError(f"cylinder {chs.cylinder} outside drive")
        if not 0 <= chs.head < self.tracks_per_cylinder:
            raise AddressError(f"head {chs.head} outside drive")
        if not 0 <= chs.sector < self.sectors_per_track:
            raise AddressError(f"sector {chs.sector} outside drive")
        return (
            chs.cylinder * self.sectors_per_cylinder
            + chs.head * self.sectors_per_track
            + chs.sector
        )

    def cylinder_of_lba(self, lba: int) -> int:
        """Cylinder coordinate of an LBA (the seek-relevant part)."""
        self.validate_lba(lba)
        return lba // self.sectors_per_cylinder

    # -- block slots -------------------------------------------------------

    def slots(self, sectors_per_block: int) -> int:
        """Number of whole block slots of *sectors_per_block* sectors."""
        if sectors_per_block < 1:
            raise ParameterError(
                f"sectors_per_block must be >= 1, got {sectors_per_block}"
            )
        return self.total_sectors // sectors_per_block

    def slot_to_lba(self, slot: int, sectors_per_block: int) -> int:
        """First sector of a block slot."""
        total = self.slots(sectors_per_block)
        if not 0 <= slot < total:
            raise AddressError(f"slot {slot} outside drive (0..{total - 1})")
        return slot * sectors_per_block

    def cylinder_of_slot(self, slot: int, sectors_per_block: int) -> int:
        """Cylinder holding the first sector of a block slot."""
        return self.cylinder_of_lba(self.slot_to_lba(slot, sectors_per_block))

    def slots_per_cylinder(self, sectors_per_block: int) -> float:
        """Average block slots per cylinder (may be fractional)."""
        if sectors_per_block < 1:
            raise ParameterError(
                f"sectors_per_block must be >= 1, got {sectors_per_block}"
            )
        return self.sectors_per_cylinder / sectors_per_block
