"""The simulated disk drive: timing, head state, and statistics.

:class:`SimulatedDrive` is the substrate everything above stores onto.  It
does not hold data bytes (the file-system layer tracks content); it holds
*time*: given the head's current position and a target block slot, it
answers "how long does this access take?" and moves the head.  All
durations come from the drive's seek curve, rotation model, and transfer
rate, so the analytic layer (:class:`repro.core.symbols.DiskParameters`)
and the simulation measure the same machine — :meth:`parameters` derives
the analytic triple (max / average / track access time) directly from the
simulated mechanism.

Per the paper's first simplifying assumption, writes are charged the same
time as reads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.symbols import DiskParameters
from repro.disk.geometry import DiskGeometry
from repro.disk.seek import Rotation, SeekModel
from repro.errors import ParameterError

__all__ = ["DriveStats", "SimulatedDrive"]


@dataclass
class DriveStats:
    """Running counters for one drive."""

    reads: int = 0
    writes: int = 0
    sectors_transferred: int = 0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    seek_distance: int = 0
    faults_injected: int = 0
    retries: int = 0
    degraded_reads: int = 0

    @property
    def operations(self) -> int:
        """Total read + write operations."""
        return self.reads + self.writes

    @property
    def busy_time(self) -> float:
        """Total time the mechanism was occupied."""
        return self.seek_time + self.rotation_time + self.transfer_time

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.sectors_transferred = 0
        self.seek_time = 0.0
        self.rotation_time = 0.0
        self.transfer_time = 0.0
        self.seek_distance = 0
        self.faults_injected = 0
        self.retries = 0
        self.degraded_reads = 0


class SimulatedDrive:
    """One disk mechanism: geometry + seek curve + rotation + transfer rate.

    Parameters
    ----------
    geometry:
        CHS layout of the drive.
    seek_model:
        Cylinder-distance → seconds curve.
    rotation:
        Rotational-latency model.
    transfer_rate:
        Sustained media transfer rate, bits/second.
    sectors_per_block:
        Size of one file-system block slot, in sectors.
    rng:
        Seeded random source, required only when ``rotation.randomized``.
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        rotation: Rotation,
        transfer_rate: float,
        sectors_per_block: int,
        rng: Optional[random.Random] = None,
    ):
        if transfer_rate <= 0:
            raise ParameterError(
                f"transfer_rate must be positive, got {transfer_rate}"
            )
        if sectors_per_block < 1:
            raise ParameterError(
                f"sectors_per_block must be >= 1, got {sectors_per_block}"
            )
        if rotation.randomized and rng is None:
            raise ParameterError(
                "randomized rotation requires a seeded rng"
            )
        self.geometry = geometry
        self.seek_model = seek_model
        self.rotation = rotation
        self.transfer_rate = float(transfer_rate)
        self.sectors_per_block = sectors_per_block
        self.rng = rng
        self.stats = DriveStats()
        self._head_cylinder = 0
        self.injector = None
        self.obs = None
        self._obs_seek_hist = None
        self._obs_access_counter = None
        self._obs_profiler = None
        #: Label this drive's profiler attributions carry (``per_drive``
        #: in the cost summary); settable by whoever owns the drive.
        self.profile_label = "drive"
        # Geometry, seek curve, rotation, and rates are fixed for the
        # drive's lifetime (all frozen dataclasses), so the per-access
        # constants are resolved once instead of through property chains
        # on every one of the millions of accesses a sweep performs.
        self._block_bits = sectors_per_block * geometry.sector_bits
        self._total_slots = geometry.slots(sectors_per_block)
        self._sectors_per_cylinder = geometry.sectors_per_cylinder
        self._full_block_transfer = self._block_bits / self.transfer_rate
        self._fixed_latency = (
            None if rotation.randomized else rotation.average_latency
        )

    def attach_injector(self, injector) -> None:
        """Install a :class:`~repro.faults.injector.FaultInjector`.

        Every subsequent access consults it; pass None to detach.
        """
        self.injector = injector

    def attach_observer(self, obs) -> None:
        """Install an :class:`~repro.obs.Observability` handle.

        Instruments are resolved once here so the observed access path
        costs two attribute calls, and the unobserved path (the default)
        stays a single ``is None`` test.  Pass None to detach.
        """
        self.obs = obs
        if obs is None:
            self._obs_seek_hist = None
            self._obs_access_counter = None
            self._obs_profiler = None
            return
        from repro.obs.registry import SEEK_TIME_BUCKETS

        self._obs_seek_hist = obs.registry.histogram(
            "disk.seek_s", SEEK_TIME_BUCKETS
        )
        self._obs_access_counter = obs.registry.counter("disk.accesses")
        self._obs_profiler = getattr(obs, "profiler", None)

    # -- derived sizes -------------------------------------------------------

    @property
    def block_bits(self) -> float:
        """Bits per block slot."""
        return self._block_bits

    @property
    def slots(self) -> int:
        """Number of block slots on this drive."""
        return self._total_slots

    @property
    def head_cylinder(self) -> int:
        """Current head position."""
        return self._head_cylinder

    def cylinder_of(self, slot: int) -> int:
        """Cylinder containing a block slot."""
        return self.geometry.cylinder_of_slot(slot, self.sectors_per_block)

    # -- timing (pure: no state change) --------------------------------------

    def transfer_time(self, bits: float) -> float:
        """Media-transfer seconds for *bits* once positioned."""
        if bits < 0:
            raise ParameterError(f"bits must be >= 0, got {bits}")
        return bits / self.transfer_rate

    def positioning_time(
        self, from_cylinder: int, to_cylinder: int
    ) -> float:
        """Seek + expected rotational latency between two cylinders.

        Uses the rotation model's deterministic expectation — this is the
        function allocators and analytic derivations call, so it must not
        consume randomness.
        """
        distance = abs(to_cylinder - from_cylinder)
        return self.seek_model.seek_time(distance) + self.rotation.average_latency

    def access_gap(self, slot_a: int, slot_b: int) -> float:
        """Positioning delay between the blocks in two slots.

        This is the quantity the scattering parameter ``l_ds`` bounds: the
        time between finishing one block and touching the next.
        """
        return self.positioning_time(
            self.cylinder_of(slot_a), self.cylinder_of(slot_b)
        )

    # -- analytic parameter derivation ---------------------------------------

    def parameters(self) -> DiskParameters:
        """Project this mechanism onto the paper's Table-1 disk symbols.

        * ``seek_max`` — full-stroke seek + *worst-case* rotation (the
          bound §3.4 charges per request switch);
        * ``seek_avg`` — the classic uniform-random expectation (mean seek
          distance = one third of the stroke) + average rotation;
        * ``seek_track`` — adjacent-cylinder seek + average rotation.
        """
        full_stroke = self.geometry.cylinders - 1
        seek_max = (
            self.seek_model.seek_time(full_stroke) + self.rotation.max_latency
        )
        seek_avg = (
            self.seek_model.seek_time(max(1, full_stroke // 3))
            + self.rotation.average_latency
        )
        seek_track = (
            self.seek_model.seek_time(1) + self.rotation.average_latency
        )
        return DiskParameters(
            transfer_rate=self.transfer_rate,
            seek_max=seek_max,
            seek_avg=min(seek_avg, seek_max),
            seek_track=min(seek_track, seek_avg, seek_max),
            cylinders=self.geometry.cylinders,
            heads=1,
        )

    # -- stateful operations --------------------------------------------------

    def _sample_latency(self) -> float:
        if self._fixed_latency is not None:
            return self._fixed_latency
        return self.rotation.latency(self.rng)

    def _access(self, slot: int, bits: Optional[float]) -> float:
        total_slots = self._total_slots
        if not 0 <= slot < total_slots:
            raise ParameterError(
                f"slot {slot} outside drive (0..{total_slots - 1})"
            )
        if self.injector is not None:
            fault = self.injector.pre_check(slot)
            if fault is not None:
                # Dead head: fail fast, no mechanism time charged.
                self.stats.faults_injected += 1
                raise fault
        # Slot range was checked above, so the cylinder arithmetic can
        # skip the geometry layer's per-call LBA validation.
        target = (slot * self.sectors_per_block) // self._sectors_per_cylinder
        distance = abs(target - self._head_cylinder)
        seek = self.seek_model.seek_time(distance)
        latency = self._sample_latency()
        if bits is None or bits >= self._block_bits:
            transfer = self._full_block_transfer
        else:
            if bits < 0:
                raise ParameterError(f"bits must be >= 0, got {bits}")
            transfer = bits / self.transfer_rate
        self._head_cylinder = target
        self.stats.seek_time += seek
        self.stats.rotation_time += latency
        self.stats.transfer_time += transfer
        self.stats.seek_distance += distance
        self.stats.sectors_transferred += self.sectors_per_block
        duration = seek + latency + transfer
        if self.obs is not None:
            self._obs_access_counter.inc()
            self._obs_seek_hist.observe(seek)
            profiler = self._obs_profiler
            if profiler is not None:
                # Positioning (seek + rotation) vs media transfer are the
                # paper's two cost components; attribute both to this
                # drive's label.
                label = self.profile_label
                profiler.record("seek", cost=seek + latency, drive=label)
                profiler.record("transfer", cost=transfer, drive=label)
        if self.injector is not None:
            # The failed attempt's time is already charged above: a fault
            # is only known once the access has been tried.
            fault = self.injector.post_check(
                slot, duration, self.stats.busy_time
            )
            if fault is not None:
                self.stats.faults_injected += 1
                raise fault
        return duration

    def read_slot(self, slot: int, bits: Optional[float] = None) -> float:
        """Read the block in *slot*; returns the elapsed time in seconds.

        *bits* may give the valid payload size for a partially filled
        block; timing is charged for the payload actually moved.
        """
        duration = self._access(slot, bits)
        self.stats.reads += 1
        return duration

    def traced_read(
        self, slot: int, bits: Optional[float], now: float, tracer, parent
    ) -> float:
        """Read *slot* under a ``disk.access`` span; returns elapsed seconds.

        The span covers the access's simulated duration.  On an injected
        fault it is closed at the time the doomed attempt consumed, with
        the fault's type name as status, and the fault propagates.
        """
        span = tracer.start_span(
            "disk.access", now, parent=parent, attrs={"slot": slot}
        )
        try:
            duration = self.read_slot(slot, bits)
        except Exception as fault:
            tracer.end_span(
                span,
                now + getattr(fault, "elapsed", 0.0),
                status=type(fault).__name__,
            )
            raise
        tracer.end_span(span, now + duration)
        return duration

    def write_slot(self, slot: int, bits: Optional[float] = None) -> float:
        """Write the block in *slot*; timing identical to a read (§3)."""
        duration = self._access(slot, bits)
        self.stats.writes += 1
        return duration

    def park(self, cylinder: int = 0) -> None:
        """Move the head without charging time (test/setup helper)."""
        if not 0 <= cylinder < self.geometry.cylinders:
            raise ParameterError(
                f"cylinder {cylinder} outside drive "
                f"(0..{self.geometry.cylinders - 1})"
            )
        self._head_cylinder = cylinder
