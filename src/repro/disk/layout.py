"""Strand placement and measured-scattering validation.

:class:`StrandPlacer` drives an allocator to lay out all blocks of a media
strand and returns a :class:`Placement` that records the slots *and* the
positioning gaps the drive will actually incur between consecutive blocks.
Experiments use the measured gaps to verify that constrained allocation
delivers what the §3 analysis assumes, and that the baselines do not.

The module also implements the paper's "common file server" observation:
"using the gaps between successive blocks of a media strand to store text
files."  :class:`GapFiller` allocates non-real-time (text) blocks into the
free slots the scatter discipline leaves between media blocks, without
disturbing any existing placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.disk.allocation import Allocator
from repro.disk.drive import SimulatedDrive
from repro.disk.freemap import FreeMap
from repro.errors import DiskFullError, ParameterError

__all__ = ["Placement", "StrandPlacer", "GapFiller", "find_free_slot_near"]


def find_free_slot_near(
    freemap: FreeMap,
    drive: SimulatedDrive,
    cylinder: int,
    max_widen: Optional[int] = None,
) -> int:
    """The free slot whose cylinder is closest to *cylinder*.

    Searches outward (±1 cylinder, ±2, ...) up to *max_widen* cylinders
    (default: the whole disk).  Used by the §4.2 redistribution algorithm,
    which wants copied blocks at specific positions between two anchors.

    Raises :class:`DiskFullError` when nothing is free within the widening
    limit.
    """
    geometry = drive.geometry
    cylinder = max(0, min(geometry.cylinders - 1, cylinder))
    if max_widen is None:
        max_widen = geometry.cylinders
    spb = drive.sectors_per_block
    spc = geometry.sectors_per_cylinder

    def window_for(low_cyl: int, high_cyl: int):
        low_cyl = max(0, low_cyl)
        high_cyl = min(geometry.cylinders - 1, high_cyl)
        if low_cyl > high_cyl:
            return None
        first = (low_cyl * spc + spb - 1) // spb
        last = min(((high_cyl + 1) * spc - 1) // spb, drive.slots - 1)
        return first, last

    for widen in range(max_widen + 1):
        window = window_for(cylinder - widen, cylinder + widen)
        if window is None:
            continue
        slot = freemap.first_free_in_window(window[0], window[1] + 1)
        if slot is not None:
            return slot
    raise DiskFullError(
        f"no free slot within {max_widen} cylinders of cylinder {cylinder}"
    )


@dataclass(frozen=True)
class Placement:
    """The on-disk layout of one strand's blocks.

    Attributes
    ----------
    slots:
        Block slots in playback order.
    gaps:
        Positioning delay (seconds) between each consecutive slot pair;
        ``len(gaps) == len(slots) - 1``.
    """

    slots: Sequence[int]
    gaps: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.slots) == 0:
            raise ParameterError("a placement needs at least one slot")
        if len(self.gaps) != len(self.slots) - 1:
            raise ParameterError(
                f"{len(self.slots)} slots require {len(self.slots) - 1} "
                f"gaps, got {len(self.gaps)}"
            )

    @property
    def block_count(self) -> int:
        """Number of blocks placed."""
        return len(self.slots)

    @property
    def max_gap(self) -> float:
        """Largest inter-block positioning delay (0 for 1-block strands)."""
        return max(self.gaps, default=0.0)

    @property
    def min_gap(self) -> float:
        """Smallest inter-block positioning delay (0 for 1-block strands)."""
        return min(self.gaps, default=0.0)

    @property
    def mean_gap(self) -> float:
        """Average inter-block positioning delay (0 for 1-block strands)."""
        if not self.gaps:
            return 0.0
        return sum(self.gaps) / len(self.gaps)

    def within(self, lower: float, upper: float) -> bool:
        """True when every gap lies in ``[lower, upper]``."""
        return all(lower <= gap <= upper for gap in self.gaps)


class StrandPlacer:
    """Places whole strands via an allocator and measures the result."""

    def __init__(self, drive: SimulatedDrive, allocator: Allocator):
        self.drive = drive
        self.allocator = allocator

    def place(self, block_count: int, hint: Optional[int] = None) -> Placement:
        """Allocate *block_count* slots and measure consecutive gaps."""
        slots = self.allocator.allocate_strand(block_count, hint)
        gaps = [
            self.drive.access_gap(a, b)
            for a, b in zip(slots, slots[1:])
        ]
        return Placement(slots=tuple(slots), gaps=tuple(gaps))

    def remove(self, placement: Placement) -> None:
        """Release every slot of a placement back to the free map."""
        self.allocator.release(list(placement.slots))


class GapFiller:
    """Stores non-real-time (text) blocks in the scatter gaps.

    Media strands placed with constrained scattering leave free slots
    between their blocks; a unified file server stores conventional files
    there.  Text blocks have no continuity requirement, so any free slot
    will do — this filler simply takes the lowest-numbered free slots,
    which are exactly the gap slots once media strands occupy the disk's
    low region.
    """

    def __init__(self, freemap: FreeMap):
        self.freemap = freemap

    def place(self, block_count: int) -> List[int]:
        """Allocate *block_count* free slots for text data, ascending."""
        if block_count < 1:
            raise ParameterError(
                f"block_count must be >= 1, got {block_count}"
            )
        if self.freemap.free_count < block_count:
            raise DiskFullError(
                f"need {block_count} slots, only "
                f"{self.freemap.free_count} free"
            )
        slots: List[int] = []
        cursor = 0
        while len(slots) < block_count:
            slot = self.freemap.first_free_in_window(
                cursor, self.freemap.slots
            )
            if slot is None:
                raise DiskFullError("free map exhausted mid-allocation")
            self.freemap.allocate(slot)
            slots.append(slot)
            cursor = slot + 1
        return slots

    def remove(self, slots: Sequence[int]) -> None:
        """Release text blocks."""
        for slot in slots:
            self.freemap.release(slot)
