"""Ready-made drive mechanisms for the standard experiments.

Profiles in :mod:`repro.config` carry *analytic* disk parameters; the
simulation needs a full *mechanism* (geometry + seek curve + rotation).
This module provides named mechanism specs whose derived analytic
parameters (:meth:`SimulatedDrive.parameters`) land in the same regime as
the corresponding profile, and — more importantly — it lets experiments
derive the analytic disk *from* the mechanism, so analysis and simulation
describe the identical machine by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.disk.drive import SimulatedDrive
from repro.disk.freemap import FreeMap
from repro.disk.geometry import DiskGeometry
from repro.disk.raid import DriveArray
from repro.disk.seek import LinearSeek, Rotation, SeekModel
from repro.errors import ParameterError
from repro.units import bytes_, megabits_per_second, milliseconds

__all__ = [
    "DriveSpec",
    "TESTBED_DRIVE",
    "FAST_DRIVE",
    "build_drive",
    "build_array",
    "drive_with_freemap",
]


@dataclass(frozen=True)
class DriveSpec:
    """Everything needed to instantiate one simulated mechanism."""

    name: str
    cylinders: int
    tracks_per_cylinder: int
    sectors_per_track: int
    sector_bits: float
    rpm: float
    transfer_rate: float
    seek_settle: float
    seek_slope: float

    def geometry(self) -> DiskGeometry:
        """The spec's CHS geometry."""
        return DiskGeometry(
            cylinders=self.cylinders,
            tracks_per_cylinder=self.tracks_per_cylinder,
            sectors_per_track=self.sectors_per_track,
            sector_bits=self.sector_bits,
        )

    def seek_model(self) -> SeekModel:
        """The spec's seek curve."""
        return LinearSeek(settle_time=self.seek_settle, slope=self.seek_slope)

    def rotation(self, randomized: bool = False) -> Rotation:
        """The spec's rotation model."""
        return Rotation(rpm=self.rpm, randomized=randomized)


#: A period-typical 1991 PC-AT SCSI drive: ~229 MByte, 3600 rpm,
#: ~24 ms full-stroke seek, 10 Mbit/s media rate.
TESTBED_DRIVE = DriveSpec(
    name="testbed-1991-drive",
    cylinders=1024,
    tracks_per_cylinder=8,
    sectors_per_track=56,
    sector_bits=bytes_(512),
    rpm=3600.0,
    transfer_rate=megabits_per_second(10.0),
    seek_settle=milliseconds(3.0),
    seek_slope=milliseconds(0.02),
)

#: A projected faster mechanism for multi-client sweeps: 5400 rpm,
#: 40 Mbit/s, ~14 ms full stroke.
FAST_DRIVE = DriveSpec(
    name="fast-drive",
    cylinders=2048,
    tracks_per_cylinder=8,
    sectors_per_track=112,
    sector_bits=bytes_(512),
    rpm=5400.0,
    transfer_rate=megabits_per_second(40.0),
    seek_settle=milliseconds(2.0),
    seek_slope=milliseconds(0.006),
)


def build_drive(
    spec: DriveSpec = TESTBED_DRIVE,
    sectors_per_block: int = 64,
    randomized_rotation: bool = False,
    rng: Optional[random.Random] = None,
) -> SimulatedDrive:
    """Instantiate one mechanism from a spec.

    The default 64-sector block (32 KBytes at 512-byte sectors) holds four
    8-KByte compressed NTSC frames — the testbed's usual granularity.
    """
    return SimulatedDrive(
        geometry=spec.geometry(),
        seek_model=spec.seek_model(),
        rotation=spec.rotation(randomized_rotation),
        transfer_rate=spec.transfer_rate,
        sectors_per_block=sectors_per_block,
        rng=rng,
    )


def build_array(
    heads: int,
    spec: DriveSpec = TESTBED_DRIVE,
    sectors_per_block: int = 64,
) -> DriveArray:
    """Instantiate a p-member array of identical mechanisms."""
    if heads < 1:
        raise ParameterError(f"heads must be >= 1, got {heads}")
    return DriveArray(
        [build_drive(spec, sectors_per_block) for _ in range(heads)]
    )


def drive_with_freemap(
    spec: DriveSpec = TESTBED_DRIVE,
    sectors_per_block: int = 64,
    randomized_rotation: bool = False,
    rng: Optional[random.Random] = None,
):
    """Convenience: a drive plus a matching free map, as a tuple."""
    drive = build_drive(spec, sectors_per_block, randomized_rotation, rng)
    return drive, FreeMap(drive.slots)
