"""Synthetic §3.4 service workloads at chosen scale points.

A :class:`ScaleScenario` describes one run of the round-robin service —
how many concurrent streams, how long each strand is, which drive
mechanism serves them, and how arrivals are spread over rounds.  The
scenario is a frozen value object so it pickles cleanly into worker
processes; :func:`run_scale_scenario` is the module-level entry point the
sweep runner maps over.

Scenarios deliberately build :class:`~repro.service.rounds.StreamState`
plans directly (seeded strided slot placement) instead of recording
media through the rope server: the point is to load the service loop and
drive model — the hot paths — with exactly controlled block counts.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.disk.drive import SimulatedDrive
from repro.disk.factory import FAST_DRIVE, TESTBED_DRIVE, build_drive
from repro.disk.seek import TableSeek
from repro.errors import ParameterError
from repro.rope.server import BlockFetch
from repro.service.rounds import Admission, RoundRobinService, StreamState

__all__ = [
    "DRIVE_CONFIGS",
    "ObsOverheadResult",
    "ProfiledScaleRun",
    "ScaleScenario",
    "ScaleResult",
    "build_drive_config",
    "build_streams",
    "run_obs_overhead_scenario",
    "run_profiled_scale_scenario",
    "run_scale_scenario",
]

#: Frame period of the testbed's ~4-frame block at 30 fps.
DEFAULT_BLOCK_SECONDS = 4 / 30.0


def _table_drive() -> SimulatedDrive:
    """The testbed mechanism replayed through a measured-curve TableSeek.

    Sampling the testbed's linear curve at a handful of distances and
    interpolating between them exercises the memoized table path the way
    a real datasheet replay would.
    """
    drive = build_drive(TESTBED_DRIVE)
    linear = TESTBED_DRIVE.seek_model()
    samples = [1, 4, 16, 64, 256, TESTBED_DRIVE.cylinders - 1]
    points = [(d, linear.seek_time(d)) for d in samples]
    return SimulatedDrive(
        geometry=TESTBED_DRIVE.geometry(),
        seek_model=TableSeek(points),
        rotation=TESTBED_DRIVE.rotation(),
        transfer_rate=TESTBED_DRIVE.transfer_rate,
        sectors_per_block=64,
    )


#: Drive configurations a sweep can fan over.
DRIVE_CONFIGS = {
    "testbed": lambda: build_drive(TESTBED_DRIVE),
    "fast": lambda: build_drive(FAST_DRIVE),
    "table": _table_drive,
}

ARRIVALS = ("uniform", "staggered")


def build_drive_config(name: str) -> SimulatedDrive:
    """Instantiate one of the named :data:`DRIVE_CONFIGS`."""
    try:
        factory = DRIVE_CONFIGS[name]
    except KeyError:
        raise ParameterError(
            f"unknown drive config {name!r}; known: "
            f"{', '.join(sorted(DRIVE_CONFIGS))}"
        ) from None
    return factory()


@dataclass(frozen=True)
class ScaleScenario:
    """One service-loop scale point.

    Parameters
    ----------
    name:
        Label carried into the result and the report table.
    streams:
        Concurrent playback requests.
    blocks_per_stream:
        Strand length, in blocks.
    k:
        Blocks per request per round (fixed schedule).
    buffer_capacity:
        Display buffers per stream (the regulation bound).
    seed:
        Seeds the strided slot placement, so a scenario is reproducible
        bit for bit in any process.
    drive:
        A :data:`DRIVE_CONFIGS` key.
    arrivals:
        ``"uniform"`` — every stream present at round 0; ``"staggered"``
        — streams join in admission order over the early rounds, loading
        the mid-run admission path.
    block_seconds:
        Playback seconds per block.
    """

    name: str
    streams: int
    blocks_per_stream: int
    k: int = 4
    buffer_capacity: int = 8
    seed: int = 0
    drive: str = "testbed"
    arrivals: str = "uniform"
    block_seconds: float = DEFAULT_BLOCK_SECONDS

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ParameterError(
                f"streams must be >= 1, got {self.streams}"
            )
        if self.blocks_per_stream < 1:
            raise ParameterError(
                f"blocks_per_stream must be >= 1, got "
                f"{self.blocks_per_stream}"
            )
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if self.drive not in DRIVE_CONFIGS:
            raise ParameterError(
                f"unknown drive config {self.drive!r}; known: "
                f"{', '.join(sorted(DRIVE_CONFIGS))}"
            )
        if self.arrivals not in ARRIVALS:
            raise ParameterError(
                f"unknown arrivals mode {self.arrivals!r}; known: "
                f"{', '.join(ARRIVALS)}"
            )
        if self.block_seconds <= 0:
            raise ParameterError(
                f"block_seconds must be positive, got {self.block_seconds}"
            )


@dataclass(frozen=True)
class ScaleResult:
    """Throughput scoring of one completed scenario."""

    name: str
    streams: int
    blocks_per_stream: int
    drive: str
    arrivals: str
    seed: int
    wall_time_s: float
    rounds: int
    blocks_delivered: int
    misses: int
    blocks_per_second: float
    streams_per_second: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the BENCH_PERF.json row shape)."""
        return {
            "name": self.name,
            "streams": self.streams,
            "blocks_per_stream": self.blocks_per_stream,
            "drive": self.drive,
            "arrivals": self.arrivals,
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
            "rounds": self.rounds,
            "blocks_delivered": self.blocks_delivered,
            "misses": self.misses,
            "blocks_per_second": self.blocks_per_second,
            "streams_per_second": self.streams_per_second,
        }


def build_streams(
    scenario: ScaleScenario, drive: SimulatedDrive
) -> Tuple[List[StreamState], List[Admission]]:
    """Materialize a scenario's streams against a concrete drive."""
    rng = random.Random(scenario.seed)
    total_slots = drive.slots
    initial: List[StreamState] = []
    admissions: List[Admission] = []
    for i in range(scenario.streams):
        base = rng.randrange(total_slots)
        stride = rng.randrange(1, 9)
        fetches = [
            BlockFetch(
                slot=(base + j * stride) % total_slots,
                bits=drive.block_bits,
                duration=scenario.block_seconds,
            )
            for j in range(scenario.blocks_per_stream)
        ]
        stream = StreamState(
            request_id=f"{scenario.name}-s{i:05d}",
            fetches=fetches,
            buffer_capacity=scenario.buffer_capacity,
        )
        if scenario.arrivals == "staggered" and i > 0:
            # Spread joins over the early rounds, one every other round,
            # capped so late joiners still overlap the initial cohort.
            join_round = min(2 * i, 4 * scenario.k)
            admissions.append(
                Admission(round_number=join_round, stream=stream)
            )
        else:
            initial.append(stream)
    return initial, admissions


@dataclass(frozen=True)
class ObsOverheadResult:
    """Full observability + tracing vs obs-off walls on one scenario.

    ``ratio`` is ``wall_obs_s / wall_off_s`` (min-of-*repeats* walls on
    each side, so scheduler noise cannot manufacture a regression); the
    acceptance budget is ``ratio <= budget_ratio``.
    """

    streams: int
    blocks_per_stream: int
    repeats: int
    wall_off_s: float
    wall_obs_s: float
    ratio: float
    spans: int
    spans_dropped: int
    budget_ratio: float

    @property
    def within_budget(self) -> bool:
        """True when tracing overhead stays inside the budget."""
        return self.ratio <= self.budget_ratio

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the BENCH_PERF.json ``obs_overhead``)."""
        return {
            "streams": self.streams,
            "blocks_per_stream": self.blocks_per_stream,
            "repeats": self.repeats,
            "wall_off_s": self.wall_off_s,
            "wall_obs_s": self.wall_obs_s,
            "ratio": self.ratio,
            "spans": self.spans,
            "spans_dropped": self.spans_dropped,
            "budget_ratio": self.budget_ratio,
            "within_budget": self.within_budget,
        }


def run_obs_overhead_scenario(
    streams: int = 100,
    blocks_per_stream: int = 1000,
    repeats: int = 5,
    budget_ratio: float = 1.15,
    seed: int = 0,
) -> ObsOverheadResult:
    """Measure tracing overhead on the 100-session perf-sweep scenario.

    Runs the same :class:`ScaleScenario` with observability off and with
    the full sampled surface on (:meth:`Observability.for_scale`: span
    tracer, timeline, metrics, SLO monitor), *repeats* times each with
    the two sides interleaved — off, traced, off, traced, … — so clock
    drift (thermal throttling, background load) biases neither side,
    then compares best walls.  A fresh drive, stream set, and observer
    are built per repeat so neither side reuses warm state.
    """
    from repro.obs.observer import Observability

    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    scenario = ScaleScenario(
        name="obs-overhead",
        streams=streams,
        blocks_per_stream=blocks_per_stream,
        seed=seed,
    )

    def _one_wall(obs):
        drive = build_drive_config(scenario.drive)
        initial, admissions = build_streams(scenario, drive)
        service = RoundRobinService(
            drive, lambda _round, _n: scenario.k, obs=obs
        )
        start = _time.perf_counter()
        service.run(initial, admissions, max_rounds=10_000_000)
        return _time.perf_counter() - start

    wall_off = wall_obs = float("inf")
    obs = None
    for _ in range(repeats):
        wall_off = min(wall_off, _one_wall(None))
        # Spans are seed-deterministic, so any repeat's observer reports
        # the same counts; keep the last.
        obs = Observability.for_scale(seed=seed)
        wall_obs = min(wall_obs, _one_wall(obs))
    return ObsOverheadResult(
        streams=streams,
        blocks_per_stream=blocks_per_stream,
        repeats=repeats,
        wall_off_s=wall_off,
        wall_obs_s=wall_obs,
        ratio=wall_obs / max(wall_off, 1e-9),
        spans=len(obs.tracer),
        spans_dropped=obs.tracer.dropped_count,
        budget_ratio=budget_ratio,
    )


@dataclass
class ProfiledScaleRun:
    """A scale scenario run under the cost-attribution profiler.

    ``section`` is the deterministic artifact: scenario parameters plus
    the profiler's :meth:`~repro.obs.CostProfiler.summary_dict` — all
    modeled time and op counts, never wall clock, so its sorted JSON is
    byte-identical across runs at the same seed.  ``wall_time_s`` is
    carried separately for throughput reporting and deliberately kept
    out of ``section``.
    """

    scenario: ScaleScenario
    obs: object  #: the :class:`~repro.obs.Observability` used for the run
    wall_time_s: float
    rounds: int
    blocks_delivered: int
    misses: int

    @property
    def section(self) -> Dict[str, object]:
        """The BENCH_PERF.json ``profile`` section for this run."""
        summary = self.obs.profiler.summary_dict()
        return {
            "params": {
                "streams": self.scenario.streams,
                "blocks_per_stream": self.scenario.blocks_per_stream,
                "k": self.scenario.k,
                "buffer_capacity": self.scenario.buffer_capacity,
                "seed": self.scenario.seed,
                "drive": self.scenario.drive,
                "arrivals": self.scenario.arrivals,
            },
            "rounds": self.rounds,
            "blocks_delivered": self.blocks_delivered,
            "misses": self.misses,
            **summary,
        }


def run_profiled_scale_scenario(
    streams: int = 1000,
    blocks_per_stream: int = 1000,
    k: int = 4,
    buffer_capacity: int = 8,
    seed: int = 0,
    drive: str = "testbed",
    arrivals: str = "uniform",
    name: str = "profiled-scale",
) -> ProfiledScaleRun:
    """Run one scale point with per-phase cost attribution on.

    Uses :meth:`Observability.for_profiling` — metrics + profiler, span
    tracer and timeline off — so the attribution sees every access while
    perturbing the loop as little as possible.  The drive's
    ``profile_label`` is set to the drive-config name, so per-drive
    rollups read ``testbed``/``fast``/``table`` instead of the generic
    default.
    """
    from repro.obs.observer import Observability

    scenario = ScaleScenario(
        name=name,
        streams=streams,
        blocks_per_stream=blocks_per_stream,
        k=k,
        buffer_capacity=buffer_capacity,
        seed=seed,
        drive=drive,
        arrivals=arrivals,
    )
    mechanism = build_drive_config(scenario.drive)
    mechanism.profile_label = scenario.drive
    obs = Observability.for_profiling(seed=seed)
    mechanism.attach_observer(obs)
    initial, admissions = build_streams(scenario, mechanism)
    service = RoundRobinService(
        mechanism, lambda _round, _n: scenario.k, obs=obs
    )
    start = _time.perf_counter()
    metrics = service.run(initial, admissions, max_rounds=10_000_000)
    wall = _time.perf_counter() - start
    return ProfiledScaleRun(
        scenario=scenario,
        obs=obs,
        wall_time_s=wall,
        rounds=service.rounds_run,
        blocks_delivered=sum(
            m.blocks_delivered for m in metrics.values()
        ),
        misses=sum(m.misses for m in metrics.values()),
    )


def run_scale_scenario(scenario: ScaleScenario) -> ScaleResult:
    """Run one scenario to completion and score simulator throughput.

    Module-level (picklable) so :func:`repro.perf.sweep.run_sweep` can
    dispatch it to worker processes.
    """
    drive = build_drive_config(scenario.drive)
    initial, admissions = build_streams(scenario, drive)
    service = RoundRobinService(drive, lambda _round, _n: scenario.k)
    start = _time.perf_counter()
    metrics = service.run(
        initial, admissions, max_rounds=10_000_000
    )
    wall = _time.perf_counter() - start
    delivered = sum(m.blocks_delivered for m in metrics.values())
    misses = sum(m.misses for m in metrics.values())
    # Degenerate sub-microsecond walls only occur for trivial smoke
    # scenarios; clamp so rates stay finite.
    safe_wall = max(wall, 1e-9)
    return ScaleResult(
        name=scenario.name,
        streams=scenario.streams,
        blocks_per_stream=scenario.blocks_per_stream,
        drive=scenario.drive,
        arrivals=scenario.arrivals,
        seed=scenario.seed,
        wall_time_s=wall,
        rounds=service.rounds_run,
        blocks_delivered=delivered,
        misses=misses,
        blocks_per_second=delivered / safe_wall,
        streams_per_second=scenario.streams / safe_wall,
    )
