"""Server-scale perf scenario: the batched-vs-per-request comparison.

:mod:`repro.perf.scenarios` scores the raw §3.4 service loop; this
module scores the full :class:`repro.server.MediaServer` front end —
request grouping, batched admission, the block cache, the epoch loop —
on the ISSUE's acceptance workload (many concurrent viewers of few hot
strands) and times how fast the simulator serves it.  The result feeds
the ``server_compare`` record in ``BENCH_PERF.json``: the comparison
numbers prove the capability (cache + batching sustain strictly more
continuous streams than per-request admission on the same disk), the
wall-clock figures track the front end's own overhead trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from repro.server import run_serve_compare

__all__ = ["ServerCompareResult", "run_server_compare_scenario"]


@dataclass(frozen=True)
class ServerCompareResult:
    """One timed batched-vs-per-request comparison run."""

    compare: Dict
    wall_time_s: float

    @property
    def batched_continuous(self) -> int:
        return self.compare["batched"]["continuous"]

    @property
    def per_request_continuous(self) -> int:
        return self.compare["per_request"]["continuous"]

    @property
    def batched_wins(self) -> bool:
        """The acceptance predicate: strictly more continuous streams."""
        return self.batched_continuous > self.per_request_continuous

    @property
    def sessions_per_second(self) -> float:
        """Front-end throughput: sessions served per wall second."""
        total = 2 * self.compare["sessions"]
        if self.wall_time_s <= 0:
            return float("inf")
        return total / self.wall_time_s

    def to_dict(self) -> Dict:
        """JSON-ready record (the BENCH_PERF ``server_compare`` shape)."""
        return {
            **self.compare,
            "wall_time_s": self.wall_time_s,
            "sessions_per_second": self.sessions_per_second,
            "batched_wins": self.batched_wins,
        }


def run_server_compare_scenario(
    sessions: int = 50,
    strands: int = 5,
    seconds: float = 2.0,
    seed: int = 20260806,
) -> ServerCompareResult:
    """Time one full comparison (both servers, both hot waves)."""
    started = time.perf_counter()
    compare = run_serve_compare(
        sessions=sessions, strands=strands, seconds=seconds, seed=seed
    )
    return ServerCompareResult(
        compare=compare, wall_time_s=time.perf_counter() - started
    )
