"""Parallel sweep runner: fan scenario grids across worker processes.

A sweep is an embarrassingly parallel map of
:func:`~repro.perf.scenarios.run_scale_scenario` over a scenario list —
every scenario owns its drive and streams, so workers share nothing.
:func:`run_sweep` uses :class:`concurrent.futures.ProcessPoolExecutor`
when more than one worker is requested and falls back to in-process
execution when pools are unavailable (restricted sandboxes) or pointless
(one scenario, one worker).  Results always come back in scenario order,
so a sweep's output is deterministic regardless of worker scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.analysis.report import Table
from repro.errors import ParameterError
from repro.perf.scenarios import (
    ScaleResult,
    ScaleScenario,
    run_scale_scenario,
)

__all__ = ["SweepReport", "map_parallel", "run_sweep", "scale_grid"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def map_parallel(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: Optional[int] = None,
) -> Tuple[List[_ResultT], int, bool]:
    """Map a picklable *fn* over *items*, fanning across worker processes.

    The shared fan-out behind :func:`run_sweep` and the experiment-matrix
    runner (:mod:`repro.expt.runner`).  Returns ``(results, workers,
    parallel)`` with results in input order.  ``workers=None`` picks
    ``min(len(items), cpu_count)``; ``1`` forces in-process execution.
    Pool failures (sandboxed /dev/shm, fork limits) degrade to serial
    rather than failing the run.
    """
    if not items:
        raise ParameterError("map_parallel needs at least one item")
    if workers is not None and workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if workers is None:
        workers = min(len(items), os.cpu_count() or 1)
    workers = min(workers, len(items))
    parallel = workers > 1
    if parallel:
        try:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                results = list(executor.map(fn, items))
        except (OSError, PermissionError):
            parallel = False
            results = [fn(item) for item in items]
    else:
        results = [fn(item) for item in items]
    return results, workers, parallel


@dataclass(frozen=True)
class SweepReport:
    """All results of one sweep, in scenario order."""

    results: Tuple[ScaleResult, ...]
    workers: int
    parallel: bool
    wall_time_s: float

    @property
    def total_blocks(self) -> int:
        """Blocks delivered across every scenario."""
        return sum(r.blocks_delivered for r in self.results)

    @property
    def total_misses(self) -> int:
        """Deadline misses across every scenario."""
        return sum(r.misses for r in self.results)

    def table(self) -> Table:
        """Aligned text table of the sweep, one row per scenario."""
        table = Table(
            title=(
                f"perf sweep ({len(self.results)} scenarios, "
                f"{self.workers} worker(s), "
                f"{'parallel' if self.parallel else 'serial'})"
            ),
            columns=[
                "scenario", "streams", "blocks", "drive", "arrivals",
                "wall (s)", "blocks/s", "rounds", "misses",
            ],
        )
        for r in self.results:
            table.add_row(
                r.name, r.streams, r.blocks_per_stream, r.drive,
                r.arrivals, r.wall_time_s, r.blocks_per_second,
                r.rounds, r.misses,
            )
        return table

    def to_dict(self) -> dict:
        """JSON-ready mapping (the BENCH_PERF.json sweep shape)."""
        return {
            "workers": self.workers,
            "parallel": self.parallel,
            "wall_time_s": self.wall_time_s,
            "total_blocks": self.total_blocks,
            "total_misses": self.total_misses,
            "results": [r.to_dict() for r in self.results],
        }


def scale_grid(
    stream_counts: Sequence[int],
    blocks_per_stream: int,
    seeds: Sequence[int] = (0,),
    drives: Sequence[str] = ("testbed",),
    arrivals: Sequence[str] = ("uniform",),
    k: int = 4,
    buffer_capacity: int = 8,
) -> List[ScaleScenario]:
    """The cartesian scenario grid: seeds × arrivals × drives × sizes."""
    scenarios = []
    for drive in drives:
        for mode in arrivals:
            for seed in seeds:
                for streams in stream_counts:
                    scenarios.append(
                        ScaleScenario(
                            name=(
                                f"{drive}-{mode}-n{streams}"
                                f"-b{blocks_per_stream}-seed{seed}"
                            ),
                            streams=streams,
                            blocks_per_stream=blocks_per_stream,
                            k=k,
                            buffer_capacity=buffer_capacity,
                            seed=seed,
                            drive=drive,
                            arrivals=mode,
                        )
                    )
    return scenarios


def run_sweep(
    scenarios: Sequence[ScaleScenario],
    workers: Optional[int] = None,
) -> SweepReport:
    """Run every scenario; returns a :class:`SweepReport` in input order.

    Parameters
    ----------
    scenarios:
        The grid to run (see :func:`scale_grid`).
    workers:
        Worker processes.  ``None`` picks ``min(len(scenarios),
        cpu_count)``; ``1`` forces in-process execution (no pool, no
        pickling — handy under profilers and in tests).
    """
    import time as _time

    if not scenarios:
        raise ParameterError("run_sweep needs at least one scenario")
    start = _time.perf_counter()
    results, workers, parallel = map_parallel(
        run_scale_scenario, scenarios, workers
    )
    wall = _time.perf_counter() - start
    return SweepReport(
        results=tuple(results),
        workers=workers,
        parallel=parallel,
        wall_time_s=wall,
    )
