"""Cluster-scale perf scenario: the sharded-catalog acceptance run.

Scores the full :class:`repro.cluster.MediaCluster` stack — placement,
routing, per-node batched admission, chunked serving, handoff — on the
ROADMAP's north-star workload: 1000+ concurrent sessions over a sharded
Zipf catalog.  The result feeds the ``cluster_scale`` record in
``BENCH_PERF.json``: the measured session counts are reported alongside
the distributed-VoD analytical bounds (single-video, full-catalog,
max-flow demand satisfiability), and a deterministic node-kill run
reports what fraction of affected sessions handed off without a
continuity break.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from repro.cluster import (
    run_cluster_failover_scenario,
    run_cluster_scale_scenario,
)

__all__ = ["ClusterScaleResult", "run_cluster_scale_bench"]


@dataclass(frozen=True)
class ClusterScaleResult:
    """One timed cluster acceptance run (scale + failover + bounds)."""

    params: Dict
    scale: Dict
    bounds: Dict
    failover: Dict

    @property
    def all_continuous(self) -> bool:
        """The scale acceptance predicate: every admitted session clean."""
        return (
            self.scale["admitted"] > 0
            and self.scale["continuous"] == self.scale["admitted"]
        )

    @property
    def handoff_clean_ratio(self) -> float:
        """Clean fraction of the failover run's handoff decisions."""
        affected = self.failover["affected"]
        if not affected:
            return 1.0
        return self.failover["clean"] / affected

    @property
    def within_bounds(self) -> bool:
        """Measured concurrency never exceeds the analytical envelope."""
        return (
            self.scale["admitted"] <= self.bounds["full_catalog"]
            and self.bounds["demand_satisfiable"]
            <= self.bounds["demand_total"]
        )

    def to_dict(self) -> Dict:
        """JSON-ready record (the BENCH_PERF ``cluster_scale`` shape)."""
        return {
            **self.params,
            "scale": self.scale,
            "bounds": self.bounds,
            "failover": {
                **self.failover,
                "clean_ratio": self.handoff_clean_ratio,
            },
            "all_continuous": self.all_continuous,
            "within_bounds": self.within_bounds,
        }


def run_cluster_scale_bench(
    nodes: int = 20,
    sessions: int = 1000,
    titles: int = 40,
    seconds: float = 1.0,
    per_node_streams: int = 75,
    min_replicas: int = 2,
    seed: int = 20260806,
    failover_nodes: int = 4,
    failover_sessions: int = 32,
) -> ClusterScaleResult:
    """Time the scale run, then the node-kill failover run.

    The two runs share a seed but use independent clusters, so the
    failover numbers are not polluted by the scale run's cache state.
    """
    started = time.perf_counter()
    scale_run = run_cluster_scale_scenario(
        nodes=nodes,
        sessions=sessions,
        titles=titles,
        seconds=seconds,
        per_node_streams=per_node_streams,
        min_replicas=min_replicas,
        seed=seed,
    )
    scale_wall = time.perf_counter() - started
    result = scale_run.result
    scale = {
        "admitted": result.admitted,
        "continuous": result.continuous_sessions,
        "rejected": len(result.rejects),
        "blocks_delivered": sum(
            s.blocks_delivered for s in result.statuses
        ),
        "total_misses": result.total_misses,
        "wall_time_s": scale_wall,
        "sessions_per_second": (
            len(result.statuses) / scale_wall if scale_wall > 0
            else float("inf")
        ),
    }
    started = time.perf_counter()
    failover_run = run_cluster_failover_scenario(
        nodes=failover_nodes,
        sessions=failover_sessions,
        seed=seed,
    )
    failover_wall = time.perf_counter() - started
    fr = failover_run.result
    broken = sum(
        1 for record in fr.handoffs
        if record.to_node is None or not record.clean
    )
    failover = {
        "nodes": failover_nodes,
        "sessions": failover_sessions,
        "affected": len(fr.handoffs),
        "clean": fr.handoffs_clean,
        "continuity_breaks": broken,
        "continuous": fr.continuous_sessions,
        "admitted": fr.admitted,
        "wall_time_s": failover_wall,
    }
    return ClusterScaleResult(
        params={
            "nodes": nodes,
            "sessions": sessions,
            "titles": titles,
            "seconds": seconds,
            "per_node_streams": per_node_streams,
            "min_replicas": min_replicas,
            "seed": seed,
        },
        scale=scale,
        bounds=scale_run.bounds.to_dict(),
        failover=failover,
    )
