"""Scale-up performance harness: scenarios, sweeps, and throughput scoring.

The ROADMAP's north star is a server that runs "as fast as the hardware
allows" under heavy traffic.  This package is the measurement side of
that claim: :mod:`repro.perf.scenarios` builds synthetic §3.4 service
workloads at chosen scale points (streams × blocks per stream × drive
configuration), and :mod:`repro.perf.sweep` fans grids of those
scenarios across worker processes with :mod:`concurrent.futures`.

The package is simulation-throughput oriented — it times how fast the
*simulator* chews through service rounds (blocks/sec of wall clock), not
the simulated continuity outcome, which the scenario result carries
alongside for sanity checking.
"""

from repro.perf.cluster_scenarios import (
    ClusterScaleResult,
    run_cluster_scale_bench,
)
from repro.perf.scenarios import (
    DRIVE_CONFIGS,
    ObsOverheadResult,
    ProfiledScaleRun,
    ScaleResult,
    ScaleScenario,
    run_obs_overhead_scenario,
    run_profiled_scale_scenario,
    run_scale_scenario,
)
from repro.perf.server_scenarios import (
    ServerCompareResult,
    run_server_compare_scenario,
)
from repro.perf.sweep import SweepReport, run_sweep, scale_grid

__all__ = [
    "DRIVE_CONFIGS",
    "ClusterScaleResult",
    "ObsOverheadResult",
    "ProfiledScaleRun",
    "ScaleScenario",
    "ScaleResult",
    "ServerCompareResult",
    "run_cluster_scale_bench",
    "run_obs_overhead_scenario",
    "run_profiled_scale_scenario",
    "run_scale_scenario",
    "run_server_compare_scenario",
    "SweepReport",
    "run_sweep",
    "scale_grid",
]
