"""The multi-tenant media-server front end.

:class:`MediaServer` owns the storage-manager + rope-server + service
stack and serves client request queues end to end: session lifecycle
(open → play/pause/resume → stop) over simulated time, batched admission
with shared reads (:mod:`repro.server.batching`), a bounded LRU block
cache between the service loop and the drive
(:mod:`repro.disk.cache`), and graceful overload with typed reject
reasons.  Clients speak only the :mod:`repro.api` message types.

:mod:`repro.server.scenarios` holds the canonical seed-deterministic
workloads behind ``repro serve``, the golden-trace regressions, and the
batched-vs-per-request benchmark comparison.
"""

from repro.server.batching import BatchKey, RequestBatch, group_into_batches
from repro.server.media_server import MediaServer
from repro.server.scenarios import (
    ServerScenarioRun,
    build_media_server,
    run_serve_compare,
    run_server_fault_scenario,
    run_server_hot_scenario,
    run_server_steady_scenario,
)

__all__ = [
    "BatchKey",
    "MediaServer",
    "RequestBatch",
    "ServerScenarioRun",
    "build_media_server",
    "group_into_batches",
    "run_serve_compare",
    "run_server_fault_scenario",
    "run_server_hot_scenario",
    "run_server_steady_scenario",
]
