"""Canonical MediaServer scenarios: steady, hot-strand-batched, faulted.

These are the fixed, seed-deterministic workloads behind the
``repro serve`` CLI, the server golden-trace regressions, and the
server-scale benchmark comparison.  Everything is simulated, so a
scenario's :meth:`~repro.obs.Observability.snapshot` is byte-identical
across runs with the same arguments — that string *is* the golden file.

The headline scenario, :func:`run_server_hot_scenario`, is the ISSUE's
acceptance case: the testbed disk admits only ``n_max = 3`` concurrent
video streams per-request, yet the server sustains 50 concurrent
sessions over 5 hot strands — the warm-up epochs leave every hot block
resident, so the follow-up wave is batched and cache-admitted without
consuming any disk-round budget.  :func:`run_serve_compare` pits that
against per-request admission on the same disk for BENCH_PERF.json.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api import OpenSessionRequest, ServeResult
from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy
from repro.fs import MultimediaStorageManager
from repro.media.frames import frames_for_duration
from repro.obs.observer import Observability
from repro.rope import Media, MultimediaRopeServer
from repro.server.media_server import MediaServer

__all__ = [
    "ServerScenarioRun",
    "build_media_server",
    "run_server_steady_scenario",
    "run_server_hot_scenario",
    "run_server_fault_scenario",
    "run_serve_compare",
]

#: Seed shared with the obs scenarios and chaos tests.
DEFAULT_SEED = 20260806


@dataclass
class ServerScenarioRun:
    """A completed server scenario: the server plus its epoch results."""

    obs: Observability
    server: MediaServer
    results: List[ServeResult] = field(default_factory=list)
    rope_ids: List[str] = field(default_factory=list)

    @property
    def final(self) -> ServeResult:
        """The last (headline) epoch's result."""
        return self.results[-1]

    def snapshot(self, include_profile: bool = False) -> str:
        """The run's stable JSON snapshot (golden-file content)."""
        return self.obs.snapshot(include_profile=include_profile)


def _record_strands(
    mrs: MultimediaRopeServer,
    strands: int,
    seconds: float,
    clients: List[str],
    source: str,
) -> List[str]:
    """Record *strands* video ropes, playable by every listed client."""
    profile = TESTBED_1991
    rope_ids = []
    for i in range(strands):
        frames = frames_for_duration(
            profile.video, seconds, source=f"{source}-{i}"
        )
        request_id, rope_id = mrs.record(
            "librarian", frames=frames, play_access=tuple(clients)
        )
        mrs.stop(request_id)
        rope_ids.append(rope_id)
    return rope_ids


def build_media_server(
    obs: Optional[Observability] = None,
    cache_blocks: int = 512,
    batch_window: float = 0.25,
    requeue_limit: int = 0,
    recovery: Optional[RecoveryPolicy] = None,
) -> MediaServer:
    """A MediaServer over a fresh testbed drive and storage manager."""
    profile = TESTBED_1991
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
        obs=obs,
    )
    return MediaServer(
        MultimediaRopeServer(msm),
        batch_window=batch_window,
        cache_blocks=cache_blocks,
        requeue_limit=requeue_limit,
        recovery=recovery,
        obs=obs,
    )


def _hot_requests(
    rope_ids: List[str],
    sessions: int,
    seed: int,
    window: float,
) -> List[OpenSessionRequest]:
    """*sessions* opens spread round-robin over the hot ropes.

    Arrivals are seeded jitter inside half the batching window, so every
    strand's viewers land in one admission batch — deterministically.
    """
    rng = random.Random(seed)
    requests = []
    for i in range(sessions):
        rope_id = rope_ids[i % len(rope_ids)]
        requests.append(
            OpenSessionRequest(
                client_id=f"client-{i}",
                rope_id=rope_id,
                arrival=rng.uniform(0.0, window / 2.0),
                media=Media.VIDEO,
            )
        )
    return requests


def run_server_steady_scenario(
    seconds: float = 3.0,
    clients: int = 2,
    obs: Optional[Observability] = None,
) -> ServerScenarioRun:
    """Steady state: each client plays its own rope, no sharing.

    Every open is a batch of one and holds a real admission slot — the
    baseline snapshot a continuity-clean multi-tenant epoch produces.
    """
    if obs is None:
        obs = Observability(seed=DEFAULT_SEED)
        obs.enable_slos()
    server = build_media_server(obs)
    client_ids = [f"client-{i}" for i in range(clients)]
    rope_ids = _record_strands(
        server.mrs, clients, seconds, client_ids, "steady"
    )
    requests = [
        OpenSessionRequest(
            client_id=client_ids[i],
            rope_id=rope_ids[i],
            arrival=0.0,
            media=Media.VIDEO,
        )
        for i in range(clients)
    ]
    result = server.serve(requests)
    return ServerScenarioRun(
        obs=obs, server=server, results=[result], rope_ids=rope_ids
    )


def run_server_hot_scenario(
    sessions: int = 50,
    strands: int = 5,
    seconds: float = 2.0,
    seed: int = DEFAULT_SEED,
    warm: bool = True,
    cache_blocks: int = 512,
    batch_window: float = 0.25,
    obs: Optional[Observability] = None,
) -> ServerScenarioRun:
    """The acceptance scenario: many concurrent viewers of few strands.

    Warm-up epochs (one viewer per strand, run one at a time so the
    3-stream testbed disk admits each) leave every hot block resident in
    the cache.  The hot wave — *sessions* opens over *strands* ropes,
    arriving within the batching window — is then batched per strand and
    **cache-admitted**: zero controller slots, zero disk reads, every
    session continuous.
    """
    if obs is None:
        obs = Observability.for_scale(seed=seed)
    server = build_media_server(
        obs, cache_blocks=cache_blocks, batch_window=batch_window
    )
    client_ids = [f"client-{i}" for i in range(sessions)] + ["warmer"]
    rope_ids = _record_strands(
        server.mrs, strands, seconds, client_ids, "hot"
    )
    run = ServerScenarioRun(
        obs=obs, server=server, rope_ids=rope_ids
    )
    if warm and cache_blocks > 0:
        for rope_id in rope_ids:
            run.results.append(
                server.serve([
                    OpenSessionRequest(
                        client_id="warmer",
                        rope_id=rope_id,
                        arrival=0.0,
                        media=Media.VIDEO,
                    )
                ])
            )
    requests = _hot_requests(
        rope_ids, sessions, seed, server.batch_window
    )
    run.results.append(server.serve(requests))
    return run


def run_server_fault_scenario(
    seconds: float = 3.0,
    seed: int = DEFAULT_SEED,
    transient: int = 4,
    defects: int = 2,
    retry_budget: int = 2,
    obs: Optional[Observability] = None,
) -> ServerScenarioRun:
    """Fault injection through the cache: one batch over a faulted drive.

    A leader + follower batch plays a strand whose slots carry scripted
    transients and media defects.  The leader's recovered reads populate
    the cache (followers hit them); faulted reads never do — a defect
    skips on the leader *and* on the follower, because a failed read is
    never resident.  The snapshot pins the fault counters, the cache
    counters, and the audit trail together.
    """
    if obs is None:
        obs = Observability(seed=seed)
        obs.enable_slos()
    server = build_media_server(
        obs, recovery=RecoveryPolicy(retry_budget=retry_budget)
    )
    clients = ["client-0", "client-1"]
    rope_ids = _record_strands(server.mrs, 1, seconds, clients, "faulted")
    plan_slots = []
    rope = server.mrs.get_rope(rope_ids[0])
    for segment in rope.segments:
        track = segment.video
        strand = server.mrs.msm.get_strand(track.strand_id)
        plan_slots.extend(
            slot for slot in strand.slots() if slot is not None
        )
    plan = FaultPlan.random(
        seed=seed,
        slots=plan_slots,
        transient=transient,
        defects=defects,
    )
    server.mrs.msm.drive.attach_injector(FaultInjector(plan))
    requests = [
        OpenSessionRequest(
            client_id=clients[i],
            rope_id=rope_ids[0],
            arrival=0.01 * i,
            media=Media.VIDEO,
        )
        for i in range(2)
    ]
    result = server.serve(requests)
    return ServerScenarioRun(
        obs=obs, server=server, results=[result], rope_ids=rope_ids
    )


def run_serve_compare(
    sessions: int = 50,
    strands: int = 5,
    seconds: float = 2.0,
    seed: int = DEFAULT_SEED,
) -> Dict:
    """Batched+cached vs per-request admission on the same disk.

    Two identically-built servers get the identical hot wave; the
    batched one warms its cache first (the per-request one has no cache
    to warm).  Returns the BENCH_PERF.json ``server_compare`` record.
    """
    hot = run_server_hot_scenario(
        sessions=sessions, strands=strands, seconds=seconds, seed=seed
    )
    batched = hot.final
    baseline_server = build_media_server(
        obs=None, cache_blocks=0, batch_window=0.0
    )
    client_ids = [f"client-{i}" for i in range(sessions)]
    rope_ids = _record_strands(
        baseline_server.mrs, strands, seconds, client_ids, "hot"
    )
    requests = _hot_requests(
        rope_ids, sessions, seed, hot.server.batch_window
    )
    per_request = baseline_server.serve(requests)
    return {
        "sessions": sessions,
        "strands": strands,
        "seconds": seconds,
        "seed": seed,
        "batched": {
            "continuous": batched.continuous_sessions,
            "admitted": batched.admitted,
            "rejected": len(batched.rejects),
            "batches": batched.batches,
            "cache_hits": batched.cache_stats.get("hits", 0),
            "cache_misses": batched.cache_stats.get("misses", 0),
        },
        "per_request": {
            "continuous": per_request.continuous_sessions,
            "admitted": per_request.admitted,
            "rejected": len(per_request.rejects),
            "batches": per_request.batches,
        },
    }
