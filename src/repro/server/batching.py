"""Grouping near-simultaneous open requests into admission batches.

*Scalable Distributed Video-on-Demand* (Viennot et al.) batches
concurrent viewers of the same content so one physical stream feeds many
clients.  The reproduction's equivalent: open requests for the same
``(rope, start, length, media)`` interval whose arrivals fall within one
batching window are admitted as a single batch — the earliest arrival is
the **leader**, holds the batch's one admission slot, and performs the
batch's disk reads; every **follower** is serviced immediately behind
the leader in round order, so its identical reads hit the block cache
and consume no disk-round budget.

The grouping is pure and deterministic: arrival order (ties broken by
submission order) fully determines the batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import OpenSessionRequest
from repro.errors import ParameterError

__all__ = ["BatchKey", "RequestBatch", "group_into_batches"]


@dataclass(frozen=True)
class BatchKey:
    """The identity shared reads require: same rope, interval, media."""

    rope_id: str
    start: float
    length: Optional[float]
    media_value: str

    @classmethod
    def of(cls, request: OpenSessionRequest) -> "BatchKey":
        return cls(
            rope_id=request.rope_id,
            start=request.start,
            length=request.length,
            media_value=request.media.value,
        )


@dataclass(frozen=True)
class RequestBatch:
    """One admission batch: a leader plus zero or more followers.

    Attributes
    ----------
    key:
        The shared ``(rope, interval, media)`` identity.
    requests:
        Members in arrival order; ``requests[0]`` is the leader.
    admit_time:
        When the batch is decided — the leader's arrival (a batch does
        not wait for its window to close; followers arriving later join
        an already-admitted batch's reads).
    """

    key: BatchKey
    requests: Tuple[OpenSessionRequest, ...]
    admit_time: float

    @property
    def leader(self) -> OpenSessionRequest:
        """The member that holds the admission slot and reads the disk."""
        return self.requests[0]

    @property
    def followers(self) -> Tuple[OpenSessionRequest, ...]:
        """Members sharing the leader's reads."""
        return self.requests[1:]

    @property
    def size(self) -> int:
        """Total sessions the batch admits."""
        return len(self.requests)


def group_into_batches(
    requests: Sequence[OpenSessionRequest],
    window: float,
    enabled: bool = True,
    tracer=None,
) -> List[RequestBatch]:
    """Partition open requests into admission batches.

    Requests are processed in ``(arrival, submission index)`` order.  A
    request joins the open batch for its key when its arrival is within
    *window* seconds of that batch's leader; otherwise it starts a new
    batch.  With ``enabled=False`` (or ``window=0``) every request is
    its own batch — the per-request admission baseline.

    With a span *tracer*, each multi-member batch records one
    ``server.batch`` span covering leader arrival → last member arrival
    (the window the batch actually spanned).

    Returns batches ordered by admit time (leader arrival), ties broken
    by leader submission order.
    """
    if window < 0:
        raise ParameterError(f"window must be >= 0, got {window}")
    ordered = sorted(
        enumerate(requests), key=lambda pair: (pair[1].arrival, pair[0])
    )
    batches: List[List[OpenSessionRequest]] = []
    open_batch: Dict[BatchKey, int] = {}
    for _index, request in ordered:
        key = BatchKey.of(request)
        position = open_batch.get(key) if enabled and window > 0 else None
        if position is not None:
            leader = batches[position][0]
            if request.arrival - leader.arrival <= window:
                batches[position].append(request)
                continue
        batches.append([request])
        open_batch[key] = len(batches) - 1
    result = [
        RequestBatch(
            key=BatchKey.of(members[0]),
            requests=tuple(members),
            admit_time=members[0].arrival,
        )
        for members in batches
    ]
    if tracer is not None and tracer.enabled:
        for batch in result:
            span = tracer.start_span(
                "server.batch",
                batch.admit_time,
                attrs={"rope": batch.key.rope_id, "size": batch.size},
            )
            tracer.end_span(span, batch.requests[-1].arrival)
    return result
