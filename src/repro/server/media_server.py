"""The MediaServer: the file system's front door.

Everything below this module already existed — the storage manager, the
rope server, the admission controller, the round-robin service — but
callers had to hand-wire them.  :class:`MediaServer` owns the whole
stack and serves typed :mod:`repro.api` requests end to end:

* a simulated-time request queue with the §4.1 session lifecycle
  (open → play / pause / resume → stop) and arrival patterns supplied
  by the caller (e.g. from :mod:`repro.workload`);
* **batched admission**: near-simultaneous opens of the same rope
  interval are grouped (:mod:`repro.server.batching`); only the batch
  leader is admitted against the §3.4 inequality and reads the disk,
  while followers ride the block cache — so fifty viewers of five hot
  strands cost five admission slots, not fifty;
* a bounded LRU **block cache** (:mod:`repro.disk.cache`) between the
  service loop and the drive, with cache-aware admission: a session
  whose entire plan is resident is admitted without consuming any
  disk-round budget, its blocks pinned until it completes;
* **graceful overload**: refusals come back as typed
  :class:`~repro.api.RejectReason` values on the response, with an
  optional bounded re-queue, never as exceptions.

Every admission call the server makes crosses the MRS↔MSM boundary
through an :class:`~repro.service.rpc.RpcChannel`, so batch admissions
are logged with marshalled sizes exactly like the prototype's RPCs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import (
    OpenSessionRequest,
    OpenSessionResponse,
    PauseRequest,
    PlayRequest,
    RejectReason,
    ResumeRequest,
    ServeResult,
    SessionState,
    SessionStatus,
    StopRequest,
)
from repro.core.continuity import Architecture
from repro.disk.cache import BlockCache, CachedDrive
from repro.errors import (
    AccessDenied,
    AdmissionRejected,
    IntervalError,
    ParameterError,
    UnknownRopeError,
)
from repro.faults.recovery import RecoveryPolicy
from repro.obs.registry import BATCH_SIZE_BUCKETS
from repro.rope.server import MultimediaRopeServer, RequestState
from repro.server.batching import RequestBatch, group_into_batches
from repro.service.rpc import RpcChannel, stub_for
from repro.service.session import PlaybackSession
from repro.sim.trace import Tracer

__all__ = ["MediaServer"]


@dataclass
class _Session:
    """Server-side state of one client session."""

    session_id: str
    client_id: str
    rope_id: str
    request_id: Optional[str]
    state: SessionState
    arrival: float
    batch_leader: Optional[str] = None
    cache_admitted: bool = False
    admission_id: Optional[int] = None
    pinned: Tuple[int, ...] = ()
    requeues: int = 0
    blocks_delivered: int = 0
    misses: int = 0
    skips: int = 0
    startup_latency: float = 0.0
    reject: Optional[RejectReason] = None
    media: object = None
    followers: List[str] = field(default_factory=list)

    def status(self) -> SessionStatus:
        return SessionStatus(
            session_id=self.session_id,
            client_id=self.client_id,
            rope_id=self.rope_id,
            state=self.state,
            blocks_delivered=self.blocks_delivered,
            misses=self.misses,
            skips=self.skips,
            startup_latency=self.startup_latency,
            batch_leader=self.batch_leader,
            cache_admitted=self.cache_admitted,
            request_id=self.request_id,
        )


class MediaServer:
    """Multi-tenant front end over one rope server.

    Parameters
    ----------
    mrs:
        The rope server (and, through it, the storage manager, drive,
        and admission controller) this front end owns.
    architecture:
        Buffering architecture forwarded to the playback sessions.
    batch_window:
        Seconds within which opens of the same rope interval join one
        admission batch.  0 disables batching.
    cache_blocks:
        Block-cache capacity in slots; 0 disables the cache.  Batching
        *requires* the cache (shared reads are realized through it), so
        with the cache disabled every request is admitted individually
        regardless of ``batch_window``.
    cache_hit_time:
        Simulated seconds a cache hit costs (default 0.0 — no
        disk-round budget).
    requeue_limit:
        How many times an admission-rejected open is re-queued to the
        back of the admission queue before the refusal is final.
    recovery:
        Fault-recovery policy for the service loop.
    obs:
        Observability handle; defaults to the storage manager's.
    """

    def __init__(
        self,
        mrs: MultimediaRopeServer,
        architecture: Architecture = Architecture.PIPELINED,
        batch_window: float = 0.25,
        cache_blocks: int = 128,
        cache_hit_time: float = 0.0,
        requeue_limit: int = 0,
        recovery: Optional[RecoveryPolicy] = None,
        tracer: Optional[Tracer] = None,
        obs=None,
    ):
        if batch_window < 0:
            raise ParameterError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if cache_blocks < 0:
            raise ParameterError(
                f"cache_blocks must be >= 0, got {cache_blocks}"
            )
        if requeue_limit < 0:
            raise ParameterError(
                f"requeue_limit must be >= 0, got {requeue_limit}"
            )
        self.mrs = mrs
        self.architecture = architecture
        self.batch_window = batch_window
        self.requeue_limit = requeue_limit
        self.recovery = recovery
        self.tracer = tracer
        self.obs = obs if obs is not None else mrs.msm.obs
        #: Span tracer for causal request traces (None when unobserved).
        self._spans = None
        if self.obs is not None:
            if self.obs.tracer.enabled:
                self._spans = self.obs.tracer
            if tracer is not None:
                self.obs.attach_sim_tracer(tracer)
        self.channel = RpcChannel("mrs-msm", tracer=self._spans)
        #: Admission calls cross the MRS↔MSM boundary through this stub,
        #: so every batch admission is logged with marshalled sizes (the
        #: stub targets the MSM's public surface, whose admit/release
        #: continue the caller's span context server-side).
        self._admission = stub_for(mrs.msm, self.channel)
        if cache_blocks:
            self.cache: Optional[BlockCache] = BlockCache(cache_blocks)
            self._drive = CachedDrive(
                mrs.msm.drive, self.cache,
                hit_time=cache_hit_time, obs=self.obs,
            )
        else:
            self.cache = None
            self._drive = mrs.msm.drive
        #: Shared reads need the cache to exist; without it, batching
        #: would hand followers full-cost reads with no admission slot.
        self.batching = self.batch_window > 0 and self.cache is not None
        self._sessions: Dict[str, _Session] = {}
        self._session_ids = itertools.count(1)
        self._epoch_queue: List[str] = []
        self._batches_formed = 0
        if self.obs is not None:
            registry = self.obs.registry
            self._obs_opened = registry.counter("server.sessions_opened")
            self._obs_rejected = registry.counter("server.sessions_rejected")
            self._obs_batches = registry.counter("server.batches")
            self._obs_batch_size = registry.histogram(
                "server.batch_size", BATCH_SIZE_BUCKETS
            )
        else:
            self._obs_opened = None

    # -- span helpers -------------------------------------------------------------

    def _verb_span(
        self, name: str, session: _Session, time: float, status: str = "ok"
    ) -> None:
        """Record an instantaneous lifecycle-verb span on the session's
        trace (no-op when untraced or the session has no MRS request)."""
        tracer = self._spans
        if tracer is None or session.request_id is None:
            return
        parent = tracer.context_for(session.request_id)
        span = tracer.start_span(
            name, time, parent=parent, session=session.request_id
        )
        tracer.end_span(span, time, status=status)

    def _end_request_span(
        self, session: _Session, fallback_time: float, status: str
    ) -> None:
        """Close a session's root ``server.request`` span at the latest
        simulated time its trace reached, and drop the binding."""
        tracer = self._spans
        if tracer is None or session.request_id is None:
            return
        root = tracer.context_for(session.request_id)
        if root is None:
            return
        end = max(
            fallback_time, tracer.latest_end(root.trace_id, root.start)
        )
        tracer.end_span(root, end, status=status)
        tracer.unbind(session.request_id)

    # -- public API: lifecycle verbs --------------------------------------------

    def open(self, request: OpenSessionRequest) -> OpenSessionResponse:
        """Admit one session immediately (an unbatched open)."""
        responses = self._admit_batch(
            group_into_batches([request], window=0.0)[0],
            allow_requeue=False,
        )
        return responses[0]

    def play(self, request: PlayRequest) -> SessionStatus:
        """Schedule an OPEN session into the next service epoch."""
        session = self._session(request.session_id)
        if session.state is not SessionState.OPEN:
            raise ParameterError(
                f"cannot play session {session.session_id} in state "
                f"{session.state.value}"
            )
        session.state = SessionState.PLAYING
        self._epoch_queue.append(session.session_id)
        self._verb_span("server.play", session, request.arrival)
        return session.status()

    def pause(self, request: PauseRequest) -> SessionStatus:
        """PAUSE a session; destructive pauses release its resources."""
        session = self._session(request.session_id)
        if session.state not in (SessionState.OPEN, SessionState.PLAYING):
            raise ParameterError(
                f"cannot pause session {session.session_id} in state "
                f"{session.state.value}"
            )
        self._dequeue(session)
        if request.destructive:
            self._release_resources(session)
        session.state = SessionState.PAUSED
        self._verb_span(
            "server.pause", session, request.arrival,
            status="destructive" if request.destructive else "ok",
        )
        return session.status()

    def resume(self, request: ResumeRequest) -> SessionStatus:
        """RESUME a paused session; released resources are re-admitted."""
        session = self._session(request.session_id)
        if session.state is not SessionState.PAUSED:
            raise ParameterError(
                f"cannot resume session {session.session_id} in state "
                f"{session.state.value}"
            )
        if (
            session.admission_id is None
            and not session.cache_admitted
            and session.batch_leader == session.session_id
        ):
            # Destructive pause released the slot: re-run admission.
            descriptor = self.mrs.msm.descriptor_for_media(
                session.media.includes_video
            )
            admit_span = None
            tracer = self._spans
            if tracer is not None and session.request_id is not None:
                admit_span = tracer.start_span(
                    "server.admit",
                    request.arrival,
                    parent=tracer.context_for(session.request_id),
                    session=session.request_id,
                    attrs={"path": "resume"},
                )
            try:
                if admit_span is not None:
                    decision = self._admission.admit(
                        descriptor,
                        trace=admit_span.wire(request.arrival),
                    )
                else:
                    decision = self._admission.admit(descriptor)
            except AdmissionRejected as rejected:
                session.state = SessionState.REJECTED
                session.reject = self._classify(rejected)
                if tracer is not None:
                    tracer.end_span(
                        admit_span, request.arrival, status="rejected"
                    )
                self._record_reject(session.reject)
                self._end_request_span(
                    session, request.arrival, "rejected"
                )
                return session.status()
            if tracer is not None:
                tracer.end_span(admit_span, request.arrival)
            session.admission_id = decision.request_id
        session.state = SessionState.PLAYING
        self._epoch_queue.append(session.session_id)
        self._verb_span("server.resume", session, request.arrival)
        return session.status()

    def stop(self, request: StopRequest) -> SessionStatus:
        """STOP a session and release every resource it holds."""
        session = self._session(request.session_id)
        if session.state in (SessionState.STOPPED, SessionState.REJECTED):
            return session.status()
        self._verb_span("server.stop", session, request.arrival)
        self._dequeue(session)
        self._release_resources(session)
        self._finalize_request(session)
        session.state = SessionState.STOPPED
        self._end_request_span(session, request.arrival, "stopped")
        return session.status()

    def status(self, session_id: str) -> SessionStatus:
        """One session's current status."""
        return self._session(session_id).status()

    def sessions(self) -> List[SessionStatus]:
        """Every known session's status, in session-ID order."""
        return [
            self._sessions[sid].status() for sid in sorted(self._sessions)
        ]

    # -- public API: batched serve -----------------------------------------------

    def serve(self, requests: Sequence, max_rounds: int = 100_000) -> ServeResult:
        """Process a queue of typed requests and run one service epoch.

        Opens are grouped into admission batches; lifecycle verbs
        (addressed to sessions from this or earlier calls) are applied
        in arrival order after admission; then every session scheduled
        for playback is serviced to completion in one round-robin epoch.
        """
        opens: List[OpenSessionRequest] = []
        lifecycle: List[Tuple[float, int, object]] = []
        for index, request in enumerate(requests):
            if isinstance(request, OpenSessionRequest):
                opens.append(request)
            elif isinstance(
                request,
                (PlayRequest, PauseRequest, ResumeRequest, StopRequest),
            ):
                lifecycle.append((request.arrival, index, request))
            else:
                raise ParameterError(
                    f"serve() got {type(request).__name__}; expected a "
                    "repro.api request type"
                )
        touched: List[str] = []
        rejects: List[OpenSessionResponse] = []
        batches = group_into_batches(
            opens, self.batch_window, enabled=self.batching,
            tracer=self._spans,
        )
        queue: List[Tuple[RequestBatch, int]] = [(b, 0) for b in batches]
        position = 0
        while position < len(queue):
            batch, requeues = queue[position]
            position += 1
            responses = self._admit_batch(batch, requeues=requeues)
            if responses is None:
                # Rejected with re-queue budget left: back of the queue.
                queue.append((batch, requeues + 1))
                continue
            for response in responses:
                if response.session_id is not None:
                    touched.append(response.session_id)
                if not response.accepted:
                    rejects.append(response)
        dispatch = {
            PlayRequest: self.play,
            PauseRequest: self.pause,
            ResumeRequest: self.resume,
            StopRequest: self.stop,
        }
        for _arrival, _index, request in sorted(
            lifecycle, key=lambda item: (item[0], item[1])
        ):
            status = dispatch[type(request)](request)
            touched.append(status.session_id)
            if status.state is SessionState.REJECTED:
                rejects.append(
                    OpenSessionResponse(
                        session_id=status.session_id,
                        accepted=False,
                        reject=self._sessions[status.session_id].reject,
                        detail="re-admission on resume failed",
                    )
                )
        epoch = self._run_epoch(max_rounds)
        touched.extend(epoch["played"])
        seen = set()
        ordered = [
            sid for sid in sorted(touched)
            if not (sid in seen or seen.add(sid))
        ]
        return ServeResult(
            statuses=tuple(
                self._sessions[sid].status() for sid in ordered
            ),
            rejects=tuple(rejects),
            rounds=epoch["rounds"],
            k_used=epoch["k_used"],
            batches=self._count_batches(batches),
            cache_stats=(
                self.cache.stats.as_dict() if self.cache is not None else {}
            ),
            block_sequences=epoch["block_sequences"],
        )

    # -- admission ---------------------------------------------------------------

    def _admit_batch(
        self,
        batch: RequestBatch,
        requeues: int = 0,
        allow_requeue: bool = True,
    ) -> Optional[List[OpenSessionResponse]]:
        """Admit one batch; None means "re-queue and try again later"."""
        leader_req = batch.leader
        try:
            rope = self.mrs.get_rope(leader_req.rope_id)
        except UnknownRopeError:
            return self._reject_batch(
                batch, RejectReason.UNKNOWN_ROPE, requeues,
                f"no rope {leader_req.rope_id!r}",
            )
        denied: List[OpenSessionResponse] = []
        allowed: List[OpenSessionRequest] = []
        for member in batch.requests:
            try:
                rope.check_play(member.client_id)
            except AccessDenied as error:
                denied.append(
                    self._rejection(
                        member, RejectReason.ACCESS_DENIED, requeues,
                        str(error),
                    )
                )
            else:
                allowed.append(member)
        if not allowed:
            return denied
        leader_req = allowed[0]
        try:
            leader_rid = self.mrs.open_request(
                leader_req.client_id,
                leader_req.rope_id,
                start=leader_req.start,
                length=leader_req.length,
                media=leader_req.media,
            )
        except IntervalError as error:
            return denied + [
                self._rejection(
                    member, RejectReason.EMPTY_INTERVAL, requeues, str(error)
                )
                for member in allowed
            ]
        tracer = self._spans
        leader_span = None
        if tracer is not None:
            leader_span = tracer.start_span(
                "server.request",
                batch.admit_time,
                session=leader_rid,
                attrs={
                    "rope": leader_req.rope_id,
                    "client": leader_req.client_id,
                    "batch_size": len(allowed),
                },
            )
            if leader_span is not None:
                tracer.bind(leader_rid, leader_span)
        playback = self._playback_session()
        slots = tuple(
            f.slot
            for f in playback.fetch_sequence(leader_rid)
            if f.slot is not None
        )
        cache_admitted = False
        admission_id: Optional[int] = None
        if (
            self.cache is not None
            and self.cache.resident_fraction(slots) >= 1.0
            and self.cache.pin(set(slots))
        ):
            # Every block is already resident: the session consumes no
            # disk-round budget, so it bypasses the §3.4 controller.
            cache_admitted = True
            self._audit_cache_admit(batch, slots)
            if leader_span is not None:
                admit_span = tracer.start_span(
                    "server.admit",
                    batch.admit_time,
                    parent=leader_span,
                    attrs={"path": "cache", "slots": len(set(slots))},
                )
                tracer.end_span(admit_span, batch.admit_time)
        else:
            descriptor = self.mrs.msm.descriptor_for_media(
                leader_req.media.includes_video
            )
            admit_span = None
            if leader_span is not None:
                admit_span = tracer.start_span(
                    "server.admit",
                    batch.admit_time,
                    parent=leader_span,
                    attrs={"path": "controller"},
                )
            try:
                if admit_span is not None:
                    decision = self._admission.admit(
                        descriptor,
                        trace=admit_span.wire(batch.admit_time),
                    )
                else:
                    decision = self._admission.admit(descriptor)
            except AdmissionRejected as rejected:
                self.mrs.stop(leader_rid)
                will_requeue = (
                    allow_requeue and requeues < self.requeue_limit
                )
                if tracer is not None:
                    status = "requeued" if will_requeue else "rejected"
                    tracer.end_span(
                        admit_span, batch.admit_time, status=status
                    )
                    tracer.end_span(
                        leader_span, batch.admit_time, status=status
                    )
                    tracer.unbind(leader_rid)
                if will_requeue:
                    return None
                reason = (
                    RejectReason.QUEUE_FULL
                    if requeues
                    else self._classify(rejected)
                )
                return denied + [
                    self._rejection(member, reason, requeues, str(rejected))
                    for member in allowed
                ]
            if tracer is not None:
                tracer.end_span(admit_span, batch.admit_time)
            admission_id = decision.request_id
            request = self.mrs.get_request(leader_rid)
            request.admission_id = admission_id
        leader = self._create_session(
            leader_req, leader_rid, batch.admit_time, requeues
        )
        leader.batch_leader = leader.session_id
        leader.cache_admitted = cache_admitted
        leader.admission_id = admission_id
        leader.pinned = tuple(sorted(set(slots))) if cache_admitted else ()
        members = [leader]
        for follower_req in allowed[1:]:
            follower_rid = self.mrs.open_request(
                follower_req.client_id,
                follower_req.rope_id,
                start=follower_req.start,
                length=follower_req.length,
                media=follower_req.media,
            )
            follower = self._create_session(
                follower_req, follower_rid, batch.admit_time, requeues
            )
            follower.batch_leader = leader.session_id
            follower.cache_admitted = cache_admitted
            members.append(follower)
            leader.followers.append(follower.session_id)
            if tracer is not None:
                follower_span = tracer.start_span(
                    "server.request",
                    batch.admit_time,
                    session=follower_rid,
                    attrs={
                        "rope": follower_req.rope_id,
                        "client": follower_req.client_id,
                        "batch_leader": leader.session_id,
                    },
                )
                if follower_span is not None:
                    tracer.bind(follower_rid, follower_span)
        self._batches_formed += 1
        self._audit_batch(batch, leader, cache_admitted, requeues)
        if self._obs_opened is not None:
            self._obs_opened.inc(len(members))
            self._obs_batches.inc()
            self._obs_batch_size.observe(len(members))
        responses = list(denied)
        for member, request in zip(members, allowed):
            if request.auto_play:
                member.state = SessionState.PLAYING
                self._epoch_queue.append(member.session_id)
            responses.append(
                OpenSessionResponse(
                    session_id=member.session_id,
                    accepted=True,
                    batch_leader=leader.session_id,
                    cache_admitted=cache_admitted,
                    requeues=requeues,
                    detail=f"request {member.request_id}",
                )
            )
        return responses

    def _create_session(
        self,
        request: OpenSessionRequest,
        request_id: str,
        admit_time: float,
        requeues: int,
    ) -> _Session:
        session = _Session(
            session_id=f"C{next(self._session_ids):04d}",
            client_id=request.client_id,
            rope_id=request.rope_id,
            request_id=request_id,
            state=SessionState.OPEN,
            arrival=admit_time,
            requeues=requeues,
            media=request.media,
        )
        self._sessions[session.session_id] = session
        return session

    def _rejection(
        self,
        request: OpenSessionRequest,
        reason: RejectReason,
        requeues: int,
        detail: str,
    ) -> OpenSessionResponse:
        session = _Session(
            session_id=f"C{next(self._session_ids):04d}",
            client_id=request.client_id,
            rope_id=request.rope_id,
            request_id=None,
            state=SessionState.REJECTED,
            arrival=request.arrival,
            requeues=requeues,
            media=request.media,
            reject=reason,
        )
        self._sessions[session.session_id] = session
        self._record_reject(reason)
        if self._spans is not None:
            span = self._spans.start_span(
                "server.request",
                request.arrival,
                session=session.session_id,
                attrs={"rope": request.rope_id, "reject": reason.value},
            )
            self._spans.end_span(span, request.arrival, status="rejected")
        return OpenSessionResponse(
            session_id=session.session_id,
            accepted=False,
            reject=reason,
            requeues=requeues,
            detail=detail,
        )

    def _record_reject(self, reason: RejectReason) -> None:
        """Count a refusal, both in aggregate and by typed reason (the
        per-reason counters feed the reject-rate SLOs)."""
        if self._obs_opened is not None:
            self._obs_rejected.inc()
            self.obs.registry.counter(
                f"server.reject.{reason.value}"
            ).inc()

    def _reject_batch(
        self,
        batch: RequestBatch,
        reason: RejectReason,
        requeues: int,
        detail: str,
    ) -> List[OpenSessionResponse]:
        return [
            self._rejection(member, reason, requeues, detail)
            for member in batch.requests
        ]

    @staticmethod
    def _classify(rejected: AdmissionRejected) -> RejectReason:
        """Map a controller refusal to its typed reason."""
        if "operating bound" in str(rejected):
            return RejectReason.K_BOUND
        return RejectReason.CAPACITY

    def _audit_batch(
        self,
        batch: RequestBatch,
        leader: _Session,
        cache_admitted: bool,
        requeues: int,
    ) -> None:
        """Log the batch verdict: one physical stream serves the batch."""
        if self.obs is None:
            return
        self.obs.audit.record(
            "admit",
            f"batch(rope={batch.key.rope_id},n={batch.size})",
            "physical_streams <= batch_size",
            {
                "batch_size": float(batch.size),
                "physical_streams": 1.0,
                "cache_admitted": float(cache_admitted),
                "requeues": float(requeues),
            },
            satisfied=True,
            detail=(
                f"leader {leader.session_id} "
                f"({'cache' if cache_admitted else 'controller'}-admitted), "
                f"{batch.size - 1} follower(s) share its reads"
            ),
        )

    def _audit_cache_admit(
        self, batch: RequestBatch, slots: Tuple[int, ...]
    ) -> None:
        """Log a cache admission: residency stands in for disk budget."""
        if self.obs is None:
            return
        planned = len(set(slots))
        self.obs.audit.record(
            "admit",
            f"cache(rope={batch.key.rope_id})",
            "resident >= planned",
            {"resident": float(planned), "planned": float(planned)},
            satisfied=True,
            detail=f"{planned} slot(s) resident and pinned; "
            "no disk-round budget consumed",
        )

    # -- epoch execution -----------------------------------------------------------

    def _playback_session(self) -> PlaybackSession:
        return PlaybackSession(
            self.mrs,
            architecture=self.architecture,
            tracer=self.tracer,
            recovery=self.recovery,
            obs=self.obs,
        )

    def _round_period(self, k: int) -> float:
        """Rough simulated seconds per service round at blocks-per-round *k*."""
        descriptor = self.mrs.msm.descriptor_for_media(True)
        return max(k, 1) * descriptor.block_playback

    def _run_epoch(self, max_rounds: int) -> Dict:
        """Service every scheduled session to completion."""
        queue = [
            sid for sid in self._epoch_queue
            if self._sessions[sid].state is SessionState.PLAYING
        ]
        self._epoch_queue = []
        if not queue:
            return {
                "played": [], "rounds": 0, "k_used": 0,
                "block_sequences": {},
            }
        playback = self._playback_session()
        k = max(1, self.mrs.msm.admission.current_k)
        period = self._round_period(k)
        t0 = min(self._sessions[sid].arrival for sid in queue)
        initial: List[str] = []
        later: List[Tuple[int, str]] = []
        sequences: Dict[str, Tuple[Optional[int], ...]] = {}
        for sid in queue:
            session = self._sessions[sid]
            sequences[sid] = tuple(
                f.slot for f in playback.fetch_sequence(session.request_id)
            )
            round_number = int((session.arrival - t0) / period)
            if round_number <= 0:
                initial.append(session.request_id)
            else:
                later.append((round_number, session.request_id))
        # The leader of each batch precedes its followers in queue order,
        # so within a round the leader's miss populates the cache and
        # every follower's identical read hits it.
        original_drive = self.mrs.msm.drive
        self.mrs.msm.drive = self._drive
        try:
            result = playback.run(
                initial, k=k, admissions=later,
            )
        finally:
            self.mrs.msm.drive = original_drive
        for sid in queue:
            session = self._sessions[sid]
            metrics = result.metrics[session.request_id]
            session.blocks_delivered = metrics.blocks_delivered
            session.misses = metrics.misses
            session.skips = metrics.skips
            session.startup_latency = metrics.startup_latency
            session.state = SessionState.COMPLETED
            self._release_resources(session)
            self._finalize_request(session)
            self._end_request_span(
                session,
                session.arrival,
                "ok" if not (session.misses or session.skips)
                else "degraded",
            )
        return {
            "played": queue,
            "rounds": result.rounds,
            "k_used": result.k_used,
            "block_sequences": sequences,
        }

    # -- resource management ---------------------------------------------------------

    def _session(self, session_id: str) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ParameterError(
                f"unknown session {session_id!r}"
            ) from None

    def _dequeue(self, session: _Session) -> None:
        self._epoch_queue = [
            sid for sid in self._epoch_queue if sid != session.session_id
        ]

    def _release_resources(self, session: _Session) -> None:
        """Release the admission slot and cache pins a session holds.

        Releases cross the MRS↔MSM boundary through the RPC channel like
        admissions do; the MRS request is then stopped with nothing left
        to release.
        """
        if session.admission_id is not None:
            root = None
            if self._spans is not None and session.request_id is not None:
                root = self._spans.context_for(session.request_id)
            if root is not None:
                release_time = self._spans.latest_end(
                    root.trace_id, root.start
                )
                self._admission.release(
                    session.admission_id,
                    trace=root.wire(release_time),
                )
            else:
                self._admission.release(session.admission_id)
            session.admission_id = None
            if session.request_id is not None:
                self.mrs.get_request(session.request_id).admission_id = None
        if session.pinned and self.cache is not None:
            self.cache.unpin(session.pinned)
            session.pinned = ()

    def _finalize_request(self, session: _Session) -> None:
        """Mark the session's MRS request STOPPED (terminal states only)."""
        if session.request_id is None:
            return
        request = self.mrs.get_request(session.request_id)
        if request.state is not RequestState.STOPPED:
            self.mrs.stop(session.request_id)

    def _count_batches(self, batches: Sequence[RequestBatch]) -> int:
        return len(batches)
