"""Multi-client request mixes for admission-control experiments (§3.4).

A *mix* describes the population of concurrent requests a server faces:
how many clients, what media each plays, and when each arrives (in service
rounds).  The E2/E3/E12 experiments sweep mixes against the analytic
capacity bound n_max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ParameterError

__all__ = ["ClientSpec", "RequestMix", "uniform_mix", "staggered_mix"]


@dataclass(frozen=True)
class ClientSpec:
    """One client in a mix."""

    name: str
    arrival_round: int
    duration: float
    video: bool = True
    audio: bool = False

    def __post_init__(self) -> None:
        if self.arrival_round < 0:
            raise ParameterError(
                f"arrival_round must be >= 0, got {self.arrival_round}"
            )
        if self.duration <= 0:
            raise ParameterError(
                f"duration must be positive, got {self.duration}"
            )
        if not (self.video or self.audio):
            raise ParameterError("a client needs at least one medium")


@dataclass(frozen=True)
class RequestMix:
    """A named population of clients."""

    name: str
    clients: Tuple[ClientSpec, ...]

    @property
    def size(self) -> int:
        """Number of clients."""
        return len(self.clients)

    def initial(self) -> List[ClientSpec]:
        """Clients present from round 0."""
        return [c for c in self.clients if c.arrival_round == 0]

    def later(self) -> List[ClientSpec]:
        """Clients arriving after round 0, in arrival order."""
        return sorted(
            (c for c in self.clients if c.arrival_round > 0),
            key=lambda c: c.arrival_round,
        )


def uniform_mix(
    count: int, duration: float, name: str = "uniform"
) -> RequestMix:
    """*count* identical video clients all present at round 0."""
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    clients = tuple(
        ClientSpec(name=f"client{i}", arrival_round=0, duration=duration)
        for i in range(count)
    )
    return RequestMix(name=name, clients=clients)


def staggered_mix(
    count: int,
    duration: float,
    rounds_between: int,
    name: str = "staggered",
) -> RequestMix:
    """Clients arriving one every *rounds_between* rounds (E3's shape)."""
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    if rounds_between < 1:
        raise ParameterError(
            f"rounds_between must be >= 1, got {rounds_between}"
        )
    clients = tuple(
        ClientSpec(
            name=f"client{i}",
            arrival_round=i * rounds_between,
            duration=duration,
        )
        for i in range(count)
    )
    return RequestMix(name=name, clients=clients)
