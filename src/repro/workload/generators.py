"""Seeded workload generators for experiments and tests.

Everything the experiments feed the file system comes from here: video
recordings of controlled lengths, speech-like audio with controlled
silence ratios, editing scripts, and multi-client request mixes.  Every
generator takes an explicit seed or :class:`random.Random` so experiment
runs are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import HardwareProfile
from repro.errors import ParameterError
from repro.media.audio import AudioChunk, generate_talk_spurts
from repro.media.codec import Codec
from repro.media.frames import Frame, frames_for_duration

__all__ = [
    "Recording",
    "make_recording",
    "make_recordings",
    "EditScript",
    "random_edit_script",
]


@dataclass(frozen=True)
class Recording:
    """One captured clip: frames and/or audio chunks."""

    name: str
    duration: float
    frames: Tuple[Frame, ...]
    chunks: Tuple[AudioChunk, ...]

    @property
    def has_video(self) -> bool:
        """True when the clip carries video."""
        return bool(self.frames)

    @property
    def has_audio(self) -> bool:
        """True when the clip carries audio."""
        return bool(self.chunks)


def make_recording(
    profile: HardwareProfile,
    name: str,
    duration: float,
    rng: random.Random,
    video: bool = True,
    audio: bool = True,
    silence_ratio: float = 0.35,
    codec: Optional[Codec] = None,
) -> Recording:
    """Generate one clip of *duration* seconds."""
    if duration <= 0:
        raise ParameterError(f"duration must be positive, got {duration}")
    frames: Tuple[Frame, ...] = ()
    chunks: Tuple[AudioChunk, ...] = ()
    if video:
        frames = tuple(
            frames_for_duration(profile.video, duration, codec, source=name)
        )
    if audio:
        chunks = tuple(
            generate_talk_spurts(profile.audio, duration, silence_ratio, rng)
        )
    if not frames and not chunks:
        raise ParameterError("a recording needs at least one medium")
    return Recording(
        name=name, duration=duration, frames=frames, chunks=chunks
    )


def make_recordings(
    profile: HardwareProfile,
    count: int,
    duration: float,
    seed: int,
    video: bool = True,
    audio: bool = False,
    silence_ratio: float = 0.35,
) -> List[Recording]:
    """Generate *count* same-length clips with distinct sources."""
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    return [
        make_recording(
            profile,
            name=f"clip{i}",
            duration=duration,
            rng=rng,
            video=video,
            audio=audio,
            silence_ratio=silence_ratio,
        )
        for i in range(count)
    ]


@dataclass(frozen=True)
class EditScript:
    """A reproducible sequence of editing operations.

    Each step is ``(operation, args)`` where operation is one of
    ``insert``, ``delete``, ``substring``, ``concate`` and args are the
    operation-specific positional parameters in seconds.
    """

    steps: Tuple[Tuple[str, Tuple[float, ...]], ...]


def random_edit_script(
    rope_duration: float,
    clip_duration: float,
    operation_count: int,
    rng: random.Random,
) -> EditScript:
    """A churn script for fragmentation/seam experiments.

    Operations alternate inserts (of intervals from a donor clip) and
    deletes, keeping positions legal for a rope that starts at
    *rope_duration* seconds and is tracked through each operation.
    """
    if operation_count < 1:
        raise ParameterError(
            f"operation_count must be >= 1, got {operation_count}"
        )
    steps: List[Tuple[str, Tuple[float, ...]]] = []
    current = rope_duration
    for i in range(operation_count):
        if i % 2 == 0:
            # Insert 1-3 seconds of donor material somewhere inside.
            length = min(clip_duration, rng.uniform(1.0, 3.0))
            position = rng.uniform(0.0, max(0.1, current - 0.1))
            start = rng.uniform(0.0, max(0.0, clip_duration - length))
            steps.append(("insert", (position, start, length)))
            current += length
        else:
            # Delete up to 2 seconds, never emptying the rope.
            length = min(rng.uniform(0.5, 2.0), current / 2.0)
            start = rng.uniform(0.0, current - length)
            steps.append(("delete", (start, length)))
            current -= length
    return EditScript(steps=tuple(steps))
