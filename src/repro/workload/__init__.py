"""Seeded workload generation: recordings, edit scripts, client mixes."""

from repro.workload.generators import (
    EditScript,
    Recording,
    make_recording,
    make_recordings,
    random_edit_script,
)
from repro.workload.mixes import (
    ClientSpec,
    RequestMix,
    staggered_mix,
    uniform_mix,
)

__all__ = [
    "ClientSpec",
    "EditScript",
    "Recording",
    "RequestMix",
    "make_recording",
    "make_recordings",
    "random_edit_script",
    "staggered_mix",
    "uniform_mix",
]
