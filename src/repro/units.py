"""Unit conventions and conversion helpers.

The paper (Table 1) expresses every quantity in one of a handful of units:

* data sizes in **bits** (``s_vf`` bits/frame, ``s_as`` bits/sample),
* rates in **per-second** units (``R_va`` samples/s, ``R_vr`` frames/s,
  ``R_dr`` and ``R_vd`` bits/s),
* times in **seconds** (the scattering parameter ``l_ds``, seek times).

This library follows the same convention everywhere: *sizes are bits,
times are seconds, rates are per-second*, carried as plain ``float``/``int``
values.  The helpers below exist so call sites can state the unit they were
given (``kilobytes(4)``) instead of embedding conversion arithmetic, and so
report code can render values back into human-readable magnitudes.
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "KILO",
    "MEGA",
    "GIGA",
    "KIBI",
    "MEBI",
    "GIBI",
    "bits",
    "bytes_",
    "kilobytes",
    "megabytes",
    "gigabytes",
    "kilobits",
    "megabits",
    "gigabits",
    "bits_to_bytes",
    "bits_per_second",
    "kilobytes_per_second",
    "megabytes_per_second",
    "megabits_per_second",
    "gigabits_per_second",
    "milliseconds",
    "microseconds",
    "seconds",
    "minutes",
    "format_bits",
    "format_rate",
    "format_seconds",
]

#: Number of bits in one byte.
BITS_PER_BYTE = 8

#: Decimal (SI) multipliers, used for rates and disk-vendor sizes.
KILO = 10 ** 3
MEGA = 10 ** 6
GIGA = 10 ** 9

#: Binary multipliers, used for memory-style block sizes (4 KB block = 4 KiB).
KIBI = 2 ** 10
MEBI = 2 ** 20
GIBI = 2 ** 30


# ---------------------------------------------------------------------------
# Sizes (canonical unit: bits)
# ---------------------------------------------------------------------------

def bits(value: float) -> float:
    """Identity helper: *value* is already in bits."""
    return float(value)


def bytes_(value: float) -> float:
    """Convert bytes to bits."""
    return float(value) * BITS_PER_BYTE


def kilobytes(value: float) -> float:
    """Convert binary kilobytes (KiB, as in a '4 Kbyte disk block') to bits."""
    return float(value) * KIBI * BITS_PER_BYTE


def megabytes(value: float) -> float:
    """Convert binary megabytes (MiB) to bits."""
    return float(value) * MEBI * BITS_PER_BYTE


def gigabytes(value: float) -> float:
    """Convert binary gigabytes (GiB) to bits."""
    return float(value) * GIBI * BITS_PER_BYTE


def kilobits(value: float) -> float:
    """Convert decimal kilobits to bits."""
    return float(value) * KILO


def megabits(value: float) -> float:
    """Convert decimal megabits to bits."""
    return float(value) * MEGA


def gigabits(value: float) -> float:
    """Convert decimal gigabits to bits."""
    return float(value) * GIGA


def bits_to_bytes(value: float) -> float:
    """Convert a size in bits back to bytes."""
    return float(value) / BITS_PER_BYTE


# ---------------------------------------------------------------------------
# Rates (canonical unit: bits/second)
# ---------------------------------------------------------------------------

def bits_per_second(value: float) -> float:
    """Identity helper: *value* is already in bits/second."""
    return float(value)


def kilobytes_per_second(value: float) -> float:
    """Convert KiB/s to bits/s (the paper's 8 KByte/s audio digitizer)."""
    return kilobytes(value)


def megabytes_per_second(value: float) -> float:
    """Convert MiB/s to bits/s."""
    return megabytes(value)


def megabits_per_second(value: float) -> float:
    """Convert Mbit/s to bits/s."""
    return megabits(value)


def gigabits_per_second(value: float) -> float:
    """Convert Gbit/s to bits/s (HDTV's 2.5 Gbit/s requirement)."""
    return gigabits(value)


# ---------------------------------------------------------------------------
# Times (canonical unit: seconds)
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Identity helper: *value* is already in seconds."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds (seek times are quoted in ms)."""
    return float(value) / KILO


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) / MEGA


def minutes(value: float) -> float:
    """Convert minutes to seconds (strand lengths are quoted in minutes)."""
    return float(value) * 60.0


# ---------------------------------------------------------------------------
# Human-readable formatting (for reports and benchmark output)
# ---------------------------------------------------------------------------

def format_bits(value: float) -> str:
    """Render a bit count with an appropriate decimal magnitude suffix."""
    magnitude = abs(value)
    if magnitude >= GIGA:
        return f"{value / GIGA:.2f} Gbit"
    if magnitude >= MEGA:
        return f"{value / MEGA:.2f} Mbit"
    if magnitude >= KILO:
        return f"{value / KILO:.2f} Kbit"
    return f"{value:.0f} bit"


def format_rate(value: float) -> str:
    """Render a bits/second rate with an appropriate magnitude suffix."""
    return format_bits(value) + "/s"


def format_seconds(value: float) -> str:
    """Render a duration, auto-selecting s / ms / µs."""
    magnitude = abs(value)
    if magnitude >= 1.0 or value == 0:
        return f"{value:.3f} s"
    if magnitude >= 1e-3:
        return f"{value * KILO:.3f} ms"
    return f"{value * MEGA:.1f} µs"
