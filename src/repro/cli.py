"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``profiles``
    List the built-in hardware profiles with their derived §2 figures.
``policy [--profile NAME]``
    Show the §3.3.4 placement policies an MSM derives on a profile.
``experiments [ID ...]``
    Run experiment drivers (e1..e21; default: all) and print their
    tables — the figure-regeneration harness without pytest.
``demo``
    The quickstart flow: derive policy, record a clip, play it back.
``obs-report [--faults] [--cluster] [--top N] [--json]``
    Run a canonical observed scenario and print its observability
    report (or raw snapshot JSON) — see :mod:`repro.obs.scenarios`;
    with ``--cluster``, the federated cluster smoke scenario with
    per-node metrics and profile rollups.
``profile [--preset NAME] [--top N] [--smoke] [--json] [--trace-out F]``
    Run a scenario under the deterministic cost-attribution profiler
    (:class:`repro.obs.CostProfiler`) and print the ranked cost
    centers; presets ``steady`` / ``server-hot`` / ``cluster`` /
    ``scale`` (the n×1000-block service loop).  ``--json`` emits the
    byte-stable profile section, ``--trace-out`` a Perfetto document
    with per-phase counter tracks.
``perf-sweep [--streams N ...] [--blocks N] [--workers N] [--json]``
    Fan a grid of service-loop scale scenarios across worker processes
    and print simulator-throughput scores — see :mod:`repro.perf`.
``serve [--sessions N] [--strands N] [--compare] [--smoke] [--json]``
    Run a multi-tenant :class:`repro.server.MediaServer` scenario —
    batched admission + block cache — and print the outcome; with
    ``--compare``, pit it against per-request admission on the same
    disk (see :mod:`repro.server.scenarios`).
``trace-export [--scenario NAME] [--out FILE] [--json]``
    Run a canonical scenario with span tracing on and emit its causal
    trace as Chrome trace-event JSON, loadable in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing`` — see
    :meth:`repro.obs.SpanTracer.to_chrome_trace`.
``cluster [--failover] [--smoke] [--nodes N] [--sessions N] [--json]``
    Run a sharded :class:`repro.cluster.MediaCluster` scenario — the
    1000-session scale run with its analytical VoD bounds, or (with
    ``--failover``) a deterministic node-kill run with inter-node
    session handoff (see :mod:`repro.cluster.scenarios`).
``expt {run,gate,diff}``
    The experiment-matrix harness (:mod:`repro.expt`): ``run`` expands a
    declarative config (``--smoke`` for the builtin CI matrix) and
    writes a structured results directory; ``gate`` compares a results
    manifest against the committed baseline with per-metric tolerances
    and exits non-zero on regression; ``diff`` prints per-cell metric
    deltas between two manifests.

Every scenario-running subcommand (``demo``, ``obs-report``,
``profile``, ``perf-sweep``, ``serve``, ``cluster``,
``trace-export``) accepts
``--seed`` and ``--json`` via one shared option builder, and the
``expt`` subcommands take the ``--json`` half of the same builder, so
scripted callers can rely on the same determinism and output contract
everywhere.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro import analysis
from repro.config import PROFILES, get_profile
from repro.core import continuity, video_block_model
from repro.core.continuity import Architecture
from repro.disk import build_drive
from repro.errors import InfeasibleError
from repro.fs import MultimediaStorageManager
from repro.media import frames_for_duration, generate_talk_spurts
from repro.rope import Media, MultimediaRopeServer
from repro.service import PlaybackSession
from repro.units import format_rate, format_seconds

__all__ = ["main", "EXPERIMENTS"]

#: Experiment registry: id -> driver returning an object with ``.table``.
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "e1": analysis.e1_architectures,
    "e2": analysis.e2_k_vs_n,
    "e3": analysis.e3_transition,
    "e4": analysis.e4_allocation,
    "e5": analysis.e5_buffering,
    "e6": analysis.e6_mixed_media,
    "e7": analysis.e7_hdtv,
    "e8": analysis.e8_edit_copy,
    "e9": analysis.e9_rope_ops,
    "e10": analysis.e10_silence,
    "e11": analysis.e11_symbols,
    "e12": analysis.e12_prototype,
    "e13": analysis.e13_variable_rate,
    "e14": analysis.e14_scan_ordering,
    "e15": analysis.e15_reorganization,
    "e16": analysis.e16_variable_speed,
    "e17": analysis.e17_striping,
    "e18": analysis.e18_antijitter,
    "e19": analysis.e19_unified_server,
    "e20": analysis.e20_heterogeneous_k,
    "e21": analysis.e21_record_and_play,
}


def _add_common_options(
    parser: argparse.ArgumentParser,
    seed_default: int = 20260806,
    seed_help: str = "deterministic scenario seed",
    json_help: str = "print machine-readable JSON instead of the report",
    include_seed: bool = True,
) -> argparse.ArgumentParser:
    """Attach the ``--seed`` / ``--json`` pair every scenario command has.

    One shared builder keeps the contract uniform: the same flag names,
    types, and defaults on ``demo``, ``obs-report``, ``perf-sweep``,
    ``serve``, ``trace-export``, ``cluster``, and the ``expt``
    subcommands — tests introspect the parser to enforce this.
    Commands whose determinism comes from a manifest rather than a
    seed (``expt run/gate/diff``) pass ``include_seed=False`` and keep
    only the ``--json`` half of the contract.
    """
    if include_seed:
        parser.add_argument("--seed", type=int, default=seed_default,
                            help=seed_help)
    parser.add_argument("--json", action="store_true", help=json_help)
    return parser


def _cmd_profiles(_args: argparse.Namespace) -> int:
    for name in sorted(PROFILES):
        profile = PROFILES[name]
        print(f"{name}")
        print(f"  {profile.description}")
        print(
            f"  video: {profile.video.frame_rate:g} fps x "
            f"{profile.video.frame_size:g} bits/frame "
            f"({format_rate(profile.video.bit_rate)})"
        )
        print(
            f"  audio: {profile.audio.sample_rate:g} Hz x "
            f"{profile.audio.sample_size:g} bits/sample"
        )
        print(
            f"  disk: {format_rate(profile.disk.transfer_rate)}, seek "
            f"max/avg/track = "
            f"{format_seconds(profile.disk.seek_max)} / "
            f"{format_seconds(profile.disk.seek_avg)} / "
            f"{format_seconds(profile.disk.seek_track)}, "
            f"{profile.disk.heads} head(s)"
        )
    return 0


def _cmd_policy(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    try:
        drive = build_drive()
        msm = MultimediaStorageManager(
            drive, profile.video, profile.audio,
            profile.video_device, profile.audio_device,
        )
    except InfeasibleError as error:
        print(f"no feasible policy on this profile: {error}")
        return 1
    for label, policy in (
        ("video", msm.policies.video),
        ("audio", msm.policies.audio),
        ("mixed", msm.policies.mixed),
    ):
        print(
            f"{label}: granularity {policy.granularity} units/block, "
            f"block {policy.block_bits:g} bits, scattering "
            f"[{format_seconds(policy.scattering_lower)}, "
            f"{format_seconds(policy.scattering_upper)}]"
        )
    block = video_block_model(profile.video, msm.policies.video.granularity)
    for architecture in (
        Architecture.SEQUENTIAL, Architecture.PIPELINED
    ):
        try:
            bound = continuity.max_scattering(
                architecture, block, msm.disk_params, profile.video_device
            )
            print(
                f"{architecture.value} l_ds bound: {format_seconds(bound)}"
            )
        except InfeasibleError:
            print(f"{architecture.value}: infeasible at any scattering")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    ids = args.ids or sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(EXPERIMENTS, key=lambda e: int(e[1:])))}"
        )
        return 2
    for experiment_id in ids:
        result = EXPERIMENTS[experiment_id]()
        print(result.table.render())
        extra = getattr(result, "gc_behaviour", None)
        if extra is not None:
            print()
            print(extra.render())
        print()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive, profile.video, profile.audio,
        profile.video_device, profile.audio_device,
    )
    mrs = MultimediaRopeServer(msm)
    rng = random.Random(args.seed)
    frames = frames_for_duration(profile.video, args.seconds, source="demo")
    chunks = generate_talk_spurts(profile.audio, args.seconds, 0.35, rng)
    request_id, rope_id = mrs.record("demo", frames=frames, chunks=chunks)
    mrs.stop(request_id)
    play_id = mrs.play("demo", rope_id, media=Media.AUDIO_VISUAL)
    result = PlaybackSession(mrs).run([play_id])
    metrics = result.metrics[play_id]
    if args.json:
        import json

        print(json.dumps({
            "rope_id": rope_id,
            "duration": mrs.get_rope(rope_id).duration,
            "blocks_delivered": metrics.blocks_delivered,
            "misses": metrics.misses,
            "startup_latency": metrics.startup_latency,
            "continuous": metrics.continuous,
        }, indent=2, sort_keys=True))
    else:
        print(
            f"recorded rope {rope_id}: "
            f"{mrs.get_rope(rope_id).duration:.2f} s"
        )
        print(
            f"played {metrics.blocks_delivered} blocks, misses "
            f"{metrics.misses}, startup "
            f"{format_seconds(metrics.startup_latency)}"
        )
    return 0 if metrics.continuous else 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.scenarios import run_fault_scenario, run_steady_scenario

    if args.cluster:
        from repro.cluster import (
            cluster_observability,
            run_cluster_smoke_scenario,
        )

        obs = cluster_observability(args.seed, profile=True)
        run = run_cluster_smoke_scenario(seed=args.seed, obs=obs)
        if args.json:
            print(run.snapshot(include_profile=args.profile_timers))
        else:
            print(run.obs.report(top=args.top))
        result = run.result
        return 0 if result.continuous_sessions == result.admitted else 1
    if args.faults:
        run = run_fault_scenario(
            seconds=args.seconds,
            seed=args.seed,
            head_failure_at_op=args.head_failure_at_op,
        )
    else:
        run = run_steady_scenario(seconds=args.seconds)
    if args.json:
        print(run.snapshot(include_profile=args.profile_timers))
    else:
        print(run.obs.report(top=args.top))
        print()
        print(run.result.summary())
    return 0 if run.result.total_misses == run.result.total_skips else 1


def _profile_scenario(args: argparse.Namespace):
    """Run the requested ``repro profile`` preset; returns (obs, section)."""
    from repro.obs.observer import Observability

    if args.preset == "scale":
        from repro.perf import run_profiled_scale_scenario

        if args.smoke:
            run = run_profiled_scale_scenario(
                streams=4, blocks_per_stream=16, seed=args.seed,
                name="profile-smoke",
            )
        else:
            run = run_profiled_scale_scenario(
                streams=args.streams,
                blocks_per_stream=args.blocks,
                seed=args.seed,
            )
        return run.obs, run.section
    if args.preset == "steady":
        from repro.obs.scenarios import run_steady_scenario

        obs = Observability(seed=args.seed)
        obs.enable_slos()
        obs.enable_profiler()
        run_steady_scenario(obs=obs)
    elif args.preset == "server-hot":
        from repro.server.scenarios import run_server_hot_scenario

        obs = Observability.for_scale(seed=args.seed)
        obs.enable_profiler()
        run_server_hot_scenario(seed=args.seed, obs=obs)
    else:  # cluster
        from repro.cluster import (
            cluster_observability,
            run_cluster_smoke_scenario,
        )

        obs = cluster_observability(args.seed, profile=True)
        run_cluster_smoke_scenario(seed=args.seed, obs=obs)
    return obs, obs.profiler.summary_dict()


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    obs, section = _profile_scenario(args)
    profiler = obs.profiler
    share_sum = sum(
        entry["share"] for entry in section["phases"].values()
    )
    # Attribution must account for the whole run: shares sum to 1
    # whenever anything was recorded.
    healthy = (
        profiler.total_ops > 0 and abs(share_sum - 1.0) <= 1e-9
    )
    if args.trace_out:
        document = obs.to_chrome_trace()
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    elif args.smoke:
        hottest = profiler.top_cost_centers(1)[0]
        print(
            f"profile smoke: {profiler.total_ops} ops, "
            f"{profiler.total_cost:.6f}s modeled, hottest "
            f"{hottest['phase']} ({hottest['share']:.1%}), share sum "
            f"{share_sum:.12f}"
        )
    else:
        print(f"profile: {args.preset} (seed {args.seed})")
        print(
            f"  total: {profiler.total_ops} ops, "
            f"{profiler.total_cost:.6f}s modeled"
        )
        print("  cost centers:")
        for entry in profiler.top_cost_centers(args.top):
            print(
                f"    {entry['phase']:<20} ops={entry['ops']:<10} "
                f"cost={entry['cost_s']:.6f}s share={entry['share']:.4f}"
            )
        for drive, phases in sorted(section["per_drive"].items()):
            cost = sum(stat["cost_s"] for stat in phases.values())
            ops = sum(stat["ops"] for stat in phases.values())
            print(
                f"  drive {drive:<14} ops={ops:<10} cost={cost:.6f}s"
            )
        for node_id in obs.node_ids():
            summary = profiler.node_summary(node_id)
            if not summary:
                continue
            cost = sum(stat["cost_s"] for stat in summary.values())
            ops = sum(stat["ops"] for stat in summary.values())
            print(
                f"  node {node_id:<15} ops={ops:<10} cost={cost:.6f}s"
            )
        if args.trace_out:
            print(f"  wrote {args.trace_out}")
    return 0 if healthy else 1


def _cmd_perf_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.perf import run_sweep, scale_grid

    grid = scale_grid(
        stream_counts=args.streams,
        blocks_per_stream=args.blocks,
        seeds=args.seeds if args.seeds is not None else [args.seed],
        drives=args.drives,
        arrivals=args.arrivals,
        k=args.k,
        buffer_capacity=args.buffer,
    )
    report = run_sweep(grid, workers=args.workers)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.table().render())
        print(
            f"\n{report.total_blocks} blocks in "
            f"{format_seconds(report.wall_time_s)} wall"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.server import run_serve_compare, run_server_hot_scenario

    if args.compare:
        record = run_serve_compare(
            sessions=args.sessions,
            strands=args.strands,
            seconds=args.seconds,
            seed=args.seed,
        )
        if args.json:
            print(json.dumps(record, indent=2, sort_keys=True))
        else:
            batched, per_request = record["batched"], record["per_request"]
            print(
                f"{record['sessions']} sessions over "
                f"{record['strands']} hot strands:"
            )
            print(
                f"  batched + cached : {batched['continuous']} continuous "
                f"({batched['batches']} batches, "
                f"{batched['cache_hits']} cache hits)"
            )
            print(
                f"  per-request      : {per_request['continuous']} "
                f"continuous ({per_request['rejected']} rejected)"
            )
        won = (
            record["batched"]["continuous"]
            > record["per_request"]["continuous"]
        )
        return 0 if won else 1
    if args.smoke:
        run = run_server_hot_scenario(
            sessions=6, strands=2, seconds=1.0, seed=args.seed
        )
        print(run.snapshot())
        return 0 if run.final.total_misses == 0 else 1
    run = run_server_hot_scenario(
        sessions=args.sessions,
        strands=args.strands,
        seconds=args.seconds,
        seed=args.seed,
        cache_blocks=0 if args.no_cache else args.cache_blocks,
        batch_window=0.0 if args.no_batch else args.batch_window,
    )
    result = run.final
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"served {len(result.statuses)} sessions over "
            f"{len(run.rope_ids)} strands: {result.admitted} admitted, "
            f"{result.continuous_sessions} continuous, "
            f"{len(result.rejects)} rejected"
        )
        print(
            f"  {result.batches} batches, {result.rounds} rounds at "
            f"k={result.k_used}, cache {result.cache_stats or 'off'}"
        )
    return 0 if result.total_misses == 0 else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import (
        run_cluster_failover_scenario,
        run_cluster_scale_scenario,
        run_cluster_smoke_scenario,
    )

    if args.smoke:
        run = run_cluster_smoke_scenario(seed=args.seed)
        result = run.result
        clean = (
            result.continuous_sessions == result.admitted
            and result.handoffs_clean == len(result.handoffs)
            and not result.rejects
        )
        print(run.snapshot())
        return 0 if clean else 1
    def resolved(value, scale_default, failover_default):
        if value is not None:
            return value
        return failover_default if args.failover else scale_default

    sizing = dict(
        nodes=resolved(args.nodes, 20, 4),
        sessions=resolved(args.sessions, 1000, 32),
        titles=resolved(args.titles, 40, 8),
        seconds=resolved(args.seconds, 1.0, 2.0),
        per_node_streams=resolved(args.per_node_streams, 75, 24),
        min_replicas=args.replicas,
        chunks=resolved(args.chunks, 1, 4),
        seed=args.seed,
    )
    if args.failover:
        run = run_cluster_failover_scenario(
            kill_node=args.kill_node,
            kill_chunk=args.kill_chunk,
            **sizing,
        )
    else:
        run = run_cluster_scale_scenario(**sizing)
    result = run.result
    ratio = result.handoff_clean_ratio
    if args.json:
        print(json.dumps({
            "summary": {
                "nodes": len(result.nodes),
                "sessions": len(result.statuses),
                "admitted": result.admitted,
                "continuous": result.continuous_sessions,
                "rejected": len(result.rejects),
                "handoffs": len(result.handoffs),
                "handoffs_clean": result.handoffs_clean,
                "handoff_clean_ratio": ratio,
                "chunks": result.chunks,
            },
            "bounds": run.bounds.to_dict(),
            "placement": {
                title: list(nodes) for title, nodes in result.placement
            },
            "nodes": [node.to_dict() for node in result.nodes],
        }, indent=2, sort_keys=True))
    else:
        print(
            f"cluster of {len(result.nodes)} nodes served "
            f"{len(result.statuses)} sessions: {result.admitted} "
            f"admitted, {result.continuous_sessions} continuous, "
            f"{len(result.rejects)} rejected"
        )
        if result.handoffs:
            print(
                f"  handoffs: {result.handoffs_clean}/"
                f"{len(result.handoffs)} clean "
                f"(ratio {ratio:.2f})"
            )
        bounds = run.bounds
        print(
            f"  bounds: full-catalog {bounds.full_catalog} streams, "
            f"demand {bounds.demand_satisfiable}/{bounds.demand_total} "
            f"satisfiable, storage "
            f"{'ok' if bounds.storage_ok else 'infeasible'}"
        )
    healthy = result.continuous_sessions == result.admitted
    if result.handoffs:
        healthy = healthy and (ratio or 0.0) > 0.9
    return 0 if healthy else 1


def _cmd_trace_export(args: argparse.Namespace) -> int:
    import json

    from repro.obs.observer import Observability

    if args.scenario in ("steady", "fault"):
        from repro.obs.scenarios import (
            run_fault_scenario,
            run_steady_scenario,
        )

        obs = Observability(seed=args.seed)
        obs.enable_slos()
        if args.profile:
            obs.enable_profiler()
        if args.scenario == "steady":
            run_steady_scenario(obs=obs)
        else:
            run_fault_scenario(seed=args.seed, obs=obs)
    elif args.scenario == "server-steady":
        from repro.server.scenarios import run_server_steady_scenario

        obs = Observability(seed=args.seed)
        obs.enable_slos()
        if args.profile:
            obs.enable_profiler()
        run_server_steady_scenario(obs=obs)
    else:
        from repro.server.scenarios import run_server_hot_scenario

        obs = Observability.for_scale(seed=args.seed)
        if args.profile:
            obs.enable_profiler()
        run_server_hot_scenario(seed=args.seed, obs=obs)
    document = obs.to_chrome_trace()
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
    if args.json:
        sys.stdout.write(payload)
    else:
        other = document["otherData"]
        print(
            f"{args.scenario}: {other['spans']} spans "
            f"({other['dropped']} dropped), "
            f"{len(document['traceEvents'])} trace events"
        )
        if args.out:
            print(f"wrote {args.out}")
        else:
            print(
                "pass --out FILE (or --json) and load the file in "
                "https://ui.perfetto.dev or chrome://tracing"
            )
    return 0


#: Default artifact locations for the ``expt`` command (cwd-relative,
#: i.e. the repo root in the documented workflow).
EXPT_BASELINE_PATH = "tests/baselines/matrix_baseline.json"
EXPT_RESULTS_ROOT = "results"


def _load_manifest_file(path: str) -> dict:
    import json

    from repro.expt import validate_manifest

    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            f"expt: manifest {path!r} not found; run "
            "`repro expt run --smoke` first (or pass --manifest)"
        ) from None
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"expt: manifest {path!r} is not valid JSON: {error}"
        ) from None
    return validate_manifest(manifest)


def _cmd_expt_run(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.expt import load_config, run_matrix, smoke_config
    from repro.expt.runner import stable_json, write_results

    if args.smoke and args.config:
        raise SystemExit("expt run: pass either --smoke or --config")
    if args.config:
        config = load_config(args.config)
    elif args.smoke:
        config = smoke_config()
    else:
        raise SystemExit(
            "expt run: pass --smoke or --config experiments/<name>.json"
        )
    report = run_matrix(config, workers=args.workers)
    out_dir = args.out or str(Path(EXPT_RESULTS_ROOT) / config.name)
    manifest_path = write_results(report, out_dir)
    if args.regen_baseline:
        baseline_path = Path(args.baseline)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(stable_json(report.manifest_dict()))
    if args.json:
        print(json.dumps(
            report.manifest_dict(), indent=2, sort_keys=True
        ))
    else:
        print(
            f"expt run '{config.name}' ({config.hash[:19]}…): "
            f"{len(report.cells)} cells, {report.workers} worker(s), "
            f"{'parallel' if report.parallel else 'serial'}, "
            f"{format_seconds(report.wall_time_s)} wall"
        )
        for cell in report.cells:
            metrics = {
                key: value
                for key, value in cell.metrics.items()
                if value is not None
            }
            print(f"  {cell.cell_id}: {metrics}")
        print(f"wrote {manifest_path}")
        if args.regen_baseline:
            print(f"regenerated baseline {args.baseline}")
    return 0


def _cmd_expt_gate(args: argparse.Namespace) -> int:
    import json

    from repro.expt import gate_manifest

    manifest = _load_manifest_file(args.manifest)
    try:
        baseline = _load_manifest_file(args.baseline)
    except SystemExit:
        raise SystemExit(
            f"expt: baseline {args.baseline!r} not found or invalid; "
            "regenerate with `repro expt run --smoke --regen-baseline`"
        ) from None
    report = gate_manifest(
        manifest, baseline, allow_extra_cells=args.allow_extra_cells
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        if args.verbose:
            print(report.table().render())
        print(report.render())
    return 0 if report.passed else 1


def _cmd_expt_diff(args: argparse.Namespace) -> int:
    import json

    from repro.expt import diff_manifests

    manifest = _load_manifest_file(args.manifest)
    baseline = _load_manifest_file(args.baseline)
    delta = diff_manifests(manifest, baseline)
    if args.json:
        print(json.dumps(delta, indent=2, sort_keys=True))
        return 0
    print(
        f"expt diff: '{delta['manifest']}' vs baseline "
        f"'{delta['baseline']}'"
    )
    for cell_id, entry in delta["cells"].items():
        if entry["status"] != "common":
            print(f"  {cell_id}: {entry['status']}")
            continue
        for metric, change in entry["deltas"].items():
            relative = change.get("relative")
            suffix = (
                f" ({relative * 100:+.1f}%)" if relative is not None
                else ""
            )
            print(
                f"  {cell_id} :: {metric}: "
                f"{change['baseline']} -> {change['observed']}{suffix}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Rangan & Vin, 'Designing File Systems for "
            "Digital Video and Audio' (SOSP 1991)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "profiles", help="list hardware profiles"
    ).set_defaults(handler=_cmd_profiles)

    policy = commands.add_parser(
        "policy", help="show derived placement policies"
    )
    policy.add_argument(
        "--profile", default="testbed-1991", help="profile name"
    )
    policy.set_defaults(handler=_cmd_policy)

    experiments = commands.add_parser(
        "experiments", help="run experiment drivers and print tables"
    )
    experiments.add_argument(
        "ids", nargs="*",
        help="experiment ids (e1..e21); default all",
    )
    experiments.set_defaults(handler=_cmd_experiments)

    demo = commands.add_parser("demo", help="record and play a demo clip")
    demo.add_argument("--profile", default="testbed-1991")
    demo.add_argument("--seconds", type=float, default=10.0)
    _add_common_options(
        demo, seed_default=2026, seed_help="talk-spurt generator seed",
        json_help="print the demo outcome as JSON",
    )
    demo.set_defaults(handler=_cmd_demo)

    obs_report = commands.add_parser(
        "obs-report",
        help="run an observed scenario and print its telemetry",
    )
    obs_report.add_argument(
        "--faults", action="store_true",
        help="run the fault-injection scenario instead of steady state",
    )
    obs_report.add_argument(
        "--profile-timers", action="store_true",
        help="include wall-clock timer data (not byte-stable) in --json",
    )
    obs_report.add_argument("--seconds", type=float, default=4.0)
    _add_common_options(
        obs_report, seed_help="fault-plan seed (with --faults)",
        json_help="print the raw snapshot JSON instead of the report",
    )
    obs_report.add_argument(
        "--head-failure-at-op", type=int, default=None,
        help="inject a head failure at this disk-op index (with --faults)",
    )
    obs_report.add_argument(
        "--cluster", action="store_true",
        help="report the federated cluster smoke scenario (per-node "
             "metrics and profile) instead of the single-drive runs",
    )
    obs_report.add_argument(
        "--top", type=int, default=5,
        help="profiler cost centers to list in the report (default: 5)",
    )
    obs_report.set_defaults(handler=_cmd_obs_report)

    profile = commands.add_parser(
        "profile",
        help="run a scenario under the cost-attribution profiler",
    )
    profile.add_argument(
        "--preset", default="scale",
        choices=["steady", "server-hot", "cluster", "scale"],
        help="which canonical scenario to profile (default: scale)",
    )
    profile.add_argument(
        "--streams", type=int, default=1000,
        help="concurrent streams for the scale preset (default: 1000)",
    )
    profile.add_argument(
        "--blocks", type=int, default=1000,
        help="blocks per stream for the scale preset (default: 1000)",
    )
    profile.add_argument(
        "--top", type=int, default=5,
        help="cost centers to list (default: 5)",
    )
    profile.add_argument(
        "--smoke", action="store_true",
        help="run a tiny fixed scale point and verify attribution health",
    )
    profile.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also write a Perfetto-loadable trace with profile.<phase> "
             "counter tracks to FILE",
    )
    _add_common_options(
        profile, seed_help="scenario seed (attribution derives from it)",
        json_help="print the profile section as stable JSON",
    )
    profile.set_defaults(handler=_cmd_profile)

    perf_sweep = commands.add_parser(
        "perf-sweep",
        help="run the parallel service-loop scale sweep",
    )
    perf_sweep.add_argument(
        "--streams", type=int, nargs="+", default=[10, 100],
        help="concurrent-stream counts to sweep (default: 10 100)",
    )
    perf_sweep.add_argument(
        "--blocks", type=int, default=200,
        help="blocks per stream (default: 200)",
    )
    perf_sweep.add_argument("--k", type=int, default=4)
    perf_sweep.add_argument(
        "--buffer", type=int, default=8,
        help="display buffers per stream (default: 8)",
    )
    perf_sweep.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="placement seeds to sweep (default: the --seed value)",
    )
    perf_sweep.add_argument(
        "--drives", nargs="+", default=["testbed"],
        choices=["testbed", "fast", "table"],
        help="drive configs to sweep (default: testbed)",
    )
    perf_sweep.add_argument(
        "--arrivals", nargs="+", default=["uniform"],
        choices=["uniform", "staggered"],
        help="arrival mixes to sweep (default: uniform)",
    )
    perf_sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: min(scenarios, cpu count))",
    )
    _add_common_options(
        perf_sweep, seed_default=0,
        seed_help="placement seed (when --seeds is not given)",
        json_help="print the sweep report as JSON",
    )
    perf_sweep.set_defaults(handler=_cmd_perf_sweep)

    serve = commands.add_parser(
        "serve",
        help="serve a multi-tenant MediaServer scenario",
    )
    serve.add_argument(
        "--sessions", type=int, default=50,
        help="concurrent open requests in the hot wave (default: 50)",
    )
    serve.add_argument(
        "--strands", type=int, default=5,
        help="distinct hot ropes the sessions share (default: 5)",
    )
    serve.add_argument(
        "--seconds", type=float, default=2.0,
        help="length of each recorded strand (default: 2.0)",
    )
    serve.add_argument(
        "--cache-blocks", type=int, default=512,
        help="block-cache capacity (default: 512)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.25,
        help="admission batching window, seconds (default: 0.25)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the block cache (implies per-request reads)",
    )
    serve.add_argument(
        "--no-batch", action="store_true",
        help="disable batched admission (every request its own batch)",
    )
    serve.add_argument(
        "--compare", action="store_true",
        help="run batched+cached vs per-request and print both",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="run a small fixed scenario and emit its obs snapshot",
    )
    _add_common_options(
        serve, seed_help="arrival-jitter seed",
        json_help="print the serve result as JSON",
    )
    serve.set_defaults(handler=_cmd_serve)

    cluster = commands.add_parser(
        "cluster",
        help="serve a sharded multi-node cluster scenario",
    )
    cluster.add_argument(
        "--nodes", type=int, default=None,
        help="MediaServer nodes in the cluster "
             "(default: 20 scale / 4 failover)",
    )
    cluster.add_argument(
        "--sessions", type=int, default=None,
        help="concurrent open requests (default: 1000 scale / 32 failover)",
    )
    cluster.add_argument(
        "--titles", type=int, default=None,
        help="catalog titles, Zipf-popular (default: 40 scale / 8 failover)",
    )
    cluster.add_argument(
        "--seconds", type=float, default=None,
        help="length of each recorded title "
             "(default: 1.0 scale / 2.0 failover)",
    )
    cluster.add_argument(
        "--per-node-streams", type=int, default=None,
        help="per-node concurrent-session capacity "
             "(default: 75 scale / 24 failover)",
    )
    cluster.add_argument(
        "--replicas", type=int, default=2,
        help="minimum replicas per title (default: 2)",
    )
    cluster.add_argument(
        "--chunks", type=int, default=None,
        help="chunk epochs per session (handoff granularity; "
             "default: 1 scale / 4 failover)",
    )
    cluster.add_argument(
        "--failover", action="store_true",
        help="run the node-kill failover scenario instead of scale",
    )
    cluster.add_argument(
        "--kill-node", type=int, default=1,
        help="node index the failover plan kills (default: 1)",
    )
    cluster.add_argument(
        "--kill-chunk", type=int, default=2,
        help="chunk boundary the kill fires at (default: 2)",
    )
    cluster.add_argument(
        "--smoke", action="store_true",
        help="run the tiny fixed scenario and emit its obs snapshot",
    )
    _add_common_options(
        cluster, seed_help="workload seed (title draws and arrivals)",
        json_help="print the cluster summary and bounds as JSON",
    )
    cluster.set_defaults(handler=_cmd_cluster)

    trace_export = commands.add_parser(
        "trace-export",
        help="export a scenario's causal trace as Chrome trace JSON",
    )
    trace_export.add_argument(
        "--scenario", default="server-steady",
        choices=["steady", "fault", "server-steady", "server-hot"],
        help="which canonical scenario to trace (default: server-steady)",
    )
    trace_export.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the trace-event JSON to FILE",
    )
    trace_export.add_argument(
        "--profile", action="store_true",
        help="also attach the cost profiler, so the export carries "
             "profile.<phase> counter tracks alongside the spans",
    )
    _add_common_options(
        trace_export, seed_help="scenario seed (trace ids derive from it)",
        json_help="print the trace-event JSON to stdout",
    )
    trace_export.set_defaults(handler=_cmd_trace_export)

    expt = commands.add_parser(
        "expt",
        help="experiment-matrix harness: run, gate, diff",
    )
    expt_commands = expt.add_subparsers(dest="expt_command", required=True)

    expt_run = expt_commands.add_parser(
        "run", help="expand a matrix config and run every cell"
    )
    expt_run.add_argument(
        "--config", default=None, metavar="FILE",
        help="experiment config JSON (see experiments/)",
    )
    expt_run.add_argument(
        "--smoke", action="store_true",
        help="run the builtin tiny CI matrix",
    )
    expt_run.add_argument(
        "--out", default=None, metavar="DIR",
        help=f"results directory (default: {EXPT_RESULTS_ROOT}/<name>)",
    )
    expt_run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: min(cells, cpu count))",
    )
    expt_run.add_argument(
        "--regen-baseline", action="store_true",
        help="also rewrite the committed gate baseline from this run",
    )
    expt_run.add_argument(
        "--baseline", default=EXPT_BASELINE_PATH, metavar="FILE",
        help="baseline path used by --regen-baseline "
             f"(default: {EXPT_BASELINE_PATH})",
    )
    _add_common_options(
        expt_run, include_seed=False,
        json_help="print the manifest JSON instead of the summary",
    )
    expt_run.set_defaults(handler=_cmd_expt_run)

    expt_gate = expt_commands.add_parser(
        "gate",
        help="compare a results manifest against the committed baseline",
    )
    expt_gate.add_argument(
        "--manifest", metavar="FILE",
        default=f"{EXPT_RESULTS_ROOT}/smoke/matrix.json",
        help="results manifest to judge "
             f"(default: {EXPT_RESULTS_ROOT}/smoke/matrix.json)",
    )
    expt_gate.add_argument(
        "--baseline", default=EXPT_BASELINE_PATH, metavar="FILE",
        help=f"baseline manifest (default: {EXPT_BASELINE_PATH})",
    )
    expt_gate.add_argument(
        "--allow-extra-cells", action="store_true",
        help="treat manifest cells absent from the baseline as notes, "
             "not failures",
    )
    expt_gate.add_argument(
        "--verbose", action="store_true",
        help="print the full per-check verdict table",
    )
    _add_common_options(
        expt_gate, include_seed=False,
        json_help="print the verdicts as JSON",
    )
    expt_gate.set_defaults(handler=_cmd_expt_gate)

    expt_diff = expt_commands.add_parser(
        "diff", help="per-cell metric deltas between two manifests"
    )
    expt_diff.add_argument(
        "--manifest", metavar="FILE",
        default=f"{EXPT_RESULTS_ROOT}/smoke/matrix.json",
        help="results manifest "
             f"(default: {EXPT_RESULTS_ROOT}/smoke/matrix.json)",
    )
    expt_diff.add_argument(
        "--baseline", default=EXPT_BASELINE_PATH, metavar="FILE",
        help=f"manifest to diff against (default: {EXPT_BASELINE_PATH})",
    )
    _add_common_options(
        expt_diff, include_seed=False,
        json_help="print the deltas as JSON",
    )
    expt_diff.set_defaults(handler=_cmd_expt_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
