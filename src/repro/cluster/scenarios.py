"""Canonical cluster scenarios: sharded scale and deterministic failover.

These are the seed-deterministic workloads behind the ``repro cluster``
CLI, the cluster benchmark record, and the cluster experiment cells.
Two headline runs:

* :func:`run_cluster_scale_scenario` — the ROADMAP's north-star step:
  1000+ concurrent sessions over a sharded catalog on N nodes, every
  session continuous at steady state (each node warms its replicas, so
  the hot waves are batched and cache-admitted exactly like the
  single-server acceptance scenario).  The run carries the VoD paper's
  analytical bounds (:mod:`repro.cluster.bounds`) next to the measured
  numbers.
* :func:`run_cluster_failover_scenario` — a node is killed mid-stream
  by a :class:`~repro.faults.FaultPlan` and its sessions hand off to
  surviving replicas; the acceptance bar is >90% of affected sessions
  resuming without a continuity break.

Both compose into :func:`run_cluster_smoke_scenario`, the tiny variant
``scripts/check.sh`` gates on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import ClusterServeResult, Media, OpenSessionRequest
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.obs.observer import Observability
from repro.obs.slo import SloMonitor

from repro.cluster.bounds import ClusterBounds, bounds_for_placement
from repro.cluster.node import build_node
from repro.cluster.placement import (
    CatalogTitle,
    PlacementPolicy,
    zipf_popularity,
)
from repro.cluster.router import CLUSTER_SLOS, MediaCluster

__all__ = [
    "ClusterScenarioRun",
    "build_cluster",
    "cluster_observability",
    "run_cluster_scale_scenario",
    "run_cluster_failover_scenario",
    "run_cluster_smoke_scenario",
]

#: Seed shared with the server and obs scenarios.
DEFAULT_SEED = 20260806


@dataclass
class ClusterScenarioRun:
    """A completed cluster scenario and everything it measured."""

    obs: Observability
    cluster: MediaCluster
    catalog: Tuple[CatalogTitle, ...]
    result: ClusterServeResult
    bounds: ClusterBounds
    demand: Dict[str, int] = field(default_factory=dict)

    @property
    def affected(self) -> int:
        """Sessions a node death touched (one per handoff decision)."""
        return len(self.result.handoffs)

    @property
    def clean_handoffs(self) -> int:
        """Handoffs that resumed with no continuity break."""
        return self.result.handoffs_clean

    def snapshot(self, include_profile: bool = False) -> str:
        """The run's stable JSON snapshot (golden-file content)."""
        return self.obs.snapshot(include_profile=include_profile)


def build_cluster(
    nodes: int,
    titles: int,
    seconds: float = 1.0,
    per_node_streams: int = 8,
    min_replicas: int = 2,
    clients: Optional[List[str]] = None,
    obs: Optional[Observability] = None,
    warm: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    cache_blocks: int = 512,
    batch_window: float = 0.25,
    scope_nodes: bool = True,
) -> Tuple[MediaCluster, Tuple[CatalogTitle, ...]]:
    """A cluster of *nodes* MediaServers sharing a Zipf catalog.

    Titles are ``T01..Tnn`` with classic Zipf(1) popularity; the
    placement policy mirrors each title onto at least *min_replicas*
    nodes (so every title has a failover target) and stripes replicas
    least-loaded-first.  Every node records its assigned replicas from
    the title's own deterministic frame source and, when *warm* is on,
    plays each once so the hot waves are cache-admitted.

    With *scope_nodes* (the default) each node is built against
    ``obs.scoped(node_id)`` — the federated per-node view — and the
    router's counters go through the ``"cluster"`` scope.  Shared
    totals are byte-identical either way (the equivalence test pins
    this); ``scope_nodes=False`` reproduces the legacy flat sharing.
    """
    catalog = tuple(
        CatalogTitle(
            title_id=f"T{rank:02d}",
            seconds=seconds,
            popularity=zipf_popularity(rank),
        )
        for rank in range(1, titles + 1)
    )
    node_ids = [f"node-{i:02d}" for i in range(nodes)]
    placement = PlacementPolicy(min_replicas=min_replicas).plan(
        catalog, node_ids, per_node_streams
    )
    viewers = list(clients or []) + ["warmer"]
    built = []
    for node_id in node_ids:
        node_obs = obs
        if obs is not None and scope_nodes:
            scoped = getattr(obs, "scoped", None)
            if scoped is not None:
                node_obs = scoped(node_id)
        node = build_node(
            node_id,
            capacity=per_node_streams,
            cache_blocks=cache_blocks,
            batch_window=batch_window,
            obs=node_obs,
        )
        for title in catalog:
            if node_id in placement.replicas(title.title_id):
                node.record_title(title, viewers)
        built.append(node)
    if warm and cache_blocks > 0:
        for node in built:
            for title_id in sorted(node.local_ropes):
                node.warm(title_id)
    cluster = MediaCluster(
        built, placement, fault_plan=fault_plan, obs=obs,
        scope_counters=scope_nodes,
    )
    return cluster, catalog


def _catalog_requests(
    catalog: Tuple[CatalogTitle, ...],
    sessions: int,
    seed: int,
    window: float,
) -> List[OpenSessionRequest]:
    """*sessions* opens drawn popularity-weighted over the catalog.

    Title choice and arrival jitter both come from one seeded RNG, so
    the workload (and everything downstream of it) is deterministic.
    Arrivals land inside half the batching window so each node sees its
    per-title viewers as one admission batch.
    """
    rng = random.Random(seed)
    weights = [title.popularity for title in catalog]
    requests = []
    for i in range(sessions):
        title = rng.choices(catalog, weights=weights)[0]
        requests.append(
            OpenSessionRequest(
                client_id=f"client-{i}",
                rope_id=title.title_id,
                arrival=rng.uniform(0.0, window / 2.0),
                media=Media.VIDEO,
            )
        )
    return requests


def cluster_observability(
    seed: int, profile: bool = False
) -> Observability:
    """A for-scale observability with the cluster objective set.

    With *profile* a :class:`~repro.obs.CostProfiler` is attached, so
    scenario runs additionally carry per-phase / per-node cost
    attribution (the ``repro profile cluster`` and ``repro obs-report
    --cluster`` presets).
    """
    obs = Observability.for_scale(seed=seed)
    obs.slo = SloMonitor(obs.registry, CLUSTER_SLOS)
    if profile:
        obs.enable_profiler()
    return obs


def _run(
    nodes: int,
    sessions: int,
    titles: int,
    seconds: float,
    per_node_streams: int,
    min_replicas: int,
    chunks: int,
    seed: int,
    obs: Optional[Observability],
    fault_plan: Optional[FaultPlan],
    scope_nodes: bool = True,
) -> ClusterScenarioRun:
    if obs is None:
        obs = cluster_observability(seed)
    clients = [f"client-{i}" for i in range(sessions)]
    cluster, catalog = build_cluster(
        nodes=nodes,
        titles=titles,
        seconds=seconds,
        per_node_streams=per_node_streams,
        min_replicas=min_replicas,
        clients=clients,
        obs=obs,
        fault_plan=fault_plan,
        scope_nodes=scope_nodes,
    )
    batch_window = cluster.nodes[0].server.batch_window
    requests = _catalog_requests(catalog, sessions, seed, batch_window)
    demand: Dict[str, int] = {}
    for request in requests:
        demand[request.rope_id] = demand.get(request.rope_id, 0) + 1
    result = cluster.serve(requests, chunks=chunks)
    bounds = bounds_for_placement(
        cluster.placement,
        nodes=nodes,
        per_node_streams=per_node_streams,
        per_node_titles=titles,
        demand=demand,
    )
    return ClusterScenarioRun(
        obs=obs,
        cluster=cluster,
        catalog=catalog,
        result=result,
        bounds=bounds,
        demand=demand,
    )


def run_cluster_scale_scenario(
    nodes: int = 20,
    sessions: int = 1000,
    titles: int = 40,
    seconds: float = 1.0,
    per_node_streams: int = 75,
    min_replicas: int = 2,
    chunks: int = 1,
    seed: int = DEFAULT_SEED,
    obs: Optional[Observability] = None,
    scope_nodes: bool = True,
) -> ClusterScenarioRun:
    """The north-star run: 1000+ concurrent sessions, all continuous.

    Warmed replicas make every hot wave cache-admitted, so the cluster
    sustains far beyond the per-request disk limit — the measured
    numbers are reported against the analytical full-catalog and
    single-video bounds in :attr:`ClusterScenarioRun.bounds`.
    """
    return _run(
        nodes, sessions, titles, seconds, per_node_streams,
        min_replicas, chunks, seed, obs, fault_plan=None,
        scope_nodes=scope_nodes,
    )


def run_cluster_failover_scenario(
    nodes: int = 4,
    sessions: int = 32,
    titles: int = 8,
    seconds: float = 2.0,
    per_node_streams: int = 24,
    min_replicas: int = 2,
    chunks: int = 4,
    kill_node: int = 1,
    kill_chunk: int = 2,
    seed: int = DEFAULT_SEED,
    obs: Optional[Observability] = None,
    scope_nodes: bool = True,
) -> ClusterScenarioRun:
    """Kill one node mid-stream; its sessions hand off and finish.

    The fault plan is explicit and deterministic: node *kill_node* dies
    at chunk boundary *kill_chunk*; every session it was serving is
    re-admitted onto the least-loaded surviving replica (the catalog is
    mirrored with ``min_replicas >= 2``, so a target exists).  The
    acceptance bar — >90% of affected sessions resume cleanly — is also
    the ``handoff-clean`` SLO, so a regression shows up as a breach
    event in the snapshot.
    """
    plan = FaultPlan([
        FaultSpec(
            kind=FaultKind.HEAD_FAILURE,
            at_op=kill_chunk,
            drive_index=kill_node,
        )
    ], seed=seed)
    return _run(
        nodes, sessions, titles, seconds, per_node_streams,
        min_replicas, chunks, seed, obs, fault_plan=plan,
        scope_nodes=scope_nodes,
    )


def run_cluster_smoke_scenario(
    seed: int = DEFAULT_SEED,
    obs: Optional[Observability] = None,
    scope_nodes: bool = True,
) -> ClusterScenarioRun:
    """The tiny CI gate: 3 nodes, 12 sessions, one node killed.

    Small enough for scripts/check.sh, yet it exercises the whole
    surface — placement, routing, chunked serving, a deterministic node
    kill, and clean handoff.
    """
    return run_cluster_failover_scenario(
        nodes=3,
        sessions=12,
        titles=4,
        seconds=1.0,
        per_node_streams=8,
        min_replicas=2,
        chunks=3,
        kill_node=1,
        kill_chunk=1,
        seed=seed,
        obs=obs,
        scope_nodes=scope_nodes,
    )
