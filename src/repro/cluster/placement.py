"""Popularity-aware striping and mirroring of strands across nodes.

The placement policy answers the VoD scaling question the single-server
stack cannot: which node(s) should hold each catalog title so the
cluster's aggregate stream capacity is actually reachable?  Following
the distributed-VoD bounds (see :mod:`repro.cluster.bounds`), a title
``v`` with expected demand ``d_v`` can never serve more than
``r_v * u`` concurrent streams (``r_v`` replicas, ``u`` per-node stream
capacity), so the policy:

* **mirrors** — gives each title ``ceil(expected_demand / u)`` replicas
  (clamped to ``[min_replicas, nodes]``), so popular titles get the
  replica count their demand needs;
* **stripes** — assigns replicas to the least expected-load node first,
  spreading consecutive titles across the array so no node becomes the
  hot shard.

Demand defaults to the declared catalog popularity, but
:func:`demand_from_counters` derives it from the observed per-title
open counters the router records (``cluster.opens.<title>``), so a
running cluster can re-plan placement from what viewers actually
watched rather than what the catalog predicted.

Everything is a pure function of its inputs: the same catalog, node
list, and demand always produce the identical :class:`PlacementMap`,
which is what makes the router's decisions byte-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "CatalogTitle",
    "PlacementMap",
    "PlacementPolicy",
    "demand_from_counters",
    "zipf_popularity",
]


@dataclass(frozen=True)
class CatalogTitle:
    """One title of the sharded catalog.

    Attributes
    ----------
    title_id:
        Cluster-wide name clients put in ``OpenSessionRequest.rope_id``
        (the router maps it to each replica node's local rope).
    seconds:
        Recorded duration of the title's strand.
    popularity:
        Relative demand weight (any positive scale; only ratios
        matter).
    """

    title_id: str
    seconds: float = 1.0
    popularity: float = 1.0

    def __post_init__(self) -> None:
        if not self.title_id:
            raise ParameterError("title_id must be non-empty")
        if self.seconds <= 0:
            raise ParameterError(
                f"title {self.title_id}: seconds must be > 0, "
                f"got {self.seconds}"
            )
        if self.popularity <= 0:
            raise ParameterError(
                f"title {self.title_id}: popularity must be > 0, "
                f"got {self.popularity}"
            )


def zipf_popularity(rank: int, exponent: float = 1.0) -> float:
    """The classic VoD popularity model: weight ``1 / rank^exponent``."""
    if rank < 1:
        raise ParameterError(f"rank must be >= 1, got {rank}")
    return 1.0 / (rank ** exponent)


@dataclass(frozen=True)
class PlacementMap:
    """An immutable title -> ordered replica-node assignment.

    The replica order is meaningful: it is the deterministic tie-break
    order the router walks when several replicas report equal load.
    """

    assignments: Tuple[Tuple[str, Tuple[str, ...]], ...]

    def __post_init__(self) -> None:
        seen = set()
        for title, replicas in self.assignments:
            if title in seen:
                raise ParameterError(
                    f"title {title!r} assigned more than once"
                )
            seen.add(title)
            if not replicas:
                raise ParameterError(
                    f"title {title!r} has no replicas"
                )
            if len(set(replicas)) != len(replicas):
                raise ParameterError(
                    f"title {title!r} lists a node twice: {replicas}"
                )

    def titles(self) -> Tuple[str, ...]:
        """Every placed title, in assignment order."""
        return tuple(title for title, _ in self.assignments)

    def replicas(self, title_id: str) -> Tuple[str, ...]:
        """The ordered replica nodes of one title (KeyError if absent)."""
        for title, nodes in self.assignments:
            if title == title_id:
                return nodes
        raise KeyError(title_id)

    def has_title(self, title_id: str) -> bool:
        """Whether the placement knows this title at all."""
        return any(title == title_id for title, _ in self.assignments)

    def titles_on(self, node_id: str) -> Tuple[str, ...]:
        """Every title replicated onto one node, in assignment order."""
        return tuple(
            title
            for title, nodes in self.assignments
            if node_id in nodes
        )

    def replica_counts(self) -> Dict[str, int]:
        """title -> replica count, for the bounds computation."""
        return {
            title: len(nodes) for title, nodes in self.assignments
        }

    def to_dict(self) -> Dict[str, Tuple[str, ...]]:
        """JSON-ready title -> replica-list mapping."""
        return {
            title: list(nodes) for title, nodes in self.assignments
        }


class PlacementPolicy:
    """Derives a :class:`PlacementMap` from catalog, nodes, and demand.

    Parameters
    ----------
    min_replicas:
        Floor on every title's replica count (2 gives each title a
        failover target, which is what the handoff path needs).
    max_replicas:
        Optional ceiling; defaults to the node count.
    """

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: Optional[int] = None,
    ):
        if min_replicas < 1:
            raise ParameterError(
                f"min_replicas must be >= 1, got {min_replicas}"
            )
        if max_replicas is not None and max_replicas < min_replicas:
            raise ParameterError(
                f"max_replicas {max_replicas} < min_replicas "
                f"{min_replicas}"
            )
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas

    def plan(
        self,
        titles: Sequence[CatalogTitle],
        node_ids: Sequence[str],
        per_node_streams: int,
        demand: Optional[Mapping[str, float]] = None,
    ) -> PlacementMap:
        """Assign every title to an ordered replica set.

        ``demand`` overrides the catalog popularity (e.g. with observed
        open counts from :func:`demand_from_counters`); titles absent
        from it fall back to their declared popularity.
        """
        if not titles:
            raise ParameterError("catalog must be non-empty")
        if not node_ids:
            raise ParameterError("node list must be non-empty")
        if len(set(node_ids)) != len(node_ids):
            raise ParameterError(f"duplicate node ids: {node_ids}")
        if per_node_streams < 1:
            raise ParameterError(
                f"per_node_streams must be >= 1, got {per_node_streams}"
            )
        nodes = list(node_ids)
        weights: Dict[str, float] = {}
        for title in titles:
            weight = title.popularity
            if demand is not None and title.title_id in demand:
                observed = float(demand[title.title_id])
                if observed > 0:
                    weight = observed
            weights[title.title_id] = weight
        total_weight = sum(weights.values())
        capacity = len(nodes) * per_node_streams
        ceiling = min(self.max_replicas or len(nodes), len(nodes))
        # Expected concurrent viewers of each title if the cluster runs
        # at full capacity; a title needs ceil(expected / u) replicas to
        # serve them (the single-video bound, inverted).
        replica_counts: Dict[str, int] = {}
        for title in titles:
            expected = weights[title.title_id] / total_weight * capacity
            needed = math.ceil(expected / per_node_streams)
            replica_counts[title.title_id] = max(
                self.min_replicas, min(needed, ceiling)
            )
        # Stripe replicas onto the least expected-load node first.
        # Titles are placed in descending demand order so the heavy
        # titles claim the emptiest nodes; ties break on catalog order,
        # then on node order — all deterministic.
        order = sorted(
            range(len(titles)),
            key=lambda i: (-weights[titles[i].title_id], i),
        )
        load: Dict[str, float] = {node: 0.0 for node in nodes}
        assignments: Dict[str, Tuple[str, ...]] = {}
        node_rank = {node: i for i, node in enumerate(nodes)}
        for index in order:
            title = titles[index]
            count = replica_counts[title.title_id]
            share = (
                weights[title.title_id] / total_weight * capacity / count
            )
            chosen: list = []
            for _ in range(count):
                candidates = [n for n in nodes if n not in chosen]
                target = min(
                    candidates,
                    key=lambda n: (load[n], node_rank[n]),
                )
                chosen.append(target)
                load[target] += share
            assignments[title.title_id] = tuple(chosen)
        return PlacementMap(
            assignments=tuple(
                (title.title_id, assignments[title.title_id])
                for title in titles
            )
        )


def demand_from_counters(
    registry, titles: Sequence[CatalogTitle]
) -> Dict[str, float]:
    """Observed per-title demand from the router's open counters.

    Reads the ``cluster.opens.<title>`` counters a
    :class:`repro.cluster.MediaCluster` increments on every routed
    admission; titles never opened are absent from the result, so a
    re-plan falls back to their declared popularity.
    """
    observed: Dict[str, float] = {}
    for title in titles:
        count = registry.peek_counter(f"cluster.opens.{title.title_id}")
        if count:
            observed[title.title_id] = float(count)
    return observed
