"""Distributed VoD cluster: sharded MediaServers behind one typed API.

The cluster layer scales the paper's single-server machinery to a
multi-node deployment while keeping the :mod:`repro.api` surface:

* :mod:`repro.cluster.placement` — popularity-aware striping and
  mirroring of strands across nodes;
* :mod:`repro.cluster.node` — one MediaServer shard (own drive array,
  own block cache) plus the routing metadata the cluster needs;
* :mod:`repro.cluster.router` — :class:`MediaCluster`: least-loaded
  replica admission, chunked serving, deterministic node kills with
  inter-node session handoff;
* :mod:`repro.cluster.bounds` — the distributed-VoD analytical bounds
  (single-video, full-catalog, storage, max-flow demand) the measured
  cluster is reported against;
* :mod:`repro.cluster.scenarios` — the canonical seed-deterministic
  scale / failover / smoke runs.
"""

from repro.cluster.bounds import (
    ClusterBounds,
    bounds_for_placement,
    demand_max_flow,
    full_catalog_bound,
    single_video_bound,
    storage_feasible,
)
from repro.cluster.node import ClusterNode, build_node
from repro.cluster.placement import (
    CatalogTitle,
    PlacementMap,
    PlacementPolicy,
    demand_from_counters,
    zipf_popularity,
)
from repro.cluster.router import CLUSTER_SLOS, MediaCluster
from repro.cluster.scenarios import (
    ClusterScenarioRun,
    build_cluster,
    cluster_observability,
    run_cluster_failover_scenario,
    run_cluster_scale_scenario,
    run_cluster_smoke_scenario,
)

__all__ = [
    "CLUSTER_SLOS",
    "CatalogTitle",
    "ClusterBounds",
    "ClusterNode",
    "ClusterScenarioRun",
    "MediaCluster",
    "PlacementMap",
    "PlacementPolicy",
    "bounds_for_placement",
    "build_cluster",
    "build_node",
    "cluster_observability",
    "demand_from_counters",
    "demand_max_flow",
    "full_catalog_bound",
    "run_cluster_failover_scenario",
    "run_cluster_scale_scenario",
    "run_cluster_smoke_scenario",
    "single_video_bound",
    "storage_feasible",
    "zipf_popularity",
]
