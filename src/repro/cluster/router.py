"""The cluster router: placement-aware admission, chunked serving, handoff.

:class:`MediaCluster` is the cluster-level front door.  It speaks the
same :mod:`repro.api` types a single :class:`~repro.server.MediaServer`
does — clients submit :class:`~repro.api.OpenSessionRequest` with a
catalog *title* in ``rope_id`` and get a
:class:`~repro.api.ClusterServeResult` back — and adds the three
distributed concerns:

**Routing.**  Each open is admitted onto the least-loaded live replica
holding the title (ties break on the placement map's replica order).
When no replica has slack the refusal is the typed
:attr:`~repro.api.RejectReason.NO_REPLICA`; an unknown title is
:attr:`~repro.api.RejectReason.UNKNOWN_ROPE` — overload never surfaces
as an exception, exactly like the single-server contract.

**Chunked playback.**  A cluster session's interval is split into
``chunks`` equal sub-intervals; each chunk is one MediaServer epoch on
the session's current node.  Chunk boundaries are where a session may
change nodes, so finer chunking bounds how much playback a node death
can strand.

**Deterministic failure + handoff.**  The cluster reuses
:mod:`repro.faults` as its failure model: a
:class:`~repro.faults.FaultSpec` with ``HEAD_FAILURE`` and
``drive_index = node index`` kills that node at the chunk boundary
``at_op`` (or at the first boundary whose elapsed simulated time
reaches ``at_time``); TRANSIENT/MEDIA_DEFECT specs are forwarded to the
node's private drive injector at construction.  When a node dies, every
session it was serving is handed off to the least-loaded surviving
replica and resumes at its next chunk; a handoff is **clean** when the
viewer saw no miss or skip from then on.  Each decision is recorded as
a :class:`~repro.api.HandoffRecord`.

All decisions are pure functions of (requests, placement, fault plan),
so two runs with the same inputs produce byte-identical
``ClusterServeResult.to_dict()`` output — placement map, admission
order, and handoffs included.

Observability federates across nodes: each node is built against a
node-scoped view (``obs.scoped(node_id)``) of one shared
:class:`~repro.obs.Observability`, and the router's own counters go
through the ``"cluster"`` scope — shared totals, SLO evaluation, and
spans are identical to flat sharing, while per-node registries stay
separable and ``merge_snapshots()`` folds them back into the cluster
totals.  The router records a ``cluster.request`` root span per
session with ``cluster.route`` / ``cluster.serve`` /
``cluster.handoff`` children attributed to node ids, keeps per-title
and node-labeled counters (``cluster.routed.<node>``,
``cluster.rejects.<node>``, ``cluster.handoffs_from/to/clean.<node>``),
and adds the ``handoff-clean`` objective (:data:`CLUSTER_SLOS`) on top
of the stock SLO set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import (
    ClusterServeResult,
    HandoffRecord,
    Media,
    NodeServeResult,
    OpenSessionRequest,
    OpenSessionResponse,
    RejectReason,
    ServeResult,
    SessionState,
    SessionStatus,
)
from repro.errors import ParameterError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.obs.slo import DEFAULT_SLOS, Slo

from repro.cluster.node import ClusterNode
from repro.cluster.placement import PlacementMap

__all__ = ["CLUSTER_SLOS", "MediaCluster"]

#: The stock cluster objective set: everything a single server promises
#: plus ">= 90% of handoffs resume without a continuity break" — the
#: distributed-VoD acceptance criterion.
CLUSTER_SLOS: Tuple[Slo, ...] = DEFAULT_SLOS + (
    Slo("handoff-clean", "handoff_clean_ratio", ">=", 0.9, "final"),
)


@dataclass
class _ClusterSession:
    """Router-side state of one cluster session."""

    session_id: str
    client_id: str
    title_id: str
    media: Media
    arrival: float
    start: float
    length: float
    node_id: str
    state: SessionState = SessionState.PLAYING
    handoffs: int = 0
    blocks_delivered: int = 0
    misses: int = 0
    skips: int = 0
    startup_latency: float = 0.0
    cache_admitted: bool = True
    #: Misses + skips accumulated at or after the first handoff chunk
    #: (what decides whether the handoffs were clean).
    glitches_after_handoff: int = 0
    reject: Optional[RejectReason] = None
    root_span: object = None
    handoff_chunks: List[int] = field(default_factory=list)

    def status(self) -> SessionStatus:
        return SessionStatus(
            session_id=self.session_id,
            client_id=self.client_id,
            rope_id=self.title_id,
            state=self.state,
            blocks_delivered=self.blocks_delivered,
            misses=self.misses,
            skips=self.skips,
            startup_latency=self.startup_latency,
            cache_admitted=self.cache_admitted,
            node_id=self.node_id,
            handoffs=self.handoffs,
        )


@dataclass
class _PendingHandoff:
    """A handoff decision awaiting its final clean/broken verdict."""

    session_id: str
    title_id: str
    from_node: str
    to_node: Optional[str]
    at_chunk: int
    blocks_before: int
    detail: str


class MediaCluster:
    """N sharded MediaServers behind one typed cluster API."""

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        placement: PlacementMap,
        fault_plan: Optional[FaultPlan] = None,
        obs=None,
        scope_counters: bool = True,
    ):
        if not nodes:
            raise ParameterError("a cluster needs at least one node")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ParameterError(f"duplicate node ids: {ids}")
        self.nodes: Tuple[ClusterNode, ...] = tuple(nodes)
        self._by_id: Dict[str, ClusterNode] = {
            node.node_id: node for node in nodes
        }
        for title, replicas in placement.assignments:
            for node_id in replicas:
                if node_id not in self._by_id:
                    raise ParameterError(
                        f"placement assigns {title!r} to unknown node "
                        f"{node_id!r}"
                    )
        self.placement = placement
        self.obs = obs
        # Router-level counters go through the "cluster" scoped view
        # when the observer federates, so merge_snapshots() over every
        # view reproduces the shared totals exactly.
        self._view = obs
        if obs is not None and scope_counters:
            scoped = getattr(obs, "scoped", None)
            if scoped is not None:
                self._view = scoped("cluster")
        self._spans = None
        if obs is not None and obs.tracer.enabled:
            self._spans = obs.tracer
        self._session_ids = itertools.count(1)
        self._sessions: Dict[str, _ClusterSession] = {}
        #: (chunk_boundary_index or None, at_time or None, node_index)
        #: — HEAD_FAILURE specs become node kills at chunk boundaries.
        self._kills: List[Tuple[Optional[int], Optional[float], int]] = []
        if fault_plan is not None:
            self._apply_fault_plan(fault_plan)

    # -- fault plan ---------------------------------------------------------------

    def _apply_fault_plan(self, plan: FaultPlan) -> None:
        """Interpret the plan cluster-wide: ``drive_index`` names a node.

        HEAD_FAILURE kills the whole node at a chunk boundary (``at_op``
        counts boundaries, not drive accesses, at cluster scope); other
        kinds are forwarded to that node's private drive injector, so
        per-block faults keep their single-drive semantics.
        """
        for spec in plan:
            if spec.drive_index >= len(self.nodes):
                raise ParameterError(
                    f"fault plan targets node index {spec.drive_index}, "
                    f"but the cluster has {len(self.nodes)} node(s)"
                )
        for index, node in enumerate(self.nodes):
            sub = plan.for_drive(index)
            drive_faults = [
                spec for spec in sub
                if spec.kind is not FaultKind.HEAD_FAILURE
            ]
            if drive_faults:
                node.server.mrs.msm.drive.attach_injector(
                    FaultInjector(FaultPlan(drive_faults, seed=plan.seed))
                )
            for spec in sub:
                if spec.kind is FaultKind.HEAD_FAILURE:
                    self._kills.append((spec.at_op, spec.at_time, index))

    # -- counters -----------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self._view is not None:
            self._view.registry.counter(name).inc(amount)

    # -- admission ----------------------------------------------------------------

    def route(self, title_id: str) -> Optional[ClusterNode]:
        """The least-loaded live replica with slack (None when none).

        Load is the node's active cluster-session count; ties break on
        the placement map's replica order, so routing is deterministic.
        """
        if not self.placement.has_title(title_id):
            return None
        best: Optional[ClusterNode] = None
        for node_id in self.placement.replicas(title_id):
            node = self._by_id[node_id]
            if not node.has_slack():
                continue
            if best is None or node.active < best.active:
                best = node
        return best

    def _reject(
        self,
        request: OpenSessionRequest,
        reason: RejectReason,
        detail: str,
    ) -> OpenSessionResponse:
        session = _ClusterSession(
            session_id=f"S{next(self._session_ids):04d}",
            client_id=request.client_id,
            title_id=request.rope_id,
            media=request.media,
            arrival=request.arrival,
            start=request.start,
            length=0.0,
            node_id="",
            state=SessionState.REJECTED,
            cache_admitted=False,
            reject=reason,
        )
        self._sessions[session.session_id] = session
        self._count("server.sessions_rejected")
        self._count(f"server.reject.{reason.value}")
        self._count("cluster.rejects")
        # Routing-level refusal: no node ever saw the request.
        self._count("cluster.rejects.router")
        if self._spans is not None:
            span = self._spans.start_span(
                "cluster.request",
                request.arrival,
                session=session.session_id,
                attrs={"title": request.rope_id, "reject": reason.value},
            )
            self._spans.end_span(span, request.arrival, status="rejected")
        return OpenSessionResponse(
            session_id=session.session_id,
            accepted=False,
            reject=reason,
            detail=detail,
        )

    # -- serving ------------------------------------------------------------------

    def serve(
        self,
        requests: Sequence[OpenSessionRequest],
        chunks: int = 1,
    ) -> ClusterServeResult:
        """Route, serve in chunk epochs, hand off around node deaths."""
        if chunks < 1:
            raise ParameterError(f"chunks must be >= 1, got {chunks}")
        for request in requests:
            if not isinstance(request, OpenSessionRequest):
                raise ParameterError(
                    f"cluster serve() got {type(request).__name__}; "
                    "the cluster API admits OpenSessionRequest only"
                )
        rejects: List[OpenSessionResponse] = []
        admission_order: List[Tuple[str, str]] = []
        admitted: List[_ClusterSession] = []
        ordered = sorted(
            range(len(requests)),
            key=lambda i: (requests[i].arrival, i),
        )
        for index in ordered:
            request = requests[index]
            title = request.rope_id
            if not self.placement.has_title(title):
                rejects.append(self._reject(
                    request, RejectReason.UNKNOWN_ROPE,
                    f"no catalog title {title!r}",
                ))
                continue
            node = self.route(title)
            if node is None:
                rejects.append(self._reject(
                    request, RejectReason.NO_REPLICA,
                    f"no live replica of {title!r} has admission slack "
                    f"(replicas: "
                    f"{', '.join(self.placement.replicas(title))})",
                ))
                continue
            duration = node.title_duration(title)
            length = (
                request.length if request.length is not None
                else max(duration - request.start, 0.0)
            )
            session = _ClusterSession(
                session_id=f"S{next(self._session_ids):04d}",
                client_id=request.client_id,
                title_id=title,
                media=request.media,
                arrival=request.arrival,
                start=request.start,
                length=length,
                node_id=node.node_id,
            )
            self._sessions[session.session_id] = session
            node.active += 1
            admitted.append(session)
            admission_order.append((session.session_id, node.node_id))
            self._count("server.sessions_opened")
            self._count(f"cluster.opens.{title}")
            self._count(f"cluster.routed.{node.node_id}")
            if self._spans is not None:
                root = self._spans.start_span(
                    "cluster.request",
                    request.arrival,
                    session=session.session_id,
                    attrs={"title": title, "client": request.client_id},
                )
                session.root_span = root
                route_span = self._spans.start_span(
                    "cluster.route",
                    request.arrival,
                    parent=root,
                    attrs={"node": node.node_id},
                )
                self._spans.end_span(route_span, request.arrival)
        per_node_results: Dict[str, List[ServeResult]] = {
            node.node_id: [] for node in self.nodes
        }
        pending_handoffs: List[_PendingHandoff] = []
        for chunk in range(chunks):
            self._serve_chunk(
                admitted, chunk, chunks, per_node_results, rejects
            )
            self._apply_kills(
                admitted, chunk, chunks, pending_handoffs, rejects
            )
        return self._finalize(
            admitted, rejects, admission_order,
            per_node_results, pending_handoffs, chunks,
        )

    def _chunk_interval(
        self, session: _ClusterSession, chunk: int, chunks: int
    ) -> Tuple[float, float]:
        """The (start, length) sub-interval of one chunk epoch."""
        chunk_length = session.length / chunks
        start = session.start + chunk * chunk_length
        if chunk == chunks - 1:
            # The last chunk absorbs float remainder so the union of
            # chunks is exactly the requested interval.
            length = session.start + session.length - start
        else:
            length = chunk_length
        return start, length

    def _serve_chunk(
        self,
        admitted: List[_ClusterSession],
        chunk: int,
        chunks: int,
        per_node_results: Dict[str, List[ServeResult]],
        rejects: List[OpenSessionResponse],
    ) -> None:
        """Run chunk epoch *chunk* on every node that has sessions."""
        for node in self.nodes:
            if not node.alive:
                continue
            mine = [
                session for session in admitted
                if session.node_id == node.node_id
                and session.state is SessionState.PLAYING
            ]
            if not mine:
                continue
            opens: List[OpenSessionRequest] = []
            for session in mine:
                start, length = self._chunk_interval(session, chunk, chunks)
                opens.append(
                    OpenSessionRequest(
                        client_id=session.client_id,
                        rope_id=node.rope_for(session.title_id),
                        arrival=session.arrival,
                        start=start,
                        length=length,
                        media=session.media,
                    )
                )
            result, fresh = node.serve(opens)
            per_node_results[node.node_id].append(result)
            self._merge_chunk(
                node, mine, result, fresh, chunk, chunks, rejects
            )

    def _merge_chunk(
        self,
        node: ClusterNode,
        mine: List[_ClusterSession],
        result: ServeResult,
        fresh: List[SessionStatus],
        chunk: int,
        chunks: int,
        rejects: List[OpenSessionResponse],
    ) -> None:
        """Fold one node epoch's statuses back into cluster sessions.

        Statuses are matched by (client, rope) key: the node admits the
        epoch's opens in arrival order and assigns session ids in that
        order, and ``mine`` is in the same arrival order, so popping
        each key's statuses in session-id order pairs every cluster
        session with the node session its open created.
        """
        reject_reasons: Dict[str, RejectReason] = {
            response.session_id: response.reject
            for response in result.rejects
            if response.reject is not None
        }
        buckets: Dict[Tuple[str, str], List[SessionStatus]] = {}
        for status in fresh:
            key = (status.client_id, status.rope_id)
            buckets.setdefault(key, []).append(status)
        for statuses in buckets.values():
            statuses.sort(key=lambda s: s.session_id)
        for session in mine:
            key = (session.client_id, node.rope_for(session.title_id))
            bucket = buckets.get(key)
            if not bucket:
                raise ParameterError(
                    f"node {node.node_id} returned no status for "
                    f"cluster session {session.session_id} chunk {chunk}"
                )
            status = bucket.pop(0)
            if status.state is SessionState.REJECTED:
                reason = reject_reasons.get(
                    status.session_id, RejectReason.CAPACITY
                )
                session.state = SessionState.REJECTED
                session.reject = reason
                node.active = max(node.active - 1, 0)
                self._count("cluster.rejects")
                self._count(f"cluster.rejects.{node.node_id}")
                rejects.append(
                    OpenSessionResponse(
                        session_id=session.session_id,
                        accepted=False,
                        reject=reason,
                        detail=(
                            f"node {node.node_id} refused chunk {chunk}"
                        ),
                    )
                )
                self._end_root(session, status="rejected")
                continue
            session.blocks_delivered += status.blocks_delivered
            session.misses += status.misses
            session.skips += status.skips
            if chunk == 0:
                session.startup_latency = status.startup_latency
            session.cache_admitted = (
                session.cache_admitted and status.cache_admitted
            )
            if session.handoffs:
                session.glitches_after_handoff += (
                    status.misses + status.skips
                )
            if self._spans is not None and session.root_span is not None:
                start, length = self._chunk_interval(session, chunk, chunks)
                span = self._spans.start_span(
                    "cluster.serve",
                    start,
                    parent=session.root_span,
                    attrs={"node": node.node_id, "chunk": chunk},
                )
                self._spans.end_span(
                    span,
                    start + length,
                    status=(
                        "ok" if not (status.misses or status.skips)
                        else "degraded"
                    ),
                )

    def _apply_kills(
        self,
        admitted: List[_ClusterSession],
        chunk: int,
        chunks: int,
        pending: List[_PendingHandoff],
        rejects: List[OpenSessionResponse],
    ) -> None:
        """Kill scheduled nodes at the boundary after epoch *chunk*.

        A HEAD_FAILURE spec fires at this boundary when its ``at_op``
        equals ``chunk + 1``, or when its ``at_time`` falls within the
        simulated playback the finished epochs cover.  A kill at or past
        the final boundary changes nothing — the sessions already
        finished.
        """
        boundary = chunk + 1
        if boundary >= chunks:
            return
        for at_op, at_time, index in self._kills:
            node = self.nodes[index]
            if not node.alive:
                continue
            fires = False
            if at_op is not None:
                fires = at_op == boundary
            elif at_time is not None:
                # Elapsed simulated playback is boundary/chunks of the
                # longest live interval; the kill fires at the first
                # boundary whose elapsed time reaches at_time.
                horizon = max(
                    (s.length for s in admitted
                     if s.state is SessionState.PLAYING),
                    default=0.0,
                )
                fires = horizon * boundary / chunks >= at_time
            if not fires:
                continue
            self._kill_node(
                node, boundary, chunks, admitted, pending, rejects
            )

    def _kill_node(
        self,
        node: ClusterNode,
        boundary: int,
        chunks: int,
        admitted: List[_ClusterSession],
        pending: List[_PendingHandoff],
        rejects: List[OpenSessionResponse],
    ) -> None:
        """Kill *node* and hand its live sessions to surviving replicas."""
        node.kill()
        self._count(f"cluster.node_deaths.{node.node_id}")
        affected = [
            session for session in admitted
            if session.node_id == node.node_id
            and session.state is SessionState.PLAYING
        ]
        for session in affected:
            target = self.route(session.title_id)
            self._count("cluster.handoffs_total")
            self._count(f"cluster.handoffs_from.{node.node_id}")
            if target is not None:
                self._count(f"cluster.handoffs_to.{target.node_id}")
                session.node_id = target.node_id
                session.handoffs += 1
                session.handoff_chunks.append(boundary)
                target.active += 1
                detail = (
                    f"resumed at chunk {boundary} on {target.node_id}"
                )
                pending.append(_PendingHandoff(
                    session_id=session.session_id,
                    title_id=session.title_id,
                    from_node=node.node_id,
                    to_node=target.node_id,
                    at_chunk=boundary,
                    blocks_before=session.blocks_delivered,
                    detail=detail,
                ))
            else:
                detail = (
                    f"no surviving replica of {session.title_id!r} "
                    f"had slack at chunk {boundary}"
                )
                session.state = SessionState.REJECTED
                session.reject = RejectReason.NO_REPLICA
                self._count("server.sessions_rejected")
                self._count(
                    f"server.reject.{RejectReason.NO_REPLICA.value}"
                )
                self._count("cluster.rejects")
                self._count(f"cluster.rejects.{node.node_id}")
                self._count(
                    f"cluster.handoffs_stranded.{node.node_id}"
                )
                rejects.append(
                    OpenSessionResponse(
                        session_id=session.session_id,
                        accepted=False,
                        reject=RejectReason.NO_REPLICA,
                        detail=detail,
                    )
                )
                pending.append(_PendingHandoff(
                    session_id=session.session_id,
                    title_id=session.title_id,
                    from_node=node.node_id,
                    to_node=None,
                    at_chunk=boundary,
                    blocks_before=session.blocks_delivered,
                    detail=detail,
                ))
            if self._spans is not None and session.root_span is not None:
                at_time, _ = self._chunk_interval(session, boundary, chunks)
                span = self._spans.start_span(
                    "cluster.handoff",
                    at_time,
                    parent=session.root_span,
                    attrs={
                        "from": node.node_id,
                        "to": (
                            session.node_id
                            if session.reject is None else None
                        ),
                        "chunk": boundary,
                    },
                )
                self._spans.end_span(
                    span, at_time,
                    status="ok" if session.reject is None else "stranded",
                )
            if session.reject is not None:
                self._end_root(session, status="rejected")

    def _end_root(self, session: _ClusterSession, status: str) -> None:
        if self._spans is None or session.root_span is None:
            return
        self._spans.end_span(
            session.root_span,
            session.arrival + session.length,
            status=status,
        )
        session.root_span = None

    # -- result assembly ----------------------------------------------------------

    def _finalize(
        self,
        admitted: List[_ClusterSession],
        rejects: List[OpenSessionResponse],
        admission_order: List[Tuple[str, str]],
        per_node_results: Dict[str, List[ServeResult]],
        pending: List[_PendingHandoff],
        chunks: int,
    ) -> ClusterServeResult:
        for session in admitted:
            if session.state is SessionState.PLAYING:
                session.state = SessionState.COMPLETED
                node = self._by_id[session.node_id]
                node.active = max(node.active - 1, 0)
                self._end_root(
                    session,
                    status=(
                        "ok" if not (session.misses or session.skips)
                        else "degraded"
                    ),
                )
        by_session = {
            session.session_id: session for session in admitted
        }
        handoffs: List[HandoffRecord] = []
        for entry in pending:
            session = by_session[entry.session_id]
            clean = (
                entry.to_node is not None
                and session.state is SessionState.COMPLETED
                and session.glitches_after_handoff == 0
            )
            handoffs.append(HandoffRecord(
                session_id=entry.session_id,
                rope_id=entry.title_id,
                from_node=entry.from_node,
                to_node=entry.to_node,
                at_chunk=entry.at_chunk,
                blocks_before=entry.blocks_before,
                clean=clean,
                detail=entry.detail,
            ))
        clean_count = sum(1 for record in handoffs if record.clean)
        if clean_count:
            self._count("cluster.handoffs_clean", clean_count)
            for record in handoffs:
                if record.clean and record.to_node is not None:
                    self._count(
                        f"cluster.handoffs_clean.{record.to_node}"
                    )
        if self.obs is not None and self.obs.slo is not None:
            horizon = max(
                (s.arrival + s.length for s in admitted), default=0.0
            )
            self.obs.slo.finalize(horizon)
        statuses = tuple(
            self._sessions[sid].status()
            for sid in sorted(self._sessions)
        )
        return ClusterServeResult(
            statuses=statuses,
            rejects=tuple(rejects),
            per_node=tuple(
                NodeServeResult(
                    node_id=node.node_id,
                    results=tuple(per_node_results[node.node_id]),
                )
                for node in self.nodes
            ),
            nodes=tuple(node.status() for node in self.nodes),
            handoffs=tuple(handoffs),
            placement=self.placement.assignments,
            admission_order=tuple(admission_order),
            chunks=chunks,
        )
