"""One cluster node: a MediaServer owning its own drive array and cache.

A :class:`ClusterNode` wraps one :class:`repro.server.MediaServer`
(and, through it, a private drive, storage manager, rope server, block
cache, and §3.4 admission controller) behind the cluster-facing
concerns the router needs:

* the **title -> local rope** map — clients address catalog titles, the
  node resolves them to the rope it recorded its replica into;
* **admission slack** — how many more cluster sessions the node will
  accept per chunk epoch (the router's least-loaded choice reads this);
* **liveness** — a node killed by the cluster fault plan refuses all
  further work, and a :class:`repro.faults.FaultInjector` with an
  immediate HEAD_FAILURE is attached to its drive so any stray access
  fails fast rather than silently succeeding.

Nodes never talk to each other; all cross-node decisions (routing,
handoff) live in :class:`repro.cluster.MediaCluster`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api import NodeStatus, OpenSessionRequest, ServeResult
from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.errors import ParameterError
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.fs import MultimediaStorageManager
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer
from repro.server.media_server import MediaServer

from repro.cluster.placement import CatalogTitle

__all__ = ["ClusterNode", "build_node"]


class ClusterNode:
    """One shard of the cluster: a MediaServer plus routing metadata."""

    def __init__(
        self,
        node_id: str,
        server: MediaServer,
        capacity: int,
    ):
        if not node_id:
            raise ParameterError("node_id must be non-empty")
        if capacity < 1:
            raise ParameterError(
                f"node {node_id}: capacity must be >= 1, got {capacity}"
            )
        self.node_id = node_id
        self.server = server
        #: Cluster sessions the node accepts concurrently per epoch.
        self.capacity = capacity
        self.alive = True
        self.degraded = False
        #: Cluster sessions currently assigned here.
        self.active = 0
        #: title -> the node's local rope id for its replica.
        self.local_ropes: Dict[str, str] = {}
        #: MediaServer session ids already attributed to earlier calls
        #: (warm-ups included), so each serve's new statuses separate.
        self._seen_sessions: Set[str] = set()

    # -- catalog ------------------------------------------------------------------

    def record_title(
        self,
        title: CatalogTitle,
        clients: Sequence[str],
    ) -> str:
        """Record this node's replica of *title*; returns the rope id.

        Every replica records from the same deterministic frame source
        (``title_id`` itself), so two replicas of a title are
        bit-identical strands and a handed-off session resumes on
        exactly the content it left.
        """
        if title.title_id in self.local_ropes:
            raise ParameterError(
                f"node {self.node_id} already holds {title.title_id!r}"
            )
        frames = frames_for_duration(
            TESTBED_1991.video, title.seconds, source=title.title_id
        )
        request_id, rope_id = self.server.mrs.record(
            "librarian", frames=frames, play_access=tuple(clients)
        )
        self.server.mrs.stop(request_id)
        self.local_ropes[title.title_id] = rope_id
        return rope_id

    def rope_for(self, title_id: str) -> str:
        """The local rope holding *title_id* (KeyError if not a replica)."""
        return self.local_ropes[title_id]

    def holds(self, title_id: str) -> bool:
        """Whether this node stores a replica of *title_id*."""
        return title_id in self.local_ropes

    def title_duration(self, title_id: str) -> float:
        """Recorded duration of the node's replica of *title_id*."""
        return self.server.mrs.get_rope(self.rope_for(title_id)).duration

    def warm(self, title_id: str) -> ServeResult:
        """Play one warm-up session so the title's blocks go resident."""
        result, _ = self.serve([
            OpenSessionRequest(
                client_id="warmer",
                rope_id=self.rope_for(title_id),
                arrival=0.0,
                media=Media.VIDEO,
            )
        ])
        return result

    # -- routing state ------------------------------------------------------------

    def has_slack(self) -> bool:
        """Whether the router may admit one more session here."""
        return (
            self.alive and not self.degraded and self.active < self.capacity
        )

    def degrade(self) -> None:
        """Drain the node: finish current chunks, accept nothing new."""
        self.degraded = True

    def kill(self) -> None:
        """The node's mechanism dies; its drive fails all later access."""
        if not self.alive:
            return
        self.alive = False
        self.active = 0
        self.server.mrs.msm.drive.attach_injector(
            FaultInjector(
                FaultPlan(
                    [FaultSpec(kind=FaultKind.HEAD_FAILURE, at_op=0)]
                )
            )
        )

    def status(self) -> NodeStatus:
        """The node's cluster-addressed health snapshot."""
        return NodeStatus(
            node_id=self.node_id,
            alive=self.alive,
            degraded=self.degraded,
            sessions=self.active,
            titles=tuple(sorted(self.local_ropes)),
        )

    # -- serving ------------------------------------------------------------------

    def serve(
        self, requests: Sequence[OpenSessionRequest]
    ) -> Tuple[ServeResult, List]:
        """Serve one chunk epoch; returns (result, new statuses).

        The second element is the statuses of sessions this call
        created, in the MediaServer's admission order — the router
        matches them back to its cluster sessions.
        """
        if not self.alive:
            raise ParameterError(
                f"node {self.node_id} is dead and cannot serve"
            )
        result = self.server.serve(requests)
        fresh = [
            status
            for status in result.statuses
            if status.session_id not in self._seen_sessions
        ]
        self._seen_sessions.update(s.session_id for s in fresh)
        return result, fresh


def build_node(
    node_id: str,
    capacity: int,
    cache_blocks: int = 512,
    batch_window: float = 0.25,
    obs=None,
) -> ClusterNode:
    """A ClusterNode over a fresh testbed drive and storage manager."""
    profile = TESTBED_1991
    drive = build_drive()
    # Per-drive profiler rollups should distinguish the shards.
    drive.profile_label = f"{node_id}.drive"
    msm = MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
        obs=obs,
    )
    server = MediaServer(
        MultimediaRopeServer(msm),
        batch_window=batch_window,
        cache_blocks=cache_blocks,
        obs=obs,
    )
    return ClusterNode(node_id=node_id, server=server, capacity=capacity)
