"""Analytical stream-capacity bounds for a distributed VoD cluster.

Implements the theoretical bounds of *Scalable Distributed
Video-on-Demand* as the comparison baseline the measured cluster is
reported against:

* **Single-video bound** — a title with ``r_v`` replicas can never
  serve more than ``r_v * u`` concurrent streams (``u`` = per-node
  stream capacity, here the §3.4 admission limit or the cache-admission
  slack standing in for it).  No routing policy can beat this.
* **Full-catalog bound** — the whole cluster can never serve more than
  ``n * u`` concurrent streams across all titles.
* **Storage feasibility** — the catalog's total replica count must fit
  in ``n * per_node_titles`` strand slots.
* **Demand satisfiability** — a concrete demand vector (streams wanted
  per title) is servable iff the bipartite flow network
  *source -> title (cap demand_v) -> replica nodes (cap ∞) ->
  sink (cap u)* has a max flow equal to total demand.  This is the
  paper's matching argument; we compute it with a deterministic BFS
  Ford-Fulkerson, which is exact for these integral capacities.

All functions are pure and free of randomness, so the bounds land in
golden results byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ParameterError

from repro.cluster.placement import PlacementMap

__all__ = [
    "ClusterBounds",
    "bounds_for_placement",
    "demand_max_flow",
    "full_catalog_bound",
    "single_video_bound",
    "storage_feasible",
]


def single_video_bound(replicas: int, per_node_streams: int) -> int:
    """Max concurrent streams of one title: ``replicas * u``."""
    if replicas < 1:
        raise ParameterError(f"replicas must be >= 1, got {replicas}")
    if per_node_streams < 1:
        raise ParameterError(
            f"per_node_streams must be >= 1, got {per_node_streams}"
        )
    return replicas * per_node_streams


def full_catalog_bound(nodes: int, per_node_streams: int) -> int:
    """Max concurrent streams cluster-wide: ``n * u``."""
    if nodes < 1:
        raise ParameterError(f"nodes must be >= 1, got {nodes}")
    if per_node_streams < 1:
        raise ParameterError(
            f"per_node_streams must be >= 1, got {per_node_streams}"
        )
    return nodes * per_node_streams


def storage_feasible(
    total_replicas: int, nodes: int, per_node_titles: int
) -> bool:
    """Whether the replica set fits the cluster's strand slots."""
    if nodes < 1:
        raise ParameterError(f"nodes must be >= 1, got {nodes}")
    if per_node_titles < 1:
        raise ParameterError(
            f"per_node_titles must be >= 1, got {per_node_titles}"
        )
    return total_replicas <= nodes * per_node_titles


def demand_max_flow(
    placement: PlacementMap,
    demand: Mapping[str, int],
    per_node_streams: int,
) -> int:
    """Max satisfiable streams for a demand vector over a placement.

    Ford-Fulkerson with BFS (Edmonds-Karp) over the bipartite network
    *source -> title (cap demand) -> replica node (cap ∞) -> sink
    (cap u)*.  Node order and title order are the placement's, so the
    flow value and the augmenting sequence are deterministic.
    """
    if per_node_streams < 1:
        raise ParameterError(
            f"per_node_streams must be >= 1, got {per_node_streams}"
        )
    titles = [t for t in placement.titles() if demand.get(t, 0) > 0]
    for title, wanted in demand.items():
        if wanted < 0:
            raise ParameterError(
                f"demand for {title!r} must be >= 0, got {wanted}"
            )
        if wanted > 0 and not placement.has_title(title):
            raise ParameterError(
                f"demand names unplaced title {title!r}"
            )
    nodes: List[str] = []
    for title in titles:
        for node in placement.replicas(title):
            if node not in nodes:
                nodes.append(node)
    # Vertex numbering: 0 = source, 1..T = titles, T+1..T+N = nodes,
    # T+N+1 = sink.
    title_index = {t: 1 + i for i, t in enumerate(titles)}
    node_index = {n: 1 + len(titles) + i for i, n in enumerate(nodes)}
    sink = 1 + len(titles) + len(nodes)
    infinite = sum(demand.get(t, 0) for t in titles) + 1
    capacity: Dict[Tuple[int, int], int] = {}
    adjacency: Dict[int, List[int]] = {v: [] for v in range(sink + 1)}

    def add_edge(u: int, v: int, cap: int) -> None:
        capacity[(u, v)] = capacity.get((u, v), 0) + cap
        if v not in adjacency[u]:
            adjacency[u].append(v)
        if u not in adjacency[v]:
            adjacency[v].append(u)
        capacity.setdefault((v, u), 0)

    for title in titles:
        add_edge(0, title_index[title], int(demand[title]))
        for node in placement.replicas(title):
            add_edge(title_index[title], node_index[node], infinite)
    for node in nodes:
        add_edge(node_index[node], sink, per_node_streams)
    flow = 0
    while True:
        # BFS for the shortest augmenting path (deterministic: the
        # adjacency lists are built in placement order).
        parent: Dict[int, int] = {0: 0}
        queue = [0]
        while queue and sink not in parent:
            u = queue.pop(0)
            for v in adjacency[u]:
                if v not in parent and capacity[(u, v)] > 0:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            return flow
        bottleneck = infinite
        v = sink
        while v != 0:
            u = parent[v]
            bottleneck = min(bottleneck, capacity[(u, v)])
            v = u
        v = sink
        while v != 0:
            u = parent[v]
            capacity[(u, v)] -= bottleneck
            capacity[(v, u)] += bottleneck
            v = u
        flow += bottleneck


@dataclass(frozen=True)
class ClusterBounds:
    """The analytical envelope of one cluster configuration."""

    nodes: int
    per_node_streams: int
    full_catalog: int
    single_video: Tuple[Tuple[str, int], ...]
    total_replicas: int
    storage_ok: Optional[bool] = None
    demand_total: Optional[int] = None
    demand_satisfiable: Optional[int] = None

    def to_dict(self) -> Dict:
        return {
            "nodes": self.nodes,
            "per_node_streams": self.per_node_streams,
            "full_catalog": self.full_catalog,
            "single_video": {
                title: bound for title, bound in self.single_video
            },
            "total_replicas": self.total_replicas,
            "storage_ok": self.storage_ok,
            "demand_total": self.demand_total,
            "demand_satisfiable": self.demand_satisfiable,
        }


def bounds_for_placement(
    placement: PlacementMap,
    nodes: int,
    per_node_streams: int,
    per_node_titles: Optional[int] = None,
    demand: Optional[Mapping[str, int]] = None,
) -> ClusterBounds:
    """Every analytical bound for one placement, in one record.

    ``per_node_titles`` enables the storage-feasibility check;
    ``demand`` (streams wanted per title) enables the max-flow
    satisfiability bound.
    """
    counts = placement.replica_counts()
    single = tuple(
        (title, single_video_bound(counts[title], per_node_streams))
        for title in placement.titles()
    )
    total_replicas = sum(counts.values())
    storage_ok = (
        storage_feasible(total_replicas, nodes, per_node_titles)
        if per_node_titles is not None else None
    )
    demand_total = None
    demand_flow = None
    if demand is not None:
        demand_total = sum(int(v) for v in demand.values())
        demand_flow = demand_max_flow(
            placement, demand, per_node_streams
        )
    return ClusterBounds(
        nodes=nodes,
        per_node_streams=per_node_streams,
        full_catalog=full_catalog_bound(nodes, per_node_streams),
        single_video=single,
        total_replicas=total_replicas,
        storage_ok=storage_ok,
        demand_total=demand_total,
        demand_satisfiable=demand_flow,
    )
