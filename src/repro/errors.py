"""Exception hierarchy for the multimedia file system reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
install a single catch-all around file-system operations while still being
able to discriminate the interesting cases (admission rejection, continuity
violation, allocation failure) individually.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "InfeasibleError",
    "AdmissionError",
    "AdmissionRejected",
    "ContinuityViolation",
    "DiskError",
    "DiskFullError",
    "AllocationError",
    "ScatteringError",
    "AddressError",
    "DiskFaultError",
    "TransientReadError",
    "MediaDefectError",
    "HeadFailureError",
    "StorageError",
    "StrandError",
    "StrandImmutableError",
    "UnknownStrandError",
    "IndexCorruptionError",
    "RopeError",
    "UnknownRopeError",
    "IntervalError",
    "AccessDenied",
    "RequestError",
    "UnknownRequestError",
    "RequestStateError",
    "GarbageCollectionError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Analytical model errors
# ---------------------------------------------------------------------------

class ParameterError(ReproError, ValueError):
    """A model parameter is out of its physical domain (negative rate, ...)."""


class InfeasibleError(ReproError):
    """The continuity equations admit no solution for the given hardware.

    Raised, for example, when asked for a scattering bound on a device whose
    transfer rate cannot keep up with the recording rate at any granularity
    (the paper's HDTV-on-a-1991-disk-array scenario).
    """


class AdmissionError(ReproError):
    """Base class for admission-control failures."""


class AdmissionRejected(AdmissionError):
    """A new request was refused because it would violate continuity.

    Carries the number of active requests and the computed maximum so the
    caller (or test) can verify the refusal happened at the analytic limit.
    """

    def __init__(self, message: str, active: int = 0, n_max: int = 0):
        super().__init__(message)
        self.active = active
        self.n_max = n_max


class ContinuityViolation(ReproError):
    """A media block missed its playback deadline during simulation."""

    def __init__(self, message: str, request_id: object = None,
                 block_number: int = -1, lateness: float = 0.0):
        super().__init__(message)
        self.request_id = request_id
        self.block_number = block_number
        self.lateness = lateness


# ---------------------------------------------------------------------------
# Disk substrate errors
# ---------------------------------------------------------------------------

class DiskError(ReproError):
    """Base class for simulated-disk failures."""


class DiskFullError(DiskError):
    """No free space satisfies the request at all."""


class AllocationError(DiskError):
    """Free space exists but cannot satisfy the placement constraints."""


class ScatteringError(AllocationError):
    """No placement satisfies the scattering bounds [l_lower, l_upper]."""


class AddressError(DiskError, ValueError):
    """A sector/cylinder address is outside the disk geometry."""


class DiskFaultError(DiskError):
    """Base class for injected/simulated hardware faults.

    ``elapsed`` is the simulated time the failed access consumed before
    the fault surfaced (a CRC failure is only known after the full
    transfer); recovery layers must charge it to their clocks.
    """

    def __init__(self, message: str, slot: int = -1, elapsed: float = 0.0):
        super().__init__(message)
        self.slot = slot
        self.elapsed = elapsed


class TransientReadError(DiskFaultError):
    """A single access failed (soft error); an immediate retry may succeed."""


class MediaDefectError(DiskFaultError):
    """A latent sector error: the slot's media is bad and stays bad.

    Retrying the same slot is futile; recovery must skip or relocate the
    block.
    """


class HeadFailureError(DiskFaultError):
    """A whole mechanism (one head of an array) failed permanently.

    Every subsequent access to the drive fails fast; service must degrade
    to the surviving heads and revalidate admission.
    """

    def __init__(
        self,
        message: str,
        slot: int = -1,
        elapsed: float = 0.0,
        drive_index: int = 0,
    ):
        super().__init__(message, slot=slot, elapsed=elapsed)
        self.drive_index = drive_index


# ---------------------------------------------------------------------------
# Storage-manager (MSM) errors
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for Multimedia Storage Manager failures."""


class StrandError(StorageError):
    """Base class for strand-level failures."""


class StrandImmutableError(StrandError):
    """An attempt was made to mutate a finalized (immutable) strand."""


class UnknownStrandError(StrandError, KeyError):
    """The referenced strand ID does not exist (or was garbage collected)."""


class IndexCorruptionError(StrandError):
    """The 3-level block index failed an internal consistency check."""


# ---------------------------------------------------------------------------
# Rope-server (MRS) errors
# ---------------------------------------------------------------------------

class RopeError(ReproError):
    """Base class for Multimedia Rope Server failures."""


class UnknownRopeError(RopeError, KeyError):
    """The referenced rope ID does not exist."""


class IntervalError(RopeError, ValueError):
    """An edit interval is empty, inverted, or outside the rope's extent."""


class AccessDenied(RopeError, PermissionError):
    """The user lacks Play or Edit access to the rope."""


# ---------------------------------------------------------------------------
# Request lifecycle errors
# ---------------------------------------------------------------------------

class RequestError(ReproError):
    """Base class for PLAY/RECORD request-lifecycle failures."""


class UnknownRequestError(RequestError, KeyError):
    """The referenced request ID does not exist."""


class RequestStateError(RequestError):
    """The operation is invalid in the request's current state.

    For example RESUME on a request that was never paused, or STOP on a
    request that already completed.
    """


class GarbageCollectionError(StorageError):
    """An interest (reference-count) invariant was violated."""


# ---------------------------------------------------------------------------
# Simulation errors
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency (time reversal,
    deadlocked processes, event scheduled in the past)."""
