"""Per-session block lifecycle timelines.

Every media block a service loop touches moves through a fixed lifecycle
(``enqueued → read-start → read-done → consumed | skipped``), each stage
stamped with **simulated** time.  A :class:`SessionTimeline` records
those transitions per ``(session, block)`` pair and derives the
per-session telemetry the admission analysis needs to defend itself:
inter-arrival jitter, consumption counts, and the conservation law
``consumed + skipped == enqueued`` that proves no block was silently
lost between admission and the display device.

Timestamps come from the simulation clock, so a timeline is exactly
reproducible under a fixed seed; :meth:`SessionTimeline.validate`
machine-checks the well-ordering invariants the property tests rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ParameterError, SimulationError

__all__ = ["BlockStage", "TimelineEvent", "SessionTimeline"]


class BlockStage(enum.Enum):
    """Lifecycle stages of one media block, in order."""

    ENQUEUED = "enqueued"
    READ_START = "read-start"
    READ_DONE = "read-done"
    CONSUMED = "consumed"
    SKIPPED = "skipped"


#: Lifecycle position of each stage (CONSUMED and SKIPPED are the two
#: mutually exclusive terminals).
_STAGE_ORDER = {
    BlockStage.ENQUEUED: 0,
    BlockStage.READ_START: 1,
    BlockStage.READ_DONE: 2,
    BlockStage.CONSUMED: 3,
    BlockStage.SKIPPED: 3,
}

_TERMINALS = (BlockStage.CONSUMED, BlockStage.SKIPPED)


@dataclass(frozen=True)
class TimelineEvent:
    """One lifecycle transition of one block."""

    time: float
    session_id: str
    block_index: int
    stage: BlockStage

    def __str__(self) -> str:
        return (
            f"[{self.time:12.6f}] {self.session_id:<10} "
            f"block {self.block_index:<6d} {self.stage.value}"
        )


class SessionTimeline:
    """Records block lifecycle events for any number of sessions.

    Parameters
    ----------
    enabled:
        When False, :meth:`record` is a no-op (the null-observer
        pattern; see :mod:`repro.obs.registry`).
    keep_first / every_kth:
        Per-block sampling for large scenarios: blocks with index below
        ``keep_first`` always record, then every ``every_kth``-th block.
        The gate is purely index-based, so a sampled block keeps *all*
        of its lifecycle stages and the conservation law still holds on
        the sample.  Both None (the default) records every block.
    summary_sessions:
        Cap on fully-listed sessions in :meth:`summary_dict`; sessions
        beyond the cap collapse into one ``"~aggregate"`` entry (``~``
        sorts after session ids in sorted-key JSON).  None lists all.
    """

    def __init__(
        self,
        enabled: bool = True,
        keep_first: Optional[int] = None,
        every_kth: Optional[int] = None,
        summary_sessions: Optional[int] = None,
    ):
        if keep_first is not None and keep_first < 0:
            raise ParameterError(
                f"keep_first must be >= 0, got {keep_first}"
            )
        if every_kth is not None and every_kth < 1:
            raise ParameterError(
                f"every_kth must be >= 1, got {every_kth}"
            )
        if summary_sessions is not None and summary_sessions < 1:
            raise ParameterError(
                f"summary_sessions must be >= 1, got {summary_sessions}"
            )
        self.enabled = enabled
        self.keep_first = keep_first
        self.every_kth = every_kth
        self.summary_sessions = summary_sessions
        self._events: List[TimelineEvent] = []

    # -- recording ---------------------------------------------------------------

    def samples(self, block_index: int) -> bool:
        """Whether events for *block_index* are recorded.

        The service loop inlines this predicate on its hot path; this
        method is the reference definition the tests pin.
        """
        keep = self.keep_first
        if keep is None or block_index < keep:
            return True
        every = self.every_kth
        return every is not None and block_index % every == 0

    def record(
        self,
        time: float,
        session_id: str,
        block_index: int,
        stage: BlockStage,
    ) -> None:
        """Append one lifecycle event (no-op when disabled/sampled out)."""
        if not self.enabled:
            return
        keep = self.keep_first
        if keep is not None and block_index >= keep:
            every = self.every_kth
            if every is None or block_index % every:
                return
        self._events.append(
            TimelineEvent(time, session_id, block_index, stage)
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self._events)

    # -- queries -----------------------------------------------------------------

    def sessions(self) -> List[str]:
        """All session IDs seen, sorted."""
        return sorted({event.session_id for event in self._events})

    def events(
        self,
        session_id: Optional[str] = None,
        block_index: Optional[int] = None,
        stage: Optional[BlockStage] = None,
    ) -> List[TimelineEvent]:
        """Events matching the given filters, in recording order."""
        return [
            event
            for event in self._events
            if (session_id is None or event.session_id == session_id)
            and (block_index is None or event.block_index == block_index)
            and (stage is None or event.stage == stage)
        ]

    def stage_counts(self, session_id: str) -> Dict[str, int]:
        """Events per stage for one session (keys are stage values)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            if event.session_id != session_id:
                continue
            key = event.stage.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def read_done_times(self, session_id: str) -> List[float]:
        """Block arrival times for one session, in block order."""
        arrivals = [
            (event.block_index, event.time)
            for event in self._events
            if event.session_id == session_id
            and event.stage is BlockStage.READ_DONE
        ]
        return [time for _index, time in sorted(arrivals)]

    def interarrival_jitter(self, session_id: str) -> float:
        """Peak-to-peak spread of successive block arrival gaps, seconds.

        The §3.3.2 anti-jitter buffering exists to absorb exactly this
        spread; 0.0 for sessions with fewer than three arrivals.
        """
        times = self.read_done_times(session_id)
        if len(times) < 3:
            return 0.0
        gaps = [b - a for a, b in zip(times, times[1:])]
        return max(gaps) - min(gaps)

    # -- invariants --------------------------------------------------------------

    def validate(self) -> None:
        """Machine-check the lifecycle invariants; raises on violation.

        * per-block event times are monotonically non-decreasing;
        * stages appear in lifecycle order, starting at ``enqueued``;
        * at most one terminal (``consumed`` xor ``skipped``) per block.
        """
        per_block: Dict[Tuple[str, int], List[TimelineEvent]] = {}
        for event in self._events:
            per_block.setdefault(
                (event.session_id, event.block_index), []
            ).append(event)
        for (session_id, block_index), events in per_block.items():
            label = f"{session_id} block {block_index}"
            if events[0].stage is not BlockStage.ENQUEUED:
                raise SimulationError(
                    f"{label}: first event is {events[0].stage.value}, "
                    "not enqueued"
                )
            terminals = 0
            for previous, current in zip(events, events[1:]):
                if current.time < previous.time:
                    raise SimulationError(
                        f"{label}: time reversed "
                        f"({previous.time} -> {current.time})"
                    )
                if (
                    _STAGE_ORDER[current.stage]
                    < _STAGE_ORDER[previous.stage]
                ):
                    raise SimulationError(
                        f"{label}: stage {current.stage.value} after "
                        f"{previous.stage.value}"
                    )
            for event in events:
                if event.stage in _TERMINALS:
                    terminals += 1
            if terminals > 1:
                raise SimulationError(
                    f"{label}: {terminals} terminal events (consumed/"
                    "skipped must be exclusive)"
                )

    def conservation_holds(self, session_id: str) -> bool:
        """True iff ``consumed + skipped == enqueued`` for the session."""
        counts = self.stage_counts(session_id)
        return counts.get("consumed", 0) + counts.get("skipped", 0) == (
            counts.get("enqueued", 0)
        )

    # -- serialization -----------------------------------------------------------

    def summary_dict(self) -> Dict[str, Dict]:
        """Per-session telemetry for snapshot embedding (deterministic).

        With ``summary_sessions`` set, only the first N session ids (in
        sorted order) are listed individually; the tail collapses into a
        single ``"~aggregate"`` entry with summed stage counts, so hot
        scenarios with dozens of sessions produce goldens of bounded
        size.
        """
        summary: Dict[str, Dict] = {}
        session_ids = self.sessions()
        cap = self.summary_sessions
        listed = session_ids if cap is None else session_ids[:cap]
        for session_id in listed:
            counts = self.stage_counts(session_id)
            summary[session_id] = {
                "stages": counts,
                "interarrival_jitter_s": self.interarrival_jitter(
                    session_id
                ),
                "conserved": self.conservation_holds(session_id),
            }
        rest = session_ids[len(listed):]
        if rest:
            stages: Dict[str, int] = {}
            conserved = True
            jitter = 0.0
            for session_id in rest:
                for key, count in self.stage_counts(session_id).items():
                    stages[key] = stages.get(key, 0) + count
                conserved = conserved and self.conservation_holds(
                    session_id
                )
                jitter = max(jitter, self.interarrival_jitter(session_id))
            summary["~aggregate"] = {
                "sessions": len(rest),
                "stages": stages,
                "interarrival_jitter_s": jitter,
                "conserved": conserved,
            }
        return summary

    def render(self, session_id: Optional[str] = None, last: int = 50) -> str:
        """Human-readable tail of one session's (or all) events."""
        events = self.events(session_id=session_id)
        return "\n".join(str(event) for event in events[-last:])
