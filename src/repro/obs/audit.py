"""The admission audit log: every admit/reject/revalidate, with proof.

The §3.4 admission controller's verdicts are inequalities over the
(α, β, γ) service parameters; a bare "rejected" tells an operator
nothing.  Each :class:`AuditEntry` therefore carries the *exact
inequality* the decision turned on (as a Python expression) together
with every operand's value at decision time, so

* a rejected session shows **which** constraint failed and by how much;
* tests can re-evaluate the logged expression against the logged
  operands (:meth:`AuditEntry.evaluate`) and confirm the decision was
  arithmetically honest;
* a degraded-mode ``revalidate`` entry records the shrunk ``n_max`` the
  surviving hardware supports.

Entries are sequence-numbered (admission happens outside simulated
time), immutable, and serialized in order — deterministic under a fixed
workload like everything else in :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ParameterError

__all__ = ["AuditEntry", "AdmissionAuditLog"]

#: The decisions an entry may record.
_DECISIONS = ("admit", "reject", "revalidate")


@dataclass(frozen=True)
class AuditEntry:
    """One admission-control decision with its governing inequality.

    Attributes
    ----------
    sequence:
        Position in the log (0-based).
    decision:
        ``admit``, ``reject``, or ``revalidate``.
    subject:
        What was being decided (candidate description, request id, or
        the degrade trigger).
    constraint:
        The inequality that must hold for the request to proceed, as a
        Python expression over the operand names (e.g.
        ``"gamma - n * beta > epsilon * gamma"``).
    operands:
        Name → value pairs, sorted by name, capturing every variable the
        constraint references (extra context values are allowed).
    satisfied:
        Whether the constraint held — False on every reject.
    detail:
        Free-form context (the k chosen, the n_max computed, ...).
    """

    sequence: int
    decision: str
    subject: str
    constraint: str
    operands: Tuple[Tuple[str, float], ...]
    satisfied: bool
    detail: str = ""

    def operand(self, name: str) -> float:
        """The logged value of one operand (raises if absent)."""
        for key, value in self.operands:
            if key == name:
                return value
        raise ParameterError(
            f"audit entry {self.sequence} has no operand {name!r}"
        )

    def evaluate(self) -> bool:
        """Recompute the constraint from the logged operands.

        The expression is evaluated with no builtins and only the logged
        operands in scope, so the result is a pure function of the entry
        — the audit tests assert it matches :attr:`satisfied`.
        """
        scope = {name: value for name, value in self.operands}
        return bool(eval(self.constraint, {"__builtins__": {}}, scope))

    def as_dict(self) -> Dict:
        """JSON-ready rendering (stable key order via sorted operands)."""
        return {
            "sequence": self.sequence,
            "decision": self.decision,
            "subject": self.subject,
            "constraint": self.constraint,
            "operands": {name: value for name, value in self.operands},
            "satisfied": self.satisfied,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        verdict = "ok" if self.satisfied else "FAILED"
        terms = ", ".join(
            f"{name}={value!r}" for name, value in self.operands
        )
        return (
            f"#{self.sequence:<4d} {self.decision:<10} {self.subject:<18} "
            f"{self.constraint} [{verdict}] ({terms})"
            + (f" -- {self.detail}" if self.detail else "")
        )


class AdmissionAuditLog:
    """Ordered log of admission-control decisions.

    Parameters
    ----------
    enabled:
        When False, :meth:`record` is a no-op (null-observer pattern).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: List[AuditEntry] = []

    def record(
        self,
        decision: str,
        subject: str,
        constraint: str,
        operands: Mapping[str, float],
        satisfied: bool,
        detail: str = "",
    ) -> Optional[AuditEntry]:
        """Append one decision; returns the entry (None when disabled)."""
        if not self.enabled:
            return None
        if decision not in _DECISIONS:
            raise ParameterError(
                f"unknown audit decision {decision!r}; "
                f"expected one of {_DECISIONS}"
            )
        entry = AuditEntry(
            sequence=len(self._entries),
            decision=decision,
            subject=subject,
            constraint=constraint,
            operands=tuple(sorted(
                (name, float(value)) for name, value in operands.items()
            )),
            satisfied=satisfied,
            detail=detail,
        )
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self._entries)

    def entries(self, decision: Optional[str] = None) -> List[AuditEntry]:
        """All entries, optionally filtered by decision kind."""
        if decision is None:
            return list(self._entries)
        return [e for e in self._entries if e.decision == decision]

    def admits(self) -> List[AuditEntry]:
        """Successful admissions."""
        return self.entries("admit")

    def rejects(self) -> List[AuditEntry]:
        """Refused admissions (their constraints evaluate False)."""
        return self.entries("reject")

    def revalidations(self) -> List[AuditEntry]:
        """Degraded-mode capacity revalidations."""
        return self.entries("revalidate")

    def last(self) -> Optional[AuditEntry]:
        """Most recent entry, or None."""
        return self._entries[-1] if self._entries else None

    def as_dicts(self) -> List[Dict]:
        """JSON-ready rendering of the whole log, in order."""
        return [entry.as_dict() for entry in self._entries]

    def render(self) -> str:
        """Human-readable log, one line per decision."""
        return "\n".join(str(entry) for entry in self._entries)
