"""Causal span tracing over simulated time.

A request that crosses the whole stack — MediaServer queue, batch
admission, the MRS↔MSM :class:`~repro.service.rpc.RpcChannel`, the
round-robin service loop, and the (cached) drive — leaves one *trace*: a
tree of :class:`Span` records, each covering a simulated-time interval
and pointing at its parent.  The tracer answers the question the
per-layer metrics cannot: *why* was this session rejected, *where* did
this block's deadline slack go.

Everything is deterministic.  Timestamps are simulation clock readings
(never wall clock); trace ids derive from ``crc32(seed / session key)``
and span ids append a global creation sequence number, so the same seed
produces byte-identical traces and exports.

Context crosses component boundaries *explicitly*: a span's
:meth:`Span.wire` form is a plain dict (``trace_id`` / ``span_id`` /
``time`` / ``session``) that RPC layers marshal like any other argument;
:meth:`SpanTracer.start_span` accepts either a live :class:`Span` or
such a wire dict as the parent.  For layers that cannot thread a
parameter (the playback session building stream plans from request ids),
:meth:`SpanTracer.bind` registers a context under a key —
``context_for`` returns it downstream.

Overflow mirrors :class:`repro.sim.trace.Tracer`: past ``limit`` spans,
new spans are dropped (counted in :attr:`SpanTracer.dropped_count`) so
existing parent chains stay intact, or :class:`SimulationError` is
raised in ``strict`` mode.  ``block_keep_first`` / ``block_every_kth``
are the per-block sampling knobs the service loop consults so tracing a
million-block run stays affordable.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ParameterError, SimulationError

__all__ = ["Span", "SpanTracer"]

#: Parent references accepted by :meth:`SpanTracer.start_span`.
ParentRef = Union["Span", Dict[str, object], None]


class Span:
    """One timed operation inside a trace.

    ``end`` is None while the span is open; ``status`` is ``"ok"`` until
    :meth:`SpanTracer.end_span` says otherwise.  ``attrs`` is a small
    plain dict of JSON-able values (block index, slot, reject reason).
    """

    __slots__ = (
        "span_id", "trace_id", "parent_id", "name", "session",
        "start", "end", "status", "attrs",
    )

    def __init__(
        self,
        span_id: str,
        trace_id: str,
        parent_id: Optional[str],
        name: str,
        session: Optional[str],
        start: float,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.session = session
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        """Simulated seconds covered (0.0 while the span is open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def wire(self, time: float) -> Dict[str, object]:
        """The marshalled context a component sends across a boundary."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "time": float(time),
            "session": self.session,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (deterministic field set)."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "session": self.session,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"start={self.start:.6f}, end={self.end}, "
            f"status={self.status!r})"
        )


class SpanTracer:
    """Deterministic span store with explicit context propagation.

    Parameters
    ----------
    enabled:
        When False, :meth:`start_span` returns None at near-zero cost
        (the null-observer pattern every layer guards with).
    seed:
        Folded into every trace id, so distinct scenario seeds produce
        distinct — but reproducible — id spaces.
    limit:
        Maximum retained spans.  Beyond it new spans are *dropped* (the
        newest, so recorded parent chains never dangle) and counted.
    strict:
        When True, exceeding *limit* raises :class:`SimulationError`
        instead of dropping.
    block_keep_first / block_every_kth:
        Per-block sampling the service loop consults (see
        :meth:`samples_block`): block indexes below ``block_keep_first``
        are always traced, then every ``block_every_kth``-th.  Both None
        (the default) traces every block.
    """

    def __init__(
        self,
        enabled: bool = True,
        seed: int = 0,
        limit: int = 100_000,
        strict: bool = False,
        block_keep_first: Optional[int] = None,
        block_every_kth: Optional[int] = None,
    ):
        if limit < 1:
            raise ParameterError(f"limit must be >= 1, got {limit}")
        if block_keep_first is not None and block_keep_first < 0:
            raise ParameterError(
                f"block_keep_first must be >= 0, got {block_keep_first}"
            )
        if block_every_kth is not None and block_every_kth < 1:
            raise ParameterError(
                f"block_every_kth must be >= 1, got {block_every_kth}"
            )
        self.enabled = enabled
        self.seed = seed
        self.limit = limit
        self.strict = strict
        self.block_keep_first = block_keep_first
        self.block_every_kth = block_every_kth
        self.dropped = 0
        self._spans: List[Span] = []
        self._by_id: Dict[str, Span] = {}
        self._sequence = 0
        self._trace_ids: Dict[str, str] = {}
        self._trace_last_end: Dict[str, float] = {}
        self._bindings: Dict[str, Span] = {}

    # -- identity ---------------------------------------------------------------

    @property
    def dropped_count(self) -> int:
        """Spans lost to the limit (0 means the trace is complete)."""
        return self.dropped

    def trace_id_for(self, key: str) -> str:
        """The deterministic trace id for a session/root key."""
        cached = self._trace_ids.get(key)
        if cached is None:
            digest = zlib.crc32(f"{self.seed}/{key}".encode("utf-8"))
            cached = self._trace_ids[key] = format(digest, "08x")
        return cached

    # -- recording --------------------------------------------------------------

    def start_span(
        self,
        name: str,
        time: float,
        parent: ParentRef = None,
        session: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Optional[Span]:
        """Open a span; returns None when disabled or dropped.

        *parent* is a live :class:`Span`, a :meth:`Span.wire` dict from
        across a boundary, or None (a new root).  Roots derive their
        trace id from *session* (falling back to *name* for
        control-plane spans with no session).
        """
        if not self.enabled:
            return None
        if len(self._spans) >= self.limit:
            if self.strict:
                raise SimulationError(
                    f"strict span tracer overflowed its {self.limit}-span "
                    f"limit at [{time:.6f}] {name}"
                )
            self.dropped += 1
            return None
        if parent is None:
            parent_id = None
            trace_id = self.trace_id_for(session if session else name)
        elif isinstance(parent, Span):
            parent_id = parent.span_id
            trace_id = parent.trace_id
            if session is None:
                session = parent.session
        else:
            parent_id = str(parent["span_id"])
            trace_id = str(parent["trace_id"])
            if session is None:
                raw = parent.get("session")
                session = str(raw) if raw is not None else None
        self._sequence += 1
        span = Span(
            span_id=f"{trace_id}:{self._sequence:06d}",
            trace_id=trace_id,
            parent_id=parent_id,
            name=name,
            session=session,
            start=time,
            attrs=attrs,
        )
        self._spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end_span(
        self,
        span: Optional[Span],
        time: float,
        status: str = "ok",
    ) -> None:
        """Close *span* (tolerates None and already-closed spans)."""
        if span is None or span.end is not None:
            return
        span.end = time
        span.status = status
        last = self._trace_last_end.get(span.trace_id)
        if last is None or time > last:
            self._trace_last_end[span.trace_id] = time

    def latest_end(self, trace_id: str, default: float = 0.0) -> float:
        """The latest close time recorded for *trace_id*."""
        return self._trace_last_end.get(trace_id, default)

    # -- context registry --------------------------------------------------------

    def bind(self, key: str, span: Span) -> None:
        """Register *span* as the ambient context for *key*."""
        self._bindings[key] = span

    def unbind(self, key: str) -> None:
        """Drop the binding for *key* (no-op when absent)."""
        self._bindings.pop(key, None)

    def context_for(self, key: str) -> Optional[Span]:
        """The span bound to *key*, or None."""
        return self._bindings.get(key)

    # -- sampling ---------------------------------------------------------------

    def samples_block(self, block_index: int) -> bool:
        """Whether per-block spans are recorded for *block_index*.

        The service loop inlines this predicate on its hot path; the
        method is the reference definition the tests pin.
        """
        keep = self.block_keep_first
        if keep is None or block_index < keep:
            return True
        every = self.block_every_kth
        return every is not None and block_index % every == 0

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def span(self, span_id: str) -> Optional[Span]:
        """Look up one span by id."""
        return self._by_id.get(span_id)

    def spans(
        self,
        name: Optional[str] = None,
        trace_id: Optional[str] = None,
        session: Optional[str] = None,
    ) -> List[Span]:
        """Spans matching the filters, in creation order."""
        return [
            span
            for span in self._spans
            if (name is None or span.name == name)
            and (trace_id is None or span.trace_id == trace_id)
            and (session is None or span.session == session)
        ]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span*, in creation order."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def roots_of(self, trace_id: str) -> List[Span]:
        """Parentless spans of one trace."""
        return [
            s for s in self._spans
            if s.trace_id == trace_id and s.parent_id is None
        ]

    def trace_is_connected(self, trace_id: str) -> bool:
        """True when the trace is a single tree: exactly one root, and
        every other span's parent present in the store."""
        members = [s for s in self._spans if s.trace_id == trace_id]
        if not members:
            return False
        ids = {s.span_id for s in members}
        roots = 0
        for span in members:
            if span.parent_id is None:
                roots += 1
            elif span.parent_id not in ids:
                return False
        return roots == 1

    # -- serialization -----------------------------------------------------------

    def summary_dict(self) -> Dict[str, object]:
        """Compact deterministic rollup for snapshot embedding.

        Kept intentionally small (counts, not span listings) so golden
        snapshots stay readable; the full span store is exported through
        :meth:`to_chrome_trace` instead.
        """
        by_name: Dict[str, int] = {}
        open_spans = 0
        orphans = 0
        for span in self._spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
            if span.end is None:
                open_spans += 1
            if (
                span.parent_id is not None
                and span.parent_id not in self._by_id
            ):
                orphans += 1
        return {
            "count": len(self._spans),
            "open": open_spans,
            "orphans": orphans,
            "dropped": self.dropped,
            "strict": self.strict,
            "traces": len({s.trace_id for s in self._spans}),
            "by_name": dict(sorted(by_name.items())),
        }

    def to_chrome_trace(self) -> Dict[str, object]:
        """The span store as a Chrome trace-event document.

        Loadable in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``: one thread lane per trace (named after its
        session when it has one), ``"X"`` complete events with
        microsecond timestamps, parents rendered by interval nesting.
        Open spans export with zero duration at their start time.
        """
        lane_of: Dict[str, int] = {}
        lane_name: Dict[int, str] = {}
        events: List[Dict[str, object]] = []
        for span in self._spans:
            lane = lane_of.get(span.trace_id)
            if lane is None:
                lane = lane_of[span.trace_id] = len(lane_of) + 1
                lane_name[lane] = (
                    span.session if span.session is not None
                    else span.name
                )
        for lane, name in sorted(lane_name.items()):
            events.append({
                "ph": "M",
                "pid": 1,
                "tid": lane,
                "name": "thread_name",
                "args": {"name": name},
            })
        for span in self._spans:
            end = span.end if span.end is not None else span.start
            args: Dict[str, object] = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                "status": span.status,
            }
            for key in sorted(span.attrs):
                args[key] = span.attrs[key]
            events.append({
                "ph": "X",
                "pid": 1,
                "tid": lane_of[span.trace_id],
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": round(span.start * 1e6, 3),
                "dur": round((end - span.start) * 1e6, 3),
                "args": args,
            })
        return {
            "displayTimeUnit": "ms",
            "traceEvents": events,
            "otherData": {
                "clock": "simulated",
                "seed": self.seed,
                "spans": len(self._spans),
                "dropped": self.dropped,
            },
        }
