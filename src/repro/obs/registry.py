"""The metrics registry: counters, gauges, histograms, and timers.

Components register named instruments into one :class:`MetricsRegistry`
and the registry serializes the whole population to **stable, sorted
JSON** (:meth:`MetricsRegistry.snapshot`).  Under a fixed seed every
instrument's value is a pure function of the simulated workload, so two
identical runs yield byte-identical snapshots — the property the golden
regression tests pin down.

Two deliberate asymmetries keep the registry honest:

* **Disabled registries cost (almost) nothing.**  A registry constructed
  with ``enabled=False`` hands out shared null instruments whose methods
  are no-ops; hot paths additionally guard on ``observer is None`` so the
  default (no observer attached) adds a single attribute test.
* **Wall-clock profiling never leaks into snapshots by default.**
  :class:`ProfileTimer` records real elapsed seconds (useful live), but
  ``snapshot()`` serializes only the deterministic call counts unless
  ``include_profile=True`` is requested — wall time would break the
  byte-stability contract.
"""

from __future__ import annotations

import json
import time as _time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ProfileTimer",
    "MetricsRegistry",
    "DEADLINE_SLACK_BUCKETS",
    "SEEK_TIME_BUCKETS",
    "ROUND_UTILIZATION_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "BATCH_SIZE_BUCKETS",
]

#: Deadline slack (deadline − arrival), seconds: negative is a miss.
DEADLINE_SLACK_BUCKETS: Tuple[float, ...] = (
    -1.0, -0.1, -0.01, 0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)
#: Per-access seek time, seconds (testbed full stroke is tens of ms).
SEEK_TIME_BUCKETS: Tuple[float, ...] = (
    0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
)
#: Round duration over its continuity budget (≤ 1.0 keeps Eq. 11).
ROUND_UTILIZATION_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.5, 2.0,
)
#: Concurrently serviced streams per round.
QUEUE_DEPTH_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)
#: Sessions admitted together per admission batch (1 = unbatched).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time numeric value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram.

    ``buckets`` are ascending upper bounds: an observation lands in the
    first bucket whose bound is >= the value, or in ``overflow`` when it
    exceeds the last bound.  Invariant (property-tested):
    ``sum(counts) + overflow == count``.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "count", "total")

    def __init__(self, name: str, buckets: Iterable[float]):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ParameterError(f"histogram {name!r} needs >= 1 bucket")
        if list(bounds) != sorted(bounds):
            raise ParameterError(
                f"histogram {name!r} buckets must ascend: {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        index = bisect_left(self.buckets, value)
        if index < len(self.counts):
            self.counts[index] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate.

        Returns the smallest bucket upper bound covering at least
        fraction *q* of the samples — ``inf`` when the quantile lands in
        the overflow region, None when the histogram is empty.  The
        estimate is exact to bucket granularity and fully deterministic.
        """
        if not 0.0 < q <= 1.0:
            raise ParameterError(f"quantile q must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                return bound
        return float("inf")


class ProfileTimer:
    """A lightweight profiling hook: call count + wall seconds.

    Usable as a context manager (what :meth:`MetricsRegistry.timed`
    returns).  Only ``calls`` is deterministic; ``wall_seconds`` exists
    for live diagnosis and is excluded from default snapshots.
    """

    __slots__ = ("name", "calls", "wall_seconds", "_entered")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.wall_seconds = 0.0
        self._entered = 0.0

    def __enter__(self) -> "ProfileTimer":
        self.calls += 1
        self._entered = _time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self.wall_seconds += _time.perf_counter() - self._entered


class _NullInstrument:
    """Shared no-op instrument handed out by disabled registries."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    overflow = 0
    total = 0.0
    mean = 0.0
    calls = 0
    wall_seconds = 0.0
    buckets: Tuple[float, ...] = ()
    counts: List[int] = []

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *_exc) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments with a byte-stable JSON serialization.

    Parameters
    ----------
    enabled:
        When False (the default for observers nobody attached), every
        ``counter``/``gauge``/``histogram``/``timer`` call returns a
        shared null instrument and ``snapshot()`` reports an empty
        registry.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, ProfileTimer] = {}

    # -- instrument registration ------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Iterable[float]
    ) -> Histogram:
        """Get or create the histogram *name* with fixed *buckets*.

        Re-registering an existing histogram with different buckets is an
        error — bucket layout is part of the metric's identity.
        """
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        elif instrument.buckets != tuple(float(b) for b in buckets):
            raise ParameterError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}"
            )
        return instrument

    def timer(self, name: str) -> ProfileTimer:
        """Get or create the profiling timer *name*."""
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = ProfileTimer(name)
        return instrument

    def timed(self, name: str) -> Union[ProfileTimer, _NullInstrument]:
        """Context manager timing one code section (no-op when disabled).

        Usage::

            with registry.timed("service.run"):
                ...
        """
        return self.timer(name)

    # -- read-only access --------------------------------------------------------

    def peek_counter(self, name: str) -> Optional[int]:
        """The counter's value, or None when it was never registered.

        Unlike :meth:`counter` this never creates the instrument, so
        derived evaluators (the SLO monitor) can probe without changing
        what a snapshot contains.
        """
        instrument = self._counters.get(name)
        return None if instrument is None else instrument.value

    def peek_histogram(self, name: str) -> Optional[Histogram]:
        """The histogram instrument, or None when never registered."""
        return self._histograms.get(name)

    # -- serialization -----------------------------------------------------------

    def snapshot_dict(self, include_profile: bool = False) -> Dict:
        """The registry as a plain, JSON-ready dict (deterministic).

        Timers serialize only their call counts unless *include_profile*
        — wall seconds are not reproducible across runs.
        """
        histograms = {}
        for name, hist in self._histograms.items():
            histograms[name] = {
                "buckets": list(hist.buckets),
                "counts": list(hist.counts),
                "overflow": hist.overflow,
                "count": hist.count,
                "sum": hist.total,
            }
        timers: Dict[str, Dict[str, float]] = {}
        for name, timer in self._timers.items():
            entry: Dict[str, float] = {"calls": timer.calls}
            if include_profile:
                entry["wall_seconds"] = timer.wall_seconds
            timers[name] = entry
        return {
            "counters": {
                name: counter.value
                for name, counter in self._counters.items()
            },
            "gauges": {
                name: gauge.value for name, gauge in self._gauges.items()
            },
            "histograms": histograms,
            "timers": timers,
        }

    def snapshot(self, include_profile: bool = False) -> str:
        """Stable sorted-key JSON of the whole registry."""
        return json.dumps(
            self.snapshot_dict(include_profile=include_profile),
            sort_keys=True,
            indent=2,
        )

    @staticmethod
    def diff(before: Union[str, Dict], after: Union[str, Dict]) -> Dict:
        """Leaf-level differences between two snapshots.

        Accepts snapshot JSON strings or dicts; returns a flat mapping of
        dotted paths to ``[before, after]`` pairs covering changed,
        added (``before`` is None) and removed (``after`` is None)
        leaves.  An empty dict means the snapshots are identical.
        """
        if isinstance(before, str):
            before = json.loads(before)
        if isinstance(after, str):
            after = json.loads(after)
        changes: Dict[str, List] = {}
        _walk_diff("", before, after, changes)
        return changes

    def reset(self) -> None:
        """Drop every instrument (a fresh registry)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()


def _walk_diff(prefix: str, before, after, out: Dict[str, List]) -> None:
    if isinstance(before, dict) and isinstance(after, dict):
        for key in sorted(set(before) | set(after)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in before:
                out[path] = [None, after[key]]
            elif key not in after:
                out[path] = [before[key], None]
            else:
                _walk_diff(path, before[key], after[key], out)
        return
    if before != after:
        out[prefix] = [before, after]
