"""The observability façade: one object components report into.

:class:`Observability` bundles the three telemetry surfaces — the
:class:`~repro.obs.registry.MetricsRegistry`, the
:class:`~repro.obs.timeline.SessionTimeline`, and the
:class:`~repro.obs.audit.AdmissionAuditLog` — behind a single handle
that service layers accept as an optional parameter.  Its
:meth:`snapshot` serializes all three to one stable, sorted JSON
document (the golden-trace artifact), :meth:`diff` explains what moved
between two snapshots, and :meth:`report` renders the whole state for a
human (the ``repro obs-report`` CLI).

The default is **off**: components take ``obs=None`` and guard with a
single ``is None`` test, and ``Observability(enabled=False)`` hands out
null instruments throughout — so an unobserved run pays no measurable
cost (the ``bench_micro_ops`` acceptance bar).
"""

from __future__ import annotations

import json
from typing import Dict, Union

from repro.obs.audit import AdmissionAuditLog
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import SessionTimeline

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Bundle of registry + timeline + audit log for one run.

    Parameters
    ----------
    enabled:
        When False every surface is a null recorder; snapshots are empty
        but still byte-stable.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled)
        self.timeline = SessionTimeline(enabled)
        self.audit = AdmissionAuditLog(enabled)

    def timed(self, name: str):
        """Profiling context manager on the shared registry."""
        return self.registry.timed(name)

    # -- serialization -----------------------------------------------------------

    def snapshot_dict(self, include_profile: bool = False) -> Dict:
        """The full observability state as a JSON-ready dict."""
        return {
            "metrics": self.registry.snapshot_dict(
                include_profile=include_profile
            ),
            "timeline": self.timeline.summary_dict(),
            "audit": self.audit.as_dicts(),
        }

    def snapshot(self, include_profile: bool = False) -> str:
        """Stable sorted-key JSON of registry + timeline + audit.

        Byte-identical across runs with the same seed; the golden-trace
        tests commit this string verbatim.
        """
        return json.dumps(
            self.snapshot_dict(include_profile=include_profile),
            sort_keys=True,
            indent=2,
        )

    @staticmethod
    def diff(before: Union[str, Dict], after: Union[str, Dict]) -> Dict:
        """Leaf-level differences between two snapshots (see
        :meth:`MetricsRegistry.diff`)."""
        return MetricsRegistry.diff(before, after)

    # -- human rendering ---------------------------------------------------------

    def report(self) -> str:
        """Operator-facing rendering of the full observability state."""
        metrics = self.registry.snapshot_dict(include_profile=True)
        lines = ["== counters =="]
        for name, value in sorted(metrics["counters"].items()):
            lines.append(f"  {name:<36} {value}")
        lines.append("== gauges ==")
        for name, value in sorted(metrics["gauges"].items()):
            lines.append(f"  {name:<36} {value:g}")
        lines.append("== histograms ==")
        for name, data in sorted(metrics["histograms"].items()):
            lines.append(
                f"  {name}: count={data['count']} sum={data['sum']:g} "
                f"overflow={data['overflow']}"
            )
            for bound, count in zip(data["buckets"], data["counts"]):
                if count:
                    lines.append(f"    <= {bound:<12g} {count}")
        lines.append("== timers ==")
        for name, data in sorted(metrics["timers"].items()):
            lines.append(
                f"  {name:<36} calls={data['calls']} "
                f"wall={data.get('wall_seconds', 0.0):.6f}s"
            )
        lines.append("== sessions ==")
        for session_id, summary in sorted(
            self.timeline.summary_dict().items()
        ):
            stages = " ".join(
                f"{stage}={count}"
                for stage, count in sorted(summary["stages"].items())
            )
            lines.append(
                f"  {session_id:<12} {stages} "
                f"jitter={summary['interarrival_jitter_s']:.6f}s "
                f"conserved={summary['conserved']}"
            )
        lines.append("== admission audit ==")
        audit = self.audit.render()
        if audit:
            lines.extend(f"  {line}" for line in audit.splitlines())
        return "\n".join(lines)


#: Shared disabled instance for call sites that want unconditional
#: ``with obs.timed(...)`` syntax without a None guard.
NULL_OBS = Observability(enabled=False)
