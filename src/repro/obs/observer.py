"""The observability façade: one object components report into.

:class:`Observability` bundles the three telemetry surfaces — the
:class:`~repro.obs.registry.MetricsRegistry`, the
:class:`~repro.obs.timeline.SessionTimeline`, and the
:class:`~repro.obs.audit.AdmissionAuditLog` — behind a single handle
that service layers accept as an optional parameter.  Its
:meth:`snapshot` serializes all three to one stable, sorted JSON
document (the golden-trace artifact), :meth:`diff` explains what moved
between two snapshots, and :meth:`report` renders the whole state for a
human (the ``repro obs-report`` CLI).

The default is **off**: components take ``obs=None`` and guard with a
single ``is None`` test, and ``Observability(enabled=False)`` hands out
null instruments throughout — so an unobserved run pays no measurable
cost (the ``bench_micro_ops`` acceptance bar).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Union

from repro.obs.audit import AdmissionAuditLog
from repro.obs.profiling import (
    CostProfiler,
    ScopedObservability,
    merge_snapshots,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloMonitor
from repro.obs.timeline import SessionTimeline
from repro.obs.tracing import SpanTracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Bundle of registry + timeline + audit + spans + SLOs for one run.

    Parameters
    ----------
    enabled:
        When False every surface is a null recorder; snapshots are empty
        but still byte-stable.
    seed:
        Folded into the span tracer's deterministic trace ids; pass the
        scenario seed so distinct seeds get distinct id spaces.
    timeline_keep_first / timeline_every_kth / timeline_summary_sessions:
        Forwarded to :class:`SessionTimeline` (per-block sampling and
        the summary cap for large scenarios).
    tracer:
        A pre-built :class:`SpanTracer` (e.g. with block sampling or a
        strict limit); by default a full-fidelity tracer is created.
    """

    def __init__(
        self,
        enabled: bool = True,
        seed: int = 0,
        timeline_keep_first: Optional[int] = None,
        timeline_every_kth: Optional[int] = None,
        timeline_summary_sessions: Optional[int] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled)
        self.timeline = SessionTimeline(
            enabled,
            keep_first=timeline_keep_first,
            every_kth=timeline_every_kth,
            summary_sessions=timeline_summary_sessions,
        )
        self.audit = AdmissionAuditLog(enabled)
        self.tracer = (
            tracer if tracer is not None
            else SpanTracer(enabled=enabled, seed=seed)
        )
        self.slo: Optional[SloMonitor] = None
        self.profiler: Optional[CostProfiler] = None
        self._sim_tracers: list = []
        self._node_views: Dict[str, ScopedObservability] = {}

    @classmethod
    def for_scale(cls, seed: int = 0) -> "Observability":
        """A sampled/capped configuration for large scenarios.

        Keeps the first blocks of every session at full per-block
        fidelity, then samples every 64th block, and caps the timeline
        summary — bounding both golden-snapshot size and the tracing
        overhead on 100k-block runs, while metrics/SLO rollups still see
        every block.
        """
        obs = cls(
            seed=seed,
            timeline_keep_first=8,
            timeline_every_kth=64,
            timeline_summary_sessions=8,
            tracer=SpanTracer(
                seed=seed, block_keep_first=4, block_every_kth=64
            ),
        )
        obs.enable_slos()
        return obs

    @classmethod
    def for_profiling(cls, seed: int = 0) -> "Observability":
        """The hot-path profiling configuration: metrics + profiler on,
        timeline/audit/tracer off.

        Cost attribution wants to see every access while perturbing the
        run as little as possible; everything recorded is modeled time,
        so snapshots stay byte-stable per seed.
        """
        obs = cls(seed=seed, tracer=SpanTracer(enabled=False, seed=seed))
        obs.timeline = SessionTimeline(False)
        obs.audit = AdmissionAuditLog(False)
        obs.enable_profiler()
        return obs

    def enable_slos(self, slos=None) -> SloMonitor:
        """Attach an :class:`SloMonitor` (idempotent; default objectives
        when *slos* is None)."""
        if self.slo is None:
            from repro.obs.slo import DEFAULT_SLOS
            self.slo = SloMonitor(
                self.registry, DEFAULT_SLOS if slos is None else slos
            )
        return self.slo

    def enable_profiler(
        self, profiler: Optional[CostProfiler] = None
    ) -> CostProfiler:
        """Attach a :class:`CostProfiler` (idempotent).

        Off by default: the round loop and drive guard with a single
        ``is None`` test, so an unprofiled run pays nothing and the
        traced-overhead budget is untouched.
        """
        if self.profiler is None:
            self.profiler = (
                profiler if profiler is not None
                else CostProfiler(enabled=self.enabled)
            )
        return self.profiler

    # -- node-scoped federation --------------------------------------------------

    def scoped(self, node_id: str) -> ScopedObservability:
        """The node-scoped view for *node_id* (one per id, memoized).

        Hand one to each cluster node instead of sharing this object
        flat: writes still land here (totals, SLOs, and goldens are
        unchanged by construction) while each view keeps a private
        per-node registry and node-attributed profiler handle.
        """
        view = self._node_views.get(node_id)
        if view is None:
            view = self._node_views[node_id] = ScopedObservability(
                self, node_id
            )
        return view

    def node_ids(self) -> list:
        """Sorted ids of every scoped view handed out so far."""
        return sorted(self._node_views)

    def node_snapshot_dicts(self) -> Dict[str, Dict]:
        """Each scoped view's snapshot, keyed by node id."""
        return {
            node_id: self._node_views[node_id].snapshot_dict()
            for node_id in self.node_ids()
        }

    def merged_node_snapshot_dict(self) -> Dict:
        """All scoped views folded back into one cluster-level dict
        (see :func:`repro.obs.profiling.merge_snapshots`)."""
        return merge_snapshots(
            self._node_views[node_id].snapshot_dict()
            for node_id in self.node_ids()
        )

    def attach_sim_tracer(self, tracer) -> None:
        """Register a :class:`repro.sim.trace.Tracer` for health
        surfacing, so snapshots report its drop count instead of letting
        overflow truncate event traces silently."""
        if all(existing is not tracer for existing in self._sim_tracers):
            self._sim_tracers.append(tracer)

    def timed(self, name: str):
        """Profiling context manager on the shared registry."""
        return self.registry.timed(name)

    # -- serialization -----------------------------------------------------------

    def snapshot_dict(self, include_profile: bool = False) -> Dict:
        """The full observability state as a JSON-ready dict.

        The ``profile`` section appears only when a profiler is
        attached, so every pre-profiler golden stays byte-stable.
        """
        out = {
            "metrics": self.registry.snapshot_dict(
                include_profile=include_profile
            ),
            "timeline": self.timeline.summary_dict(),
            "audit": self.audit.as_dicts(),
            "spans": self.tracer.summary_dict(),
            "slo": (
                self.slo.summary_dict() if self.slo is not None else {}
            ),
            "trace_health": {
                "sim_events_dropped": sum(
                    t.dropped for t in self._sim_tracers
                ),
                "sim_strict": any(t.strict for t in self._sim_tracers),
                "spans_dropped": self.tracer.dropped_count,
                "spans_strict": self.tracer.strict,
            },
        }
        if self.profiler is not None:
            out["profile"] = self.profiler.summary_dict()
        return out

    def to_chrome_trace(self) -> Dict:
        """Perfetto-loadable document: spans + profile counter tracks.

        The span export is exactly :meth:`SpanTracer.to_chrome_trace`;
        when a profiler is attached its per-phase cost checkpoints ride
        along as ``"C"`` counter events on ``profile.<phase>`` tracks.
        """
        doc = self.tracer.to_chrome_trace()
        if self.profiler is not None:
            events = list(doc["traceEvents"])
            events.extend(self.profiler.chrome_counter_events())
            doc["traceEvents"] = events
        return doc

    def snapshot(self, include_profile: bool = False) -> str:
        """Stable sorted-key JSON of registry + timeline + audit.

        Byte-identical across runs with the same seed; the golden-trace
        tests commit this string verbatim.
        """
        return json.dumps(
            self.snapshot_dict(include_profile=include_profile),
            sort_keys=True,
            indent=2,
        )

    @staticmethod
    def diff(before: Union[str, Dict], after: Union[str, Dict]) -> Dict:
        """Leaf-level differences between two snapshots (see
        :meth:`MetricsRegistry.diff`)."""
        return MetricsRegistry.diff(before, after)

    # -- human rendering ---------------------------------------------------------

    def report(self, top: int = 5) -> str:
        """Operator-facing rendering of the full observability state.

        *top* bounds the profiler cost-center ranking (when a profiler
        is attached); it matches the CLI ``--top`` flag.
        """
        metrics = self.registry.snapshot_dict(include_profile=True)
        lines = ["== counters =="]
        for name, value in sorted(metrics["counters"].items()):
            lines.append(f"  {name:<36} {value}")
        lines.append("== gauges ==")
        for name, value in sorted(metrics["gauges"].items()):
            lines.append(f"  {name:<36} {value:g}")
        lines.append("== histograms ==")
        for name, data in sorted(metrics["histograms"].items()):
            lines.append(
                f"  {name}: count={data['count']} sum={data['sum']:g} "
                f"overflow={data['overflow']}"
            )
            for bound, count in zip(data["buckets"], data["counts"]):
                if count:
                    lines.append(f"    <= {bound:<12g} {count}")
        lines.append("== timers ==")
        for name, data in sorted(metrics["timers"].items()):
            lines.append(
                f"  {name:<36} calls={data['calls']} "
                f"wall={data.get('wall_seconds', 0.0):.6f}s"
            )
        lines.append("== sessions ==")
        for session_id, summary in sorted(
            self.timeline.summary_dict().items()
        ):
            stages = " ".join(
                f"{stage}={count}"
                for stage, count in sorted(summary["stages"].items())
            )
            lines.append(
                f"  {session_id:<12} {stages} "
                f"jitter={summary['interarrival_jitter_s']:.6f}s "
                f"conserved={summary['conserved']}"
            )
        lines.append("== spans ==")
        spans = self.tracer.summary_dict()
        lines.append(
            f"  total={spans['count']} open={spans['open']} "
            f"traces={spans['traces']} dropped={spans['dropped']}"
        )
        for name, count in spans["by_name"].items():
            lines.append(f"  {name:<36} {count}")
        if self.slo is not None:
            lines.append("== slo ==")
            summary = self.slo.summary_dict()
            for name, entry in sorted(summary["objectives"].items()):
                state = {True: "ok", False: "BREACH", None: "no-data"}[
                    entry["satisfied"]
                ]
                lines.append(
                    f"  {name:<24} {entry['metric']} {entry['op']} "
                    f"{entry['threshold']:g} -> {state}"
                )
        if self.profiler is not None:
            lines.append("== profile ==")
            for entry in self.profiler.top_cost_centers(top):
                lines.append(
                    f"  {entry['phase']:<20} ops={entry['ops']:<10} "
                    f"cost={entry['cost_s']:.6f}s "
                    f"share={entry['share']:.4f}"
                )
            for node_id in sorted(self._node_views):
                summary = self.profiler.node_summary(node_id)
                if not summary:
                    continue
                cost = sum(s["cost_s"] for s in summary.values())
                ops = sum(s["ops"] for s in summary.values())
                lines.append(
                    f"  node {node_id:<14} ops={ops:<10} "
                    f"cost={cost:.6f}s"
                )
        lines.append("== admission audit ==")
        audit = self.audit.render()
        if audit:
            lines.extend(f"  {line}" for line in audit.splitlines())
        return "\n".join(lines)


#: Shared disabled instance for call sites that want unconditional
#: ``with obs.timed(...)`` syntax without a None guard.
NULL_OBS = Observability(enabled=False)
