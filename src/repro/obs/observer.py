"""The observability façade: one object components report into.

:class:`Observability` bundles the three telemetry surfaces — the
:class:`~repro.obs.registry.MetricsRegistry`, the
:class:`~repro.obs.timeline.SessionTimeline`, and the
:class:`~repro.obs.audit.AdmissionAuditLog` — behind a single handle
that service layers accept as an optional parameter.  Its
:meth:`snapshot` serializes all three to one stable, sorted JSON
document (the golden-trace artifact), :meth:`diff` explains what moved
between two snapshots, and :meth:`report` renders the whole state for a
human (the ``repro obs-report`` CLI).

The default is **off**: components take ``obs=None`` and guard with a
single ``is None`` test, and ``Observability(enabled=False)`` hands out
null instruments throughout — so an unobserved run pays no measurable
cost (the ``bench_micro_ops`` acceptance bar).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Union

from repro.obs.audit import AdmissionAuditLog
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloMonitor
from repro.obs.timeline import SessionTimeline
from repro.obs.tracing import SpanTracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Bundle of registry + timeline + audit + spans + SLOs for one run.

    Parameters
    ----------
    enabled:
        When False every surface is a null recorder; snapshots are empty
        but still byte-stable.
    seed:
        Folded into the span tracer's deterministic trace ids; pass the
        scenario seed so distinct seeds get distinct id spaces.
    timeline_keep_first / timeline_every_kth / timeline_summary_sessions:
        Forwarded to :class:`SessionTimeline` (per-block sampling and
        the summary cap for large scenarios).
    tracer:
        A pre-built :class:`SpanTracer` (e.g. with block sampling or a
        strict limit); by default a full-fidelity tracer is created.
    """

    def __init__(
        self,
        enabled: bool = True,
        seed: int = 0,
        timeline_keep_first: Optional[int] = None,
        timeline_every_kth: Optional[int] = None,
        timeline_summary_sessions: Optional[int] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled)
        self.timeline = SessionTimeline(
            enabled,
            keep_first=timeline_keep_first,
            every_kth=timeline_every_kth,
            summary_sessions=timeline_summary_sessions,
        )
        self.audit = AdmissionAuditLog(enabled)
        self.tracer = (
            tracer if tracer is not None
            else SpanTracer(enabled=enabled, seed=seed)
        )
        self.slo: Optional[SloMonitor] = None
        self._sim_tracers: list = []

    @classmethod
    def for_scale(cls, seed: int = 0) -> "Observability":
        """A sampled/capped configuration for large scenarios.

        Keeps the first blocks of every session at full per-block
        fidelity, then samples every 64th block, and caps the timeline
        summary — bounding both golden-snapshot size and the tracing
        overhead on 100k-block runs, while metrics/SLO rollups still see
        every block.
        """
        obs = cls(
            seed=seed,
            timeline_keep_first=8,
            timeline_every_kth=64,
            timeline_summary_sessions=8,
            tracer=SpanTracer(
                seed=seed, block_keep_first=4, block_every_kth=64
            ),
        )
        obs.enable_slos()
        return obs

    def enable_slos(self, slos=None) -> SloMonitor:
        """Attach an :class:`SloMonitor` (idempotent; default objectives
        when *slos* is None)."""
        if self.slo is None:
            from repro.obs.slo import DEFAULT_SLOS
            self.slo = SloMonitor(
                self.registry, DEFAULT_SLOS if slos is None else slos
            )
        return self.slo

    def attach_sim_tracer(self, tracer) -> None:
        """Register a :class:`repro.sim.trace.Tracer` for health
        surfacing, so snapshots report its drop count instead of letting
        overflow truncate event traces silently."""
        if all(existing is not tracer for existing in self._sim_tracers):
            self._sim_tracers.append(tracer)

    def timed(self, name: str):
        """Profiling context manager on the shared registry."""
        return self.registry.timed(name)

    # -- serialization -----------------------------------------------------------

    def snapshot_dict(self, include_profile: bool = False) -> Dict:
        """The full observability state as a JSON-ready dict."""
        return {
            "metrics": self.registry.snapshot_dict(
                include_profile=include_profile
            ),
            "timeline": self.timeline.summary_dict(),
            "audit": self.audit.as_dicts(),
            "spans": self.tracer.summary_dict(),
            "slo": (
                self.slo.summary_dict() if self.slo is not None else {}
            ),
            "trace_health": {
                "sim_events_dropped": sum(
                    t.dropped for t in self._sim_tracers
                ),
                "sim_strict": any(t.strict for t in self._sim_tracers),
                "spans_dropped": self.tracer.dropped_count,
                "spans_strict": self.tracer.strict,
            },
        }

    def snapshot(self, include_profile: bool = False) -> str:
        """Stable sorted-key JSON of registry + timeline + audit.

        Byte-identical across runs with the same seed; the golden-trace
        tests commit this string verbatim.
        """
        return json.dumps(
            self.snapshot_dict(include_profile=include_profile),
            sort_keys=True,
            indent=2,
        )

    @staticmethod
    def diff(before: Union[str, Dict], after: Union[str, Dict]) -> Dict:
        """Leaf-level differences between two snapshots (see
        :meth:`MetricsRegistry.diff`)."""
        return MetricsRegistry.diff(before, after)

    # -- human rendering ---------------------------------------------------------

    def report(self) -> str:
        """Operator-facing rendering of the full observability state."""
        metrics = self.registry.snapshot_dict(include_profile=True)
        lines = ["== counters =="]
        for name, value in sorted(metrics["counters"].items()):
            lines.append(f"  {name:<36} {value}")
        lines.append("== gauges ==")
        for name, value in sorted(metrics["gauges"].items()):
            lines.append(f"  {name:<36} {value:g}")
        lines.append("== histograms ==")
        for name, data in sorted(metrics["histograms"].items()):
            lines.append(
                f"  {name}: count={data['count']} sum={data['sum']:g} "
                f"overflow={data['overflow']}"
            )
            for bound, count in zip(data["buckets"], data["counts"]):
                if count:
                    lines.append(f"    <= {bound:<12g} {count}")
        lines.append("== timers ==")
        for name, data in sorted(metrics["timers"].items()):
            lines.append(
                f"  {name:<36} calls={data['calls']} "
                f"wall={data.get('wall_seconds', 0.0):.6f}s"
            )
        lines.append("== sessions ==")
        for session_id, summary in sorted(
            self.timeline.summary_dict().items()
        ):
            stages = " ".join(
                f"{stage}={count}"
                for stage, count in sorted(summary["stages"].items())
            )
            lines.append(
                f"  {session_id:<12} {stages} "
                f"jitter={summary['interarrival_jitter_s']:.6f}s "
                f"conserved={summary['conserved']}"
            )
        lines.append("== spans ==")
        spans = self.tracer.summary_dict()
        lines.append(
            f"  total={spans['count']} open={spans['open']} "
            f"traces={spans['traces']} dropped={spans['dropped']}"
        )
        for name, count in spans["by_name"].items():
            lines.append(f"  {name:<36} {count}")
        if self.slo is not None:
            lines.append("== slo ==")
            summary = self.slo.summary_dict()
            for name, entry in sorted(summary["objectives"].items()):
                state = {True: "ok", False: "BREACH", None: "no-data"}[
                    entry["satisfied"]
                ]
                lines.append(
                    f"  {name:<24} {entry['metric']} {entry['op']} "
                    f"{entry['threshold']:g} -> {state}"
                )
        lines.append("== admission audit ==")
        audit = self.audit.render()
        if audit:
            lines.extend(f"  {line}" for line in audit.splitlines())
        return "\n".join(lines)


#: Shared disabled instance for call sites that want unconditional
#: ``with obs.timed(...)`` syntax without a None guard.
NULL_OBS = Observability(enabled=False)
