"""Observability: metrics, session timelines, and admission audit.

The paper's guarantees are claims about *time*; this package is how the
reproduction proves it kept them.  Components report into an optional
:class:`Observability` handle (default off, zero-overhead when absent):

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  (deadline slack, seek time, round utilization, queue depth), and
  profiling timers, serialized to byte-stable sorted JSON;
* :class:`SessionTimeline` — per-block lifecycle events
  (``enqueued → read-start → read-done → consumed | skipped``) with
  simulated timestamps and machine-checked ordering invariants;
* :class:`AdmissionAuditLog` — every admit/reject/revalidate with the
  exact inequality and operand values the decision turned on;
* :class:`SpanTracer` — deterministic causal spans across the whole
  MRS→MSM→rounds→disk request path, exportable as Chrome trace-event
  JSON (``repro trace-export``);
* :class:`SloMonitor` — declarative objectives (continuity, deadline
  slack quantiles, typed reject rates, cache hit ratio) evaluated per
  round with breach-transition events in the snapshot;
* :class:`CostProfiler` — deterministic cost attribution decomposing
  each service round into named phases (:data:`PHASES`) with per-phase
  op counts and modeled-time costs, per stream / drive / cluster node,
  exported as Perfetto counter tracks (``repro profile``); node-scoped
  :class:`ScopedObservability` views plus :func:`merge_snapshots`
  federate per-node registries back into one cluster snapshot.

Canonical end-to-end scenarios (the golden-trace baselines) live in
:mod:`repro.obs.scenarios`, imported lazily to avoid cycles with the
service layers.
"""

from repro.obs.audit import AdmissionAuditLog, AuditEntry
from repro.obs.observer import NULL_OBS, Observability
from repro.obs.profiling import (
    PHASES,
    CostProfiler,
    ScopedObservability,
    ScopedRegistry,
    merge_snapshots,
)
from repro.obs.registry import (
    DEADLINE_SLACK_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    ROUND_UTILIZATION_BUCKETS,
    SEEK_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProfileTimer,
)
from repro.obs.slo import DEFAULT_SLOS, Slo, SloMonitor
from repro.obs.timeline import BlockStage, SessionTimeline, TimelineEvent
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "AdmissionAuditLog",
    "AuditEntry",
    "BlockStage",
    "CostProfiler",
    "Counter",
    "DEADLINE_SLACK_BUCKETS",
    "DEFAULT_SLOS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "PHASES",
    "ProfileTimer",
    "QUEUE_DEPTH_BUCKETS",
    "ROUND_UTILIZATION_BUCKETS",
    "SEEK_TIME_BUCKETS",
    "ScopedObservability",
    "ScopedRegistry",
    "SessionTimeline",
    "Slo",
    "SloMonitor",
    "Span",
    "SpanTracer",
    "TimelineEvent",
    "merge_snapshots",
]
