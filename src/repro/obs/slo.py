"""Declarative service-level objectives over the metrics registry.

The paper's guarantees are *timing* claims — continuous playback under
the §3.4 admission inequality — but the metrics registry only stores raw
instruments.  :class:`SloMonitor` closes the gap: each
:class:`Slo` names a derived metric (continuity ratio, a deadline-slack
quantile, a typed reject rate, the cache hit ratio), a comparison, and a
threshold; the monitor re-evaluates them on every service round and at
run end, and records a deterministic **breach event** whenever an
objective transitions between satisfied and breached.

Evaluation is read-only: the monitor peeks at instruments without
creating them, so attaching SLOs never changes what a snapshot contains.
A metric whose inputs do not exist yet (no cache in the topology, no
admission decisions taken) evaluates to ``None`` — "no data", which is
neither satisfied nor breached and produces no events.

Everything derives from simulated time and deterministic counters, so
the ``slo`` snapshot section is byte-stable under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError
from repro.obs.registry import MetricsRegistry

__all__ = ["Slo", "SloMonitor", "DEFAULT_SLOS"]

#: Comparison operators an objective may use.
_OPS = (">=", "<=")

#: Metrics the resolver understands (``reject_rate`` also accepts a
#: ``:<reason>`` suffix matching a typed RejectReason value).
_METRICS = (
    "continuity_ratio",
    "deadline_slack_p95_s",
    "deadline_slack_p99_s",
    "cache_hit_ratio",
    "reject_rate",
    "handoff_clean_ratio",
)


@dataclass(frozen=True)
class Slo:
    """One declarative objective.

    ``scope`` selects the evaluation cadence: ``"round"`` objectives are
    checked after every service round (breaches carry the round number),
    ``"final"`` objectives only at :meth:`SloMonitor.finalize`.  Both are
    re-evaluated once more at finalize so the summary always reports a
    final verdict.
    """

    name: str
    metric: str
    op: str
    threshold: float
    scope: str = "final"

    def __post_init__(self):
        if self.op not in _OPS:
            raise ParameterError(
                f"slo {self.name!r}: op must be one of {_OPS}, "
                f"got {self.op!r}"
            )
        if self.scope not in ("round", "final"):
            raise ParameterError(
                f"slo {self.name!r}: scope must be 'round' or 'final', "
                f"got {self.scope!r}"
            )
        base = self.metric.split(":", 1)[0]
        if base not in _METRICS:
            raise ParameterError(
                f"slo {self.name!r}: unknown metric {self.metric!r} "
                f"(known: {_METRICS})"
            )

    def satisfied_by(self, value: float) -> bool:
        """Whether *value* meets this objective."""
        if self.op == ">=":
            return value >= self.threshold
        return value <= self.threshold


#: The stock objective set scenarios attach: perfect continuity, block
#: deadline slack non-negative at the p95/p99 tail, a warm cache, and
#: zero rejects overall plus per typed reason.
DEFAULT_SLOS: Tuple[Slo, ...] = (
    Slo("continuity", "continuity_ratio", ">=", 1.0, "final"),
    Slo("slack-p95", "deadline_slack_p95_s", ">=", 0.0, "final"),
    Slo("slack-p99", "deadline_slack_p99_s", ">=", 0.0, "final"),
    Slo("cache-warm", "cache_hit_ratio", ">=", 0.5, "round"),
    Slo("no-rejects", "reject_rate", "<=", 0.0, "round"),
    Slo("no-capacity-rejects", "reject_rate:capacity", "<=", 0.0, "final"),
    Slo("no-k-bound-rejects", "reject_rate:k_bound", "<=", 0.0, "final"),
)


class SloMonitor:
    """Evaluates a set of :class:`Slo` objectives against a registry.

    Breach events are *transitions*: one event when an objective first
    breaches, one when it recovers — not one per round — so the event
    list stays small and readable in golden snapshots.
    """

    def __init__(self, registry: MetricsRegistry, slos=DEFAULT_SLOS):
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate slo names: {names}")
        self.registry = registry
        self.slos: Tuple[Slo, ...] = tuple(slos)
        self.events: List[Dict[str, object]] = []
        self._breached: Dict[str, bool] = {}
        self._last: Dict[str, Optional[float]] = {}
        self._finalized_at: Optional[float] = None

    # -- metric resolution -------------------------------------------------------

    def value_of(self, metric: str) -> Optional[float]:
        """Resolve a derived metric; None means "no data yet"."""
        reg = self.registry
        if metric == "continuity_ratio":
            delivered = reg.peek_counter("session.blocks_delivered")
            if not delivered:
                return None
            missed = reg.peek_counter("session.deadline_misses") or 0
            return (delivered - missed) / delivered
        if metric == "cache_hit_ratio":
            hits = reg.peek_counter("cache.hits")
            misses = reg.peek_counter("cache.misses")
            if hits is None and misses is None:
                return None
            total = (hits or 0) + (misses or 0)
            if total == 0:
                return None
            return (hits or 0) / total
        if metric == "deadline_slack_p95_s":
            return self._slack_quantile(0.05)
        if metric == "deadline_slack_p99_s":
            return self._slack_quantile(0.01)
        if metric == "reject_rate" or metric.startswith("reject_rate:"):
            opened = reg.peek_counter("server.sessions_opened")
            rejected = reg.peek_counter("server.sessions_rejected")
            if opened is None and rejected is None:
                return None
            decided = (opened or 0) + (rejected or 0)
            if decided == 0:
                return None
            if ":" in metric:
                reason = metric.split(":", 1)[1]
                numerator = reg.peek_counter(f"server.reject.{reason}") or 0
            else:
                numerator = rejected or 0
            return numerator / decided
        if metric == "handoff_clean_ratio":
            total = reg.peek_counter("cluster.handoffs_total")
            if not total:
                return None
            clean = reg.peek_counter("cluster.handoffs_clean") or 0
            return clean / total
        raise ParameterError(f"unknown slo metric {metric!r}")

    def _slack_quantile(self, q: float) -> Optional[float]:
        hist = self.registry.peek_histogram("session.deadline_slack_s")
        if hist is None:
            return None
        return hist.quantile(q)

    # -- evaluation --------------------------------------------------------------

    def on_round(
        self, time: float, round_number: int
    ) -> List[Dict[str, object]]:
        """Evaluate round-scope objectives after one service round.

        Returns the breach-transition events emitted by this evaluation
        (usually empty).
        """
        return self._evaluate("round", time, round_number)

    def finalize(self, time: float) -> List[Dict[str, object]]:
        """Evaluate *all* objectives at run end."""
        self._finalized_at = time
        events = self._evaluate("round", time, None)
        events += self._evaluate("final", time, None)
        return events

    def _evaluate(
        self,
        scope: str,
        time: float,
        round_number: Optional[int],
    ) -> List[Dict[str, object]]:
        emitted: List[Dict[str, object]] = []
        for slo in self.slos:
            if slo.scope != scope:
                continue
            value = self.value_of(slo.metric)
            self._last[slo.name] = value
            if value is None:
                # No data yet: neither satisfied nor breached.
                continue
            breached = not slo.satisfied_by(value)
            if breached == self._breached.get(slo.name, False):
                continue
            self._breached[slo.name] = breached
            event = {
                "slo": slo.name,
                "metric": slo.metric,
                "time": time,
                "round": round_number,
                "value": self._json_value(value),
                "threshold": slo.threshold,
                "op": slo.op,
                "to": "breach" if breached else "ok",
            }
            self.events.append(event)
            emitted.append(event)
        return emitted

    # -- serialization -----------------------------------------------------------

    @staticmethod
    def _json_value(value: Optional[float]):
        if value is None:
            return None
        if not math.isfinite(value):
            return "inf" if value > 0 else "-inf"
        return value

    def summary_dict(self) -> Dict[str, object]:
        """Deterministic rollup for snapshot embedding."""
        objectives: Dict[str, Dict[str, object]] = {}
        for slo in self.slos:
            value = self._last.get(slo.name)
            satisfied: Optional[bool] = None
            if value is not None:
                satisfied = slo.satisfied_by(value)
            objectives[slo.name] = {
                "metric": slo.metric,
                "op": slo.op,
                "threshold": slo.threshold,
                "scope": slo.scope,
                "value": self._json_value(value),
                "satisfied": satisfied,
            }
        return {
            "objectives": objectives,
            "breach_events": list(self.events),
            "breached_now": sorted(
                name for name, bad in self._breached.items() if bad
            ),
        }
